#!/usr/bin/env python3
"""Regression gate over the kernel bench trajectory.

``cargo bench -p midas-bench --bench kernel`` appends one JSONL record per
run to ``BENCH_history.jsonl`` (see ``crates/bench/benches/kernel.rs``).
This script compares the newest record against the *trailing median* of
the earlier records in the same mode (``quick`` runs are only ever
compared with ``quick`` runs) and fails when a tracked metric regressed
beyond its tolerance.

Medians beat "previous run" comparisons: one lucky baseline run cannot
hide a later regression, one noisy run cannot fail the gate forever.

Policy:

* ``TRACKED`` metrics (the two cached steady-state medians the README
  quotes) hard-fail the gate when ``latest > tolerance x trailing
  median``.
* Every other ``median_ns`` metric is soft: a warning is printed at
  ``SOFT_TOLERANCE`` but the exit code stays 0, so noisy cold-cache
  numbers annotate instead of block.
* ``disabled_probe_ns`` hard-fails above ``PROBE_BUDGET_NS`` — the
  overhead budget is absolute, not relative.
* Fewer than ``MIN_BASELINE`` earlier same-mode records: the gate passes
  with a note (nothing to compare against yet).

Usage:
    bench_gate.py [--history PATH] [--min-baseline N]
    bench_gate.py --self-test

Exit codes: 0 pass, 1 regression, 2 usage/invalid history.
"""

import json
import statistics
import sys
import tempfile

# Metric -> hard tolerance (latest may be at most this multiple of the
# trailing median).
TRACKED = {
    "matrix_build/parallel_cached": 2.0,
    "apply_batch/parallel_cached_repeat": 2.0,
    "matrix_build/plan_serial": 2.0,
    # Snapshot-read latency from the closed-loop load scenario
    # (crates/bench/benches/load.rs). The absolute numbers are tiny
    # (an Arc clone) and scheduler-noisy, so the tolerance is generous;
    # what it catches is the read path growing real work — e.g. a copy
    # of the pattern set sneaking back into Published::read.
    "load/read_ns_p50": 4.0,
}

# Untracked metrics warn (never fail) beyond this multiple.
SOFT_TOLERANCE = 1.5

# Absolute ceiling for the disabled-probe cost, ns (the bench itself
# asserts < 50; the gate keeps history honest about it too).
PROBE_BUDGET_NS = 50.0

# Minimum earlier same-mode records before comparisons start.
MIN_BASELINE = 2


def load_history(path):
    records = []
    try:
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as e:
                    raise SystemExit(f"FAIL: {path}:{lineno}: invalid JSON: {e}")
                if "median_ns" not in rec or "quick" not in rec:
                    raise SystemExit(
                        f"FAIL: {path}:{lineno}: record missing median_ns/quick"
                    )
                records.append(rec)
    except OSError as e:
        raise SystemExit(f"FAIL: cannot read history {path}: {e}")
    return records


def gate(records, min_baseline=MIN_BASELINE):
    """Returns (ok, list of report lines)."""
    lines = []
    if not records:
        return False, ["FAIL: history is empty"]
    latest = records[-1]
    mode = bool(latest["quick"])
    baseline = [r for r in records[:-1] if bool(r["quick"]) == mode]
    mode_name = "quick" if mode else "full"

    ok = True
    probe = latest.get("disabled_probe_ns")
    if probe is not None and float(probe) >= PROBE_BUDGET_NS:
        ok = False
        lines.append(
            f"FAIL disabled_probe_ns: {probe} ns >= budget {PROBE_BUDGET_NS} ns"
        )

    if len(baseline) < min_baseline:
        lines.append(
            f"PASS: only {len(baseline)} earlier {mode_name}-mode record(s) "
            f"(< {min_baseline}); nothing to gate against yet"
        )
        return ok, lines

    for metric, value in sorted(latest["median_ns"].items()):
        history = [
            r["median_ns"][metric]
            for r in baseline
            if metric in r.get("median_ns", {}) and r["median_ns"][metric] > 0
        ]
        if not history or value <= 0:
            lines.append(f"SKIP {metric}: no usable baseline")
            continue
        median = statistics.median(history)
        ratio = value / median
        if metric in TRACKED:
            tol = TRACKED[metric]
            verdict = "FAIL" if ratio > tol else "PASS"
            if ratio > tol:
                ok = False
            lines.append(
                f"{verdict} {metric}: {value} ns vs trailing median {median:.0f} ns "
                f"({ratio:.2f}x, hard limit {tol:.1f}x, n={len(history)})"
            )
        elif ratio > SOFT_TOLERANCE:
            lines.append(
                f"WARN {metric}: {value} ns vs trailing median {median:.0f} ns "
                f"({ratio:.2f}x > soft {SOFT_TOLERANCE:.1f}x) — not gating"
            )
        else:
            lines.append(f"ok   {metric}: {ratio:.2f}x of trailing median")
    return ok, lines


def self_test():
    """The gate's own acceptance check: a synthetic 2x regression of
    matrix_build/parallel_cached must fail, a flat run must pass."""

    def rec(cached, repeat, probe=0.3, quick=False):
        return {
            "unix_ms": 0,
            "quick": quick,
            "disabled_probe_ns": probe,
            "median_ns": {
                "matrix_build/parallel_cached": cached,
                "apply_batch/parallel_cached_repeat": repeat,
                "matrix_build/serial": 10 * cached,
            },
        }

    baseline = [rec(100_000, 50_000) for _ in range(3)]

    ok, lines = gate(baseline + [rec(205_000, 50_000)])
    assert not ok, f"2x regression must fail: {lines}"
    assert any(l.startswith("FAIL matrix_build/parallel_cached") for l in lines), lines

    ok, lines = gate(baseline + [rec(101_000, 51_000)])
    assert ok, f"flat run must pass: {lines}"

    # Soft metrics warn, never fail.
    noisy = rec(100_000, 50_000)
    noisy["median_ns"]["matrix_build/serial"] = 10_000_000
    ok, lines = gate(baseline + [noisy])
    assert ok, f"soft regression must not gate: {lines}"
    assert any(l.startswith("WARN matrix_build/serial") for l in lines), lines

    # A newly tracked metric absent from older records skips (no baseline)
    # instead of failing, so extending TRACKED never breaks existing
    # histories.
    fresh = rec(100_000, 50_000)
    fresh["median_ns"]["matrix_build/plan_serial"] = 12_000_000
    ok, lines = gate(baseline + [fresh])
    assert ok, f"metric without baseline must skip, not fail: {lines}"
    assert any(l.startswith("SKIP matrix_build/plan_serial") for l in lines), lines

    # Once the plan metric has history, a regression gates like the rest.
    def rec_plan(plan):
        r = rec(100_000, 50_000)
        r["median_ns"]["matrix_build/plan_serial"] = plan
        return r

    plan_base = [rec_plan(10_000_000) for _ in range(3)]
    ok, lines = gate(plan_base + [rec_plan(25_000_000)])
    assert not ok, f"plan_serial 2.5x regression must fail: {lines}"
    assert any(l.startswith("FAIL matrix_build/plan_serial") for l in lines), lines

    # Load records live in the same history: kernel records lack the load
    # metrics (and vice versa), so each gates only against its own kind.
    def rec_load(read_p50, quick=False):
        return {
            "unix_ms": 0,
            "quick": quick,
            "scenario": "pubchem_like_u8",
            "median_ns": {
                "load/read_ns_p50": read_p50,
                "load/read_ns_p99": 10 * read_p50,
                "load/formulate_ns_p50": 500_000,
            },
        }

    load_base = [rec_load(200) for _ in range(3)]
    mixed = baseline + load_base
    ok, lines = gate(mixed + [rec_load(210)])
    assert ok, f"flat load run must pass: {lines}"
    ok, lines = gate(mixed + [rec_load(1_000)])
    assert not ok, f"5x read-latency regression must fail: {lines}"
    assert any(l.startswith("FAIL load/read_ns_p50") for l in lines), lines
    # A kernel record after load records still gates cleanly (the load
    # metrics just have no entry in it).
    ok, lines = gate(load_base + baseline + [rec(101_000, 51_000)])
    assert ok, f"kernel record after load records must pass: {lines}"

    # Probe budget is absolute.
    ok, lines = gate(baseline + [rec(100_000, 50_000, probe=80.0)])
    assert not ok, f"probe over budget must fail: {lines}"

    # Modes never cross: a quick run is not judged against full baselines.
    ok, lines = gate(baseline + [rec(1_000_000, 500_000, quick=True)])
    assert ok, f"first quick run has no baseline, must pass: {lines}"

    # Short history passes with a note.
    ok, lines = gate([rec(100_000, 50_000), rec(300_000, 50_000)])
    assert ok, f"single-record baseline must pass: {lines}"

    # End-to-end through a file, exercising the JSONL loader.
    with tempfile.NamedTemporaryFile("w", suffix=".jsonl", delete=False) as fh:
        for r in baseline + [rec(205_000, 50_000)]:
            fh.write(json.dumps(r) + "\n")
        path = fh.name
    ok, _ = gate(load_history(path))
    assert not ok, "file round-trip must preserve the failure"

    print("bench_gate self-test: OK")


def main(argv):
    history = "BENCH_history.jsonl"
    min_baseline = MIN_BASELINE
    args = argv[1:]
    while args:
        arg = args.pop(0)
        if arg == "--self-test":
            self_test()
            return 0
        elif arg == "--history" and args:
            history = args.pop(0)
        elif arg == "--min-baseline" and args:
            min_baseline = int(args.pop(0))
        else:
            print(__doc__)
            return 2
    ok, lines = gate(load_history(history), min_baseline)
    for line in lines:
        print(line)
    print("bench gate:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
