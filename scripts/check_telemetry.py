#!/usr/bin/env python3
"""CI gate for the telemetry export schema.

Two modes:

* Batch-profile gate — runs after an example batch with telemetry
  enabled; validates that `metrics.json` and `trace.json` parse as JSON
  and contain the keys the documented schema promises.

      check_telemetry.py <metrics.json> <trace.json>

* Live-endpoint gate — runs after the daemon smoke step; validates the
  saved responses of `GET /metrics` (Prometheus text exposition 0.0.4),
  `GET /healthz` and `GET /flight`.

      check_telemetry.py --prom <metrics.txt> [--healthz <healthz.json>] [--flight <flight.json>] \
                         [--profile <profile.folded>] [--slow <slow.json>] [--alerts <alerts.json>]

* SLI gate — runs after the load-harness smoke step; validates the saved
  `GET /sli` response (user-facing SLIs: formulation-cost reduction,
  staleness, read/formulation latency), optionally cross-checking that a
  saved `GET /snapshot` carries the `sli.*` histograms.

      check_telemetry.py --sli <sli.json> [--snapshot <snapshot.json>]

* Serving-daemon gate — runs after the multi-tenant serve smoke step;
  validates the saved `GET /v1/tenants`, `GET /v1/{t}/patterns` and sync
  `POST /v1/{t}/updates` responses, and that `GET /metrics` carries the
  per-tenant `midas_serve_*` families.

      check_telemetry.py --serve <tenants.json> [--patterns <patterns.json>] \
                         [--update <update.json>] [--serve-metrics <metrics.txt>] \
                         [--expect-tenants <n>]

Fails loudly on drift so exporter changes are deliberate.
"""

import json
import re
import sys

REQUIRED_COUNTERS = ["pmt_us", "cache.hits", "vf2.nodes", "vf2.searches"]
REQUIRED_SECTIONS = ["counters", "gauges", "histograms", "spans"]
REQUIRED_SPANS = ["batch.ingest", "batch.fct", "batch.cluster", "batch.index"]
SPAN_FIELDS = ["count", "total_us", "max_us"]
EVENT_FIELDS = ["name", "cat", "ph", "ts", "dur", "pid", "tid"]

# Prometheus exposition format 0.0.4.
METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
LABEL_PAIR = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"$')
REQUIRED_FAMILIES = ["midas_pmt_us", "midas_vf2_search_ns"]
BATCH_FIELDS = [
    "seq", "kind", "distance", "pmt_us", "pgt_us",
    "inserted", "deleted", "candidates", "swaps", "unix_ms",
]


def fail(msg):
    print(f"telemetry schema check FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def check_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    for section in REQUIRED_SECTIONS:
        if not isinstance(doc.get(section), dict):
            fail(f"{path}: missing section {section!r}")
    for name in REQUIRED_COUNTERS:
        value = doc["counters"].get(name)
        if not isinstance(value, int) or value <= 0:
            fail(f"{path}: counter {name!r} missing or not a positive int ({value!r})")
    for name in REQUIRED_SPANS:
        span = doc["spans"].get(name)
        if not isinstance(span, dict):
            fail(f"{path}: span {name!r} missing")
        for field in SPAN_FIELDS:
            if not isinstance(span.get(field), int):
                fail(f"{path}: span {name!r} missing field {field!r}")
        if span["count"] < 1:
            fail(f"{path}: span {name!r} never completed")
    for name, hist in doc["histograms"].items():
        for field in ["count", "sum", "max", "buckets"]:
            if field not in hist:
                fail(f"{path}: histogram {name!r} missing field {field!r}")
    print(f"{path}: ok ({len(doc['counters'])} counters, {len(doc['spans'])} spans)")


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    if doc.get("displayTimeUnit") != "ms":
        fail(f"{path}: displayTimeUnit must be 'ms'")
    if not isinstance(doc.get("droppedEvents"), int):
        fail(f"{path}: droppedEvents missing")
    names = set()
    for event in events:
        for field in EVENT_FIELDS:
            if field not in event:
                fail(f"{path}: event missing field {field!r}: {event}")
        if event["ph"] not in ("X", "P"):
            fail(f"{path}: unexpected phase {event['ph']!r} "
                 "(complete 'X' and sample 'P' events only)")
        if event["ph"] == "P":
            stack = event.get("args", {}).get("stack")
            if not isinstance(stack, str) or not stack:
                fail(f"{path}: sample event missing args.stack: {event}")
            if event["dur"] != 0:
                fail(f"{path}: sample event with nonzero dur: {event}")
        names.add(event["name"])
    for name in ["batch.ingest", "batch.fct"]:
        if name not in names:
            fail(f"{path}: no {name!r} event in trace")
    print(f"{path}: ok ({len(events)} events, {len(names)} distinct spans)")


def check_prom(path):
    """Validates a saved `GET /metrics` body as exposition format 0.0.4."""
    with open(path) as f:
        text = f.read()
    typed = set()
    families = set()
    quantile_series = 0
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                fail(f"{path}:{lineno}: malformed TYPE comment: {line!r}")
            name, kind = parts[2], parts[3]
            if not METRIC_NAME.match(name):
                fail(f"{path}:{lineno}: invalid family name {name!r}")
            if kind not in ("counter", "gauge", "summary", "histogram", "untyped"):
                fail(f"{path}:{lineno}: unknown metric type {kind!r}")
            typed.add(name)
            continue
        if line.startswith("#"):
            continue  # HELP or free comment
        m = SAMPLE_LINE.match(line)
        if not m:
            fail(f"{path}:{lineno}: unparsable sample line: {line!r}")
        name = m.group("name")
        if not METRIC_NAME.match(name):
            fail(f"{path}:{lineno}: invalid metric name {name!r}")
        labels = m.group("labels")
        if labels:
            for pair in labels.split(","):
                if not LABEL_PAIR.match(pair):
                    fail(f"{path}:{lineno}: malformed label pair {pair!r}")
            if 'quantile="' in labels:
                quantile_series += 1
        try:
            float(m.group("value"))
        except ValueError:
            fail(f"{path}:{lineno}: non-numeric sample value {m.group('value')!r}")
        # A summary's _sum/_count/quantile series share the family TYPE.
        family = re.sub(r"_(sum|count|max)$", "", name)
        if name not in typed and family not in typed:
            fail(f"{path}:{lineno}: sample {name!r} has no preceding # TYPE")
        families.add(family)
        samples += 1
    if samples == 0:
        fail(f"{path}: no samples at all")
    for family in REQUIRED_FAMILIES:
        if family not in families:
            fail(f"{path}: required family {family!r} missing")
    if quantile_series == 0:
        fail(f"{path}: no quantile-labeled series (summaries missing)")
    print(f"{path}: ok ({samples} samples, {len(families)} families, "
          f"{quantile_series} quantile series)")


def check_healthz(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("status") not in ("ok", "alerting"):
        fail(f"{path}: status is {doc.get('status')!r}, expected 'ok' or 'alerting'")
    for field in ["uptime_s", "drift", "batches"]:
        if not isinstance(doc.get(field), (int, float)):
            fail(f"{path}: field {field!r} missing or non-numeric")
    if not isinstance(doc.get("telemetry_enabled"), bool):
        fail(f"{path}: field 'telemetry_enabled' missing")
    firing = doc.get("alerts_firing")
    if not isinstance(firing, list):
        fail(f"{path}: field 'alerts_firing' missing or not a list")
    if (doc["status"] == "alerting") != bool(firing):
        fail(f"{path}: status {doc['status']!r} inconsistent with "
             f"alerts_firing {firing!r}")
    if doc["batches"] < 1:
        fail(f"{path}: no batches recorded; daemon did no work")
    print(f"{path}: ok ({doc['batches']} batches, drift {doc['drift']}, "
          f"{len(firing)} firing)")


def check_flight(path):
    with open(path) as f:
        doc = json.load(f)
    for field in ["total_batches", "capacity"]:
        if not isinstance(doc.get(field), int):
            fail(f"{path}: field {field!r} missing")
    batches = doc.get("batches")
    if not isinstance(batches, list) or not batches:
        fail(f"{path}: batches missing or empty")
    if len(batches) > doc["capacity"]:
        fail(f"{path}: {len(batches)} summaries exceed capacity {doc['capacity']}")
    for batch in batches:
        for field in BATCH_FIELDS:
            if field not in batch:
                fail(f"{path}: batch summary missing field {field!r}: {batch}")
    seqs = [b["seq"] for b in batches]
    if seqs != sorted(seqs):
        fail(f"{path}: batch summaries out of order: {seqs}")
    if not isinstance(doc.get("events"), list):
        fail(f"{path}: events missing")
    print(f"{path}: ok ({len(batches)}/{doc['capacity']} summaries, "
          f"{doc['total_batches']} total batches)")


FOLDED_LINE = re.compile(r"^(?P<stack>\S+(?:;\S+)*) (?P<count>[1-9][0-9]*)$")


def check_profile(path, require_nonempty=True):
    """Validates a saved `GET /profile` body as collapsed-stack text."""
    with open(path) as f:
        text = f.read()
    lines = [l for l in text.splitlines() if l.strip()]
    if not lines:
        if require_nonempty:
            fail(f"{path}: folded profile is empty (sampler never fired?)")
        print(f"{path}: ok (empty profile allowed)")
        return
    stacks = set()
    samples = 0
    for lineno, line in enumerate(lines, start=1):
        m = FOLDED_LINE.match(line)
        if not m:
            fail(f"{path}:{lineno}: not a 'frame;frame count' line: {line!r}")
        stack = m.group("stack")
        if stack in stacks:
            fail(f"{path}:{lineno}: duplicate stack {stack!r} (not aggregated)")
        stacks.add(stack)
        samples += int(m.group("count"))
    if sorted(stacks) != [m.group("stack") for l in lines
                          for m in [FOLDED_LINE.match(l)]]:
        fail(f"{path}: stacks not sorted (output must be deterministic)")
    print(f"{path}: ok ({len(stacks)} distinct stacks, {samples} samples)")


def check_slow(path, require_series=("vf2.search_ns",)):
    """Validates a saved `GET /slow` body (exemplar reservoirs)."""
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc.get("reservoir_k"), int) or doc["reservoir_k"] < 1:
        fail(f"{path}: reservoir_k missing")
    series = doc.get("series")
    if not isinstance(series, dict):
        fail(f"{path}: series missing")
    for name, s in series.items():
        if s.get("unit") not in ("ns", "us"):
            fail(f"{path}: series {name!r} has bad unit {s.get('unit')!r}")
        if not isinstance(s.get("offered"), int):
            fail(f"{path}: series {name!r} missing 'offered'")
        top = s.get("top")
        if not isinstance(top, list) or len(top) > doc["reservoir_k"]:
            fail(f"{path}: series {name!r} top missing or over capacity")
        values = []
        for ex in top:
            for field in ["value", "pattern", "graph", "seq"]:
                if field not in ex:
                    fail(f"{path}: series {name!r} exemplar missing {field!r}: {ex}")
            values.append(ex["value"])
        if values != sorted(values, reverse=True):
            fail(f"{path}: series {name!r} exemplars not sorted descending")
    for name in require_series:
        top = series.get(name, {}).get("top")
        if not top:
            fail(f"{path}: required series {name!r} missing or empty")
        attributed = [e for e in top if e["pattern"] is not None
                      and e["graph"] is not None]
        if not attributed:
            fail(f"{path}: series {name!r} has no attributed exemplars "
                 "(pattern/graph context never set)")
    print(f"{path}: ok ({len(series)} series)")


def check_alerts(path, expect_firing=None):
    """Validates a saved `GET /alerts` body; `expect_firing` optionally
    names an alert that must be in the firing state."""
    with open(path) as f:
        doc = json.load(f)
    config = doc.get("config")
    if not isinstance(config, dict):
        fail(f"{path}: config missing")
    for field in ["phase_budget_us", "vf2_budget_ns", "allowed_ppm", "burn_milli"]:
        if not isinstance(config.get(field), int):
            fail(f"{path}: config missing {field!r}")
    alerts = doc.get("alerts")
    if not isinstance(alerts, list):
        fail(f"{path}: alerts missing")
    states = {}
    for a in alerts:
        for field in ["name", "state", "budget", "unit", "fast_burn", "slow_burn",
                      "fast_count", "fast_violations", "slow_count",
                      "slow_violations"]:
            if field not in a:
                fail(f"{path}: alert missing field {field!r}: {a}")
        if a["state"] not in ("ok", "pending", "firing"):
            fail(f"{path}: bad alert state {a['state']!r}")
        if a["fast_count"] == 0 and a["state"] == "firing":
            fail(f"{path}: alert {a['name']!r} fires on an empty fast window")
        states[a["name"]] = a["state"]
    if expect_firing is not None and states.get(expect_firing) != "firing":
        fail(f"{path}: expected {expect_firing!r} to be firing, states: {states}")
    print(f"{path}: ok ({len(alerts)} alerts, "
          f"{sum(1 for s in states.values() if s == 'firing')} firing)")


QUANTILE_FIELDS = ["count", "p50", "p99", "max"]

SLI_TICK_FIELDS = [
    "tick", "epoch", "queries", "steps_live", "steps_baseline",
    "reduction", "staleness_batches_max", "staleness_drift_max", "unix_ms",
]


def check_sli(path):
    """Validates a saved `GET /sli` body after a load-harness run."""
    with open(path) as f:
        doc = json.load(f)
    for field in ["ticks", "queries", "steps_live", "steps_baseline"]:
        if not isinstance(doc.get(field), int):
            fail(f"{path}: field {field!r} missing or non-integer")
    if doc["ticks"] < 1:
        fail(f"{path}: no ticks recorded; the load driver never ran")
    if doc["queries"] < 1:
        fail(f"{path}: no queries recorded; the simulated users never ran")
    reduction = doc.get("reduction")
    if not isinstance(reduction, dict):
        fail(f"{path}: reduction section missing")
    for field in ["cumulative", "last_tick"]:
        v = reduction.get(field)
        if not isinstance(v, (int, float)) or not -10.0 <= v <= 1.0:
            fail(f"{path}: reduction.{field} missing or implausible ({v!r})")
    staleness = doc.get("staleness")
    if not isinstance(staleness, dict):
        fail(f"{path}: staleness section missing")
    for name in ["batches", "drift_micro"]:
        q = staleness.get(name)
        if not isinstance(q, dict):
            fail(f"{path}: staleness.{name} missing")
        for field in QUANTILE_FIELDS:
            if not isinstance(q.get(field), (int, float)):
                fail(f"{path}: staleness.{name}.{field} missing")
    latency = doc.get("latency_ns")
    if not isinstance(latency, dict):
        fail(f"{path}: latency_ns section missing")
    for name in ["read", "formulate"]:
        q = latency.get(name)
        if not isinstance(q, dict):
            fail(f"{path}: latency_ns.{name} missing")
        for field in QUANTILE_FIELDS:
            if not isinstance(q.get(field), (int, float)):
                fail(f"{path}: latency_ns.{name}.{field} missing")
        if q["count"] < 1:
            fail(f"{path}: latency_ns.{name} recorded no samples")
        if not q["p50"] <= q["p99"] <= q["max"]:
            fail(f"{path}: latency_ns.{name} quantiles not monotone: {q}")
    ticks = doc.get("recent_ticks")
    if not isinstance(ticks, list) or not ticks:
        fail(f"{path}: recent_ticks missing or empty")
    for t in ticks:
        for field in SLI_TICK_FIELDS:
            if field not in t:
                fail(f"{path}: tick summary missing field {field!r}: {t}")
    seq = [t["tick"] for t in ticks]
    if seq != sorted(seq):
        fail(f"{path}: tick summaries out of order: {seq}")
    print(f"{path}: ok ({doc['queries']} queries over {doc['ticks']} ticks, "
          f"reduction {reduction['cumulative']}, "
          f"read p99 {latency['read']['p99']} ns)")


def check_sli_snapshot(path):
    """Cross-check: the full `/snapshot` carries the `sli.*` histograms the
    `/sli` digest is derived from."""
    with open(path) as f:
        doc = json.load(f)
    hists = doc.get("histograms")
    if not isinstance(hists, dict):
        fail(f"{path}: histograms section missing")
    for name in ["sli.read_ns", "sli.formulate_ns", "sli.staleness_batches"]:
        h = hists.get(name)
        if not isinstance(h, dict):
            fail(f"{path}: histogram {name!r} missing from snapshot")
        if not isinstance(h.get("count"), int) or h["count"] < 1:
            fail(f"{path}: histogram {name!r} recorded no samples")
    counters = doc.get("counters", {})
    if not isinstance(counters.get("sli.queries"), int) or counters["sli.queries"] < 1:
        fail(f"{path}: counter 'sli.queries' missing or zero")
    print(f"{path}: ok (sli.* histograms present, "
          f"{counters['sli.queries']} queries)")


TENANT_SUMMARY_FIELDS = [
    "tenant", "kind", "epoch", "db_len", "patterns",
    "pending_batches", "busy", "created_unix_ms",
]

SERVE_TENANT_FAMILIES = ["midas_serve_epoch", "midas_serve_db_len"]


def check_serve_tenants(path, expect_tenants=None):
    """Validates a saved `GET /v1/tenants` body from the serving daemon."""
    with open(path) as f:
        doc = json.load(f)
    tenants = doc.get("tenants")
    if not isinstance(tenants, list) or not tenants:
        fail(f"{path}: tenants missing or empty (daemon served nobody)")
    names = set()
    for t in tenants:
        for field in TENANT_SUMMARY_FIELDS:
            if field not in t:
                fail(f"{path}: tenant summary missing field {field!r}: {t}")
        if not isinstance(t["tenant"], str) or not t["tenant"]:
            fail(f"{path}: tenant summary with empty name: {t}")
        if t["tenant"] in names:
            fail(f"{path}: duplicate tenant {t['tenant']!r}")
        names.add(t["tenant"])
        if t["db_len"] < 1 or t["patterns"] < 1:
            fail(f"{path}: tenant {t['tenant']!r} has an empty database "
                 f"or pattern set: {t}")
    if expect_tenants is not None and len(tenants) < int(expect_tenants):
        fail(f"{path}: only {len(tenants)} tenants, expected "
             f"at least {expect_tenants}")
    print(f"{path}: ok ({len(tenants)} tenants: {sorted(names)})")


def check_serve_patterns(path):
    """Validates a saved `GET /v1/{tenant}/patterns` body."""
    with open(path) as f:
        doc = json.load(f)
    for field in ["epoch", "db_len", "published_unix_ms", "pending_batches"]:
        if not isinstance(doc.get(field), int):
            fail(f"{path}: field {field!r} missing or non-integer")
    if not isinstance(doc.get("tenant"), str):
        fail(f"{path}: field 'tenant' missing")
    graphlets = doc.get("graphlets")
    if not isinstance(graphlets, list) or len(graphlets) != 8:
        fail(f"{path}: graphlets must be the 8-way frequency vector, "
             f"got {graphlets!r}")
    for g in graphlets:
        if not isinstance(g, (int, float)) or g < 0:
            fail(f"{path}: negative or non-numeric graphlet frequency {g!r}")
    patterns = doc.get("patterns")
    if not isinstance(patterns, list) or not patterns:
        fail(f"{path}: patterns missing or empty (nothing to serve)")
    for p in patterns:
        if not isinstance(p, dict) or "labels" not in p or "edges" not in p:
            fail(f"{path}: pattern without labels/edges: {str(p)[:120]}")
        if not p["labels"]:
            fail(f"{path}: empty pattern graph served: {str(p)[:120]}")
    print(f"{path}: ok (tenant {doc['tenant']!r}, epoch {doc['epoch']}, "
          f"{len(patterns)} patterns, db {doc['db_len']})")


def check_serve_update(path):
    """Validates a saved sync `POST /v1/{tenant}/updates` reply."""
    with open(path) as f:
        doc = json.load(f)
    for field in ["epoch", "db_len", "patterns"]:
        if not isinstance(doc.get(field), int):
            fail(f"{path}: field {field!r} missing or non-integer")
    if doc.get("mode") != "sync":
        fail(f"{path}: mode is {doc.get('mode')!r}, expected 'sync'")
    if doc["epoch"] < 1:
        fail(f"{path}: epoch {doc['epoch']} after a sync update "
             "(apply_batch never ran)")
    print(f"{path}: ok (tenant {doc.get('tenant')!r} advanced to "
          f"epoch {doc['epoch']}, db {doc['db_len']})")


def check_serve_metrics(path, expect_tenants=None):
    """Validates that `GET /metrics` carries tenant-labeled
    `midas_serve_*` families for the daemon's tenants."""
    with open(path) as f:
        text = f.read()
    by_family = {}
    for line in text.splitlines():
        if not line.strip() or line.startswith("#"):
            continue
        m = SAMPLE_LINE.match(line)
        if not m or not m.group("labels"):
            continue
        labels = dict(
            pair.split("=", 1) for pair in m.group("labels").split(",")
            if "=" in pair
        )
        tenant = labels.get("tenant")
        if tenant is None:
            continue
        by_family.setdefault(m.group("name"), set()).add(tenant.strip('"'))
    if not by_family:
        fail(f"{path}: no tenant-labeled samples at all "
             "(serve telemetry never exported)")
    for family in SERVE_TENANT_FAMILIES:
        if family not in by_family:
            fail(f"{path}: required tenant-labeled family {family!r} missing "
                 f"(saw {sorted(by_family)})")
    tenants = set().union(*by_family.values())
    if expect_tenants is not None and len(tenants) < int(expect_tenants):
        fail(f"{path}: tenant labels cover only {sorted(tenants)}, expected "
             f"at least {expect_tenants} tenants")
    print(f"{path}: ok ({len(by_family)} tenant-labeled families over "
          f"{len(tenants)} tenants)")


def main():
    args = sys.argv[1:]
    if "--serve" in args:
        opts = dict(zip(args[::2], args[1::2]))
        if "--serve" not in opts:
            fail("--serve requires a file argument")
        expect = opts.get("--expect-tenants")
        check_serve_tenants(opts["--serve"], expect)
        if "--patterns" in opts:
            check_serve_patterns(opts["--patterns"])
        if "--update" in opts:
            check_serve_update(opts["--update"])
        if "--serve-metrics" in opts:
            check_serve_metrics(opts["--serve-metrics"], expect)
        print("serve daemon check passed")
        return
    if "--sli" in args:
        opts = dict(zip(args[::2], args[1::2]))
        if "--sli" not in opts:
            fail("--sli requires a file argument")
        check_sli(opts["--sli"])
        if "--snapshot" in opts:
            check_sli_snapshot(opts["--snapshot"])
        print("sli endpoint check passed")
        return
    if "--prom" in args:
        opts = dict(zip(args[::2], args[1::2]))
        if "--prom" not in opts:
            fail("--prom requires a file argument")
        check_prom(opts["--prom"])
        if "--healthz" in opts:
            check_healthz(opts["--healthz"])
        if "--flight" in opts:
            check_flight(opts["--flight"])
        if "--profile" in opts:
            check_profile(opts["--profile"])
        if "--slow" in opts:
            check_slow(opts["--slow"])
        if "--alerts" in opts:
            check_alerts(opts["--alerts"], opts.get("--expect-firing"))
        print("live endpoint check passed")
        return
    if len(args) != 2:
        fail(
            "usage: check_telemetry.py <metrics.json> <trace.json>\n"
            "   or: check_telemetry.py --prom <metrics.txt> "
            "[--healthz <healthz.json>] [--flight <flight.json>] "
            "[--profile <profile.folded>] [--slow <slow.json>] "
            "[--alerts <alerts.json>] [--expect-firing <name>]\n"
            "   or: check_telemetry.py --sli <sli.json> "
            "[--snapshot <snapshot.json>]\n"
            "   or: check_telemetry.py --serve <tenants.json> "
            "[--patterns <patterns.json>] [--update <update.json>] "
            "[--serve-metrics <metrics.txt>] [--expect-tenants <n>]"
        )
    check_metrics(args[0])
    check_trace(args[1])
    print("telemetry schema check passed")


if __name__ == "__main__":
    main()
