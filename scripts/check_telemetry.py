#!/usr/bin/env python3
"""CI gate for the telemetry export schema.

Runs after an example batch with telemetry enabled; validates that
`metrics.json` and `trace.json` parse as JSON and contain the keys the
documented schema promises. Fails loudly on drift so exporter changes are
deliberate.

Usage: check_telemetry.py <metrics.json> <trace.json>
"""

import json
import sys

REQUIRED_COUNTERS = ["pmt_us", "cache.hits", "vf2.nodes", "vf2.searches"]
REQUIRED_SECTIONS = ["counters", "gauges", "histograms", "spans"]
REQUIRED_SPANS = ["batch.ingest", "batch.fct", "batch.cluster", "batch.index"]
SPAN_FIELDS = ["count", "total_us", "max_us"]
EVENT_FIELDS = ["name", "cat", "ph", "ts", "dur", "pid", "tid"]


def fail(msg):
    print(f"telemetry schema check FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def check_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    for section in REQUIRED_SECTIONS:
        if not isinstance(doc.get(section), dict):
            fail(f"{path}: missing section {section!r}")
    for name in REQUIRED_COUNTERS:
        value = doc["counters"].get(name)
        if not isinstance(value, int) or value <= 0:
            fail(f"{path}: counter {name!r} missing or not a positive int ({value!r})")
    for name in REQUIRED_SPANS:
        span = doc["spans"].get(name)
        if not isinstance(span, dict):
            fail(f"{path}: span {name!r} missing")
        for field in SPAN_FIELDS:
            if not isinstance(span.get(field), int):
                fail(f"{path}: span {name!r} missing field {field!r}")
        if span["count"] < 1:
            fail(f"{path}: span {name!r} never completed")
    for name, hist in doc["histograms"].items():
        for field in ["count", "sum", "max", "buckets"]:
            if field not in hist:
                fail(f"{path}: histogram {name!r} missing field {field!r}")
    print(f"{path}: ok ({len(doc['counters'])} counters, {len(doc['spans'])} spans)")


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    if doc.get("displayTimeUnit") != "ms":
        fail(f"{path}: displayTimeUnit must be 'ms'")
    if not isinstance(doc.get("droppedEvents"), int):
        fail(f"{path}: droppedEvents missing")
    names = set()
    for event in events:
        for field in EVENT_FIELDS:
            if field not in event:
                fail(f"{path}: event missing field {field!r}: {event}")
        if event["ph"] != "X":
            fail(f"{path}: unexpected phase {event['ph']!r} (complete events only)")
        names.add(event["name"])
    for name in ["batch.ingest", "batch.fct"]:
        if name not in names:
            fail(f"{path}: no {name!r} event in trace")
    print(f"{path}: ok ({len(events)} events, {len(names)} distinct spans)")


def main():
    if len(sys.argv) != 3:
        fail("usage: check_telemetry.py <metrics.json> <trace.json>")
    check_metrics(sys.argv[1])
    check_trace(sys.argv[2])
    print("telemetry schema check passed")


if __name__ == "__main__":
    main()
