//! Quickstart: bootstrap MIDAS on a graph database, evolve the database,
//! and watch the canned pattern set being maintained.
//!
//! ```sh
//! cargo run -p midas-examples --bin quickstart
//! ```

use midas_core::{Midas, MidasConfig};
use midas_datagen::{DatasetKind, DatasetSpec, MotifKind};
use midas_examples::print_patterns;

fn main() {
    // 1. A database of small labeled molecule graphs (PubChem-like).
    let dataset = DatasetSpec::new(DatasetKind::PubchemLike, 150, 7).generate();
    println!(
        "database {}: {} graphs, {} total edges",
        dataset.name,
        dataset.db.len(),
        dataset.db.total_edges()
    );

    // 2. Bootstrap: mine frequent closed trees, cluster, summarize, select
    //    the initial canned patterns (the CATAPULT++ pipeline).
    let config = MidasConfig {
        budget: midas_catapult::PatternBudget {
            eta_min: 3,
            eta_max: 6,
            gamma: 8,
        },
        sup_min: 0.4,
        max_tree_edges: 3,
        coarse_clusters: 4,
        epsilon: 0.01,
        ..MidasConfig::default()
    };
    let mut midas = Midas::bootstrap(dataset.db, config).expect("non-empty database");
    print_patterns(
        "\ninitial canned patterns",
        &midas.patterns(),
        &dataset.interner,
    );
    let q = midas.quality();
    println!(
        "quality: scov={:.2} lcov={:.2} div={:.2} cog={:.2}",
        q.scov, q.lcov, q.div, q.cog
    );

    // 3. The repository evolves: a batch of boronic-ester compounds lands.
    let update = midas_datagen::novel_family_batch(MotifKind::BoronicEster, 50, 99);
    println!(
        "\napplying a batch of {} novel compounds...",
        update.insert.len()
    );
    let report = midas.apply_batch(update);
    println!(
        "classified {:?} (graphlet drift {:.3}); {} candidates, {} swaps, PMT {:?}",
        report.kind,
        report.distance,
        report.candidates_generated,
        report.swaps,
        report.pattern_maintenance_time
    );

    // 4. The refreshed pattern set.
    print_patterns(
        "\nmaintained canned patterns",
        &midas.patterns(),
        &dataset.interner,
    );
    let q = midas.quality();
    println!(
        "quality: scov={:.2} lcov={:.2} div={:.2} cog={:.2}",
        q.scov, q.lcov, q.div, q.cog
    );
}
