//! Shared display helpers for the MIDAS examples.

use midas_graph::{Interner, LabeledGraph};

/// Renders a pattern as `[labels] |V|=n |E|=m edges: ...`.
pub fn render_pattern(pattern: &LabeledGraph, interner: &Interner) -> String {
    let labels: Vec<String> = pattern
        .labels()
        .iter()
        .map(|&l| interner.name_or_placeholder(l))
        .collect();
    let edges: Vec<String> = pattern
        .edges()
        .iter()
        .map(|&(u, v)| format!("{u}-{v}"))
        .collect();
    format!(
        "[{}] |V|={} |E|={} edges: {}",
        labels.join(" "),
        pattern.vertex_count(),
        pattern.edge_count(),
        edges.join(" ")
    )
}

/// Prints a pattern set with a title.
pub fn print_patterns(title: &str, patterns: &[LabeledGraph], interner: &Interner) {
    println!("{title} ({} patterns):", patterns.len());
    for (i, p) in patterns.iter().enumerate() {
        println!("  p{:<2} {}", i + 1, render_pattern(p, interner));
    }
}
