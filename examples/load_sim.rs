//! Closed-loop load simulation with live user-facing SLIs.
//!
//! ```sh
//! MIDAS_SERVE=127.0.0.1:9898 MIDAS_LOAD_USERS=8 MIDAS_LOAD_TICKS=12 \
//!     cargo run --release -p midas-examples --bin load_sim
//! # while it runs (or during the linger window):
//! curl -s http://127.0.0.1:9898/sli       # reduction, staleness, latency
//! curl -s http://127.0.0.1:9898/metrics | grep midas_sli_
//! ```
//!
//! Boots MIDAS on a synthetic molecule repository, then runs
//! `midas_load::run`: N simulated users formulating queries against the
//! live pattern snapshot while the driver streams update batches. SLIs
//! (formulation-cost reduction vs the frozen no-maintenance baseline,
//! snapshot staleness, read/formulation latency) are served live on
//! `GET /sli` and as `midas_sli_*` Prometheus families, and the exact
//! end-of-run report is printed.
//!
//! Environment knobs:
//!
//! * `MIDAS_LOAD_USERS` / `MIDAS_LOAD_TICKS` / `MIDAS_LOAD_TICK_MS` /
//!   `MIDAS_LOAD_POOL` / `MIDAS_LOAD_SEED` — harness shape (defaults:
//!   8 users, 6 ticks);
//! * `MIDAS_LOAD_DB` — database size to bootstrap on (default 160);
//! * `MIDAS_LOAD_LINGER_MS` — keep the process (and the endpoints) alive
//!   this long after the run, so scripts can scrape `/sli` (default 0);
//! * `MIDAS_SERVE` — bind address (default `127.0.0.1:0`, printed and
//!   written to `MIDAS_ADDR_FILE` when set);
//! * `MIDAS_LOAD_HTTP` — `addr[/tenant]` of a running `serve_daemon`:
//!   instead of bootstrapping in-process, drive the closed loop over
//!   HTTP against that daemon (the tenant — default `loadsim` — is
//!   created on the fly when it does not exist yet).

use midas_core::{Midas, MidasConfig};
use midas_datagen::{DatasetKind, DatasetSpec};
use midas_load::{LoadConfig, LoadReport};
use midas_obs::TelemetryConfig;
use std::time::Duration;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

/// Prints the end-of-run report. "load report" is the sentinel CI's
/// load-smoke job waits for before scraping the lingering server.
fn print_report(report: &LoadReport) {
    println!(
        "load report: done in {} ms: {} queries, reduction {:.4} ({} live vs {} baseline steps)",
        report.wall_ms, report.queries, report.reduction, report.steps_live, report.steps_baseline
    );
    println!(
        "  read ns      p50 {:>8}  p99 {:>8}  max {:>8}",
        report.read_ns.p50, report.read_ns.p99, report.read_ns.max
    );
    println!(
        "  formulate ns p50 {:>8}  p99 {:>8}  max {:>8}",
        report.formulate_ns.p50, report.formulate_ns.p99, report.formulate_ns.max
    );
    println!(
        "  staleness    p50 {} p99 {} max {} batches; drift mean {:.6} max {:.6}",
        report.staleness_batches.p50,
        report.staleness_batches.p99,
        report.staleness_batches.max,
        report.staleness_drift_mean,
        report.staleness_drift_max
    );
}

/// Runs the closed loop over HTTP against an external `serve_daemon`,
/// creating the target tenant when it is not there yet.
fn run_over_http(target: &str, db_size: usize, cfg: &LoadConfig) -> LoadReport {
    let (addr, tenant) = match target.split_once('/') {
        Some((addr, tenant)) if !tenant.is_empty() => (addr, tenant),
        _ => (target, "loadsim"),
    };
    let client = midas_serve::client::ServeClient::new(addr);
    let created = client
        .create_tenant(tenant, "pubchem_like", db_size, 41, "small")
        .expect("reach serve daemon");
    match created.status {
        201 => println!("created tenant {tenant} ({db_size} graphs) on {addr}"),
        409 => println!("driving existing tenant {tenant} on {addr}"),
        s => panic!("tenant create failed: HTTP {s} {}", created.body.trim()),
    }
    midas_load::run_http(addr, tenant, cfg).expect("http load run")
}

fn main() {
    let kind = DatasetKind::PubchemLike;
    let db_size = env_u64("MIDAS_LOAD_DB", 160) as usize;

    // HTTP mode: the daemon at MIDAS_LOAD_HTTP owns the Midas instances;
    // this process only runs users + driver over the wire (while still
    // feeding its own /sli, since samples are recorded client-side).
    if let Ok(target) = std::env::var("MIDAS_LOAD_HTTP") {
        let telemetry = TelemetryConfig {
            enabled: true,
            ..TelemetryConfig::default()
        }
        .from_env();
        telemetry.activate();
        let obs = midas_obs::ObsServer::start(
            &std::env::var("MIDAS_SERVE").unwrap_or_else(|_| "127.0.0.1:0".into()),
        )
        .expect("observability server failed to bind");
        println!("serving observability endpoints on http://{}", obs.addr());
        if let Some(path) = std::env::var_os("MIDAS_ADDR_FILE") {
            std::fs::write(&path, obs.addr().to_string()).expect("write MIDAS_ADDR_FILE");
        }
        let cfg = LoadConfig::default().from_env();
        println!(
            "load (http): {} users × {} ticks (tick {} ms, pool {}) against {target}",
            cfg.users, cfg.ticks, cfg.tick_ms, cfg.pool
        );
        let report = run_over_http(&target, db_size, &cfg);
        print_report(&report);
        let linger = env_u64("MIDAS_LOAD_LINGER_MS", 0);
        if linger > 0 {
            println!("lingering {linger} ms so /sli stays scrapeable");
            std::thread::sleep(Duration::from_millis(linger));
        }
        return;
    }

    let dataset = DatasetSpec::new(kind, db_size, 41).generate();
    let config = MidasConfig {
        budget: midas_catapult::PatternBudget {
            eta_min: 3,
            eta_max: 6,
            gamma: 10,
        },
        sup_min: 0.4,
        max_tree_edges: 3,
        coarse_clusters: 5,
        epsilon: 0.01,
        telemetry: TelemetryConfig {
            enabled: true,
            serve: true,
            ..TelemetryConfig::default()
        },
        ..MidasConfig::default()
    };
    let mut midas = Midas::bootstrap(dataset.db, config).expect("non-empty database");
    let addr = midas
        .obs_addr()
        .expect("observability server failed to bind");
    println!("serving observability endpoints on http://{addr}");
    println!("  GET /sli       user-facing SLIs: reduction, staleness, latency");
    println!("  GET /metrics   Prometheus exposition (midas_sli_* families)");
    println!("  GET /snapshot  full metrics snapshot as JSON");
    if let Some(path) = std::env::var_os("MIDAS_ADDR_FILE") {
        std::fs::write(&path, addr.to_string()).expect("write MIDAS_ADDR_FILE");
    }

    let cfg = LoadConfig::default().from_env();
    println!(
        "load: {} users × {} ticks (tick {} ms, pool {}, db {})",
        cfg.users, cfg.ticks, cfg.tick_ms, cfg.pool, db_size
    );
    let report = midas_load::run(&mut midas, kind, &cfg);
    print_report(&report);

    let linger = env_u64("MIDAS_LOAD_LINGER_MS", 0);
    if linger > 0 {
        println!("lingering {linger} ms so /sli stays scrapeable");
        std::thread::sleep(Duration::from_millis(linger));
    }
}
