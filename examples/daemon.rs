//! Long-running maintenance daemon serving the live observability
//! endpoints: `/metrics`, `/snapshot`, `/healthz`, `/flight`, `/profile`,
//! `/slow`, `/alerts`.
//!
//! ```sh
//! MIDAS_SERVE=127.0.0.1:9898 MIDAS_PROFILE_HZ=97 \
//!     cargo run -p midas-examples --bin daemon
//! # then, from another shell:
//! curl -s http://127.0.0.1:9898/metrics | head
//! curl -s http://127.0.0.1:9898/healthz
//! curl -s http://127.0.0.1:9898/profile   # flamegraph-ready folded stacks
//! curl -s http://127.0.0.1:9898/slow      # slowest VF2 searches, attributed
//! curl -s http://127.0.0.1:9898/alerts    # SLO burn-rate alert states
//! ```
//!
//! Bootstraps on a synthetic molecule-like repository and applies one
//! batch per tick forever (growth most ticks, deletions and novel-family
//! waves on a schedule, so both minor and major maintenance show up in
//! the flight recorder). Endpoints are served from inside the process by
//! `midas-obs`'s std-only HTTP server — nothing to install, nothing to
//! sidecar.
//!
//! Environment knobs (besides the `MIDAS_*` telemetry switches):
//!
//! * `MIDAS_SERVE` — bind address (default here: `127.0.0.1:0`, printed
//!   and written to `MIDAS_ADDR_FILE` so scripts can find the port);
//! * `MIDAS_ADDR_FILE` — if set, the bound `host:port` is written there;
//! * `MIDAS_DAEMON_ITERS` — stop after this many batches (default: run
//!   until killed), used by the CI smoke test;
//! * `MIDAS_DAEMON_PAUSE_MS` — sleep between batches (default 500);
//! * `MIDAS_PROFILE_HZ` — cooperative sampling-profiler rate (0 = off);
//!   the aggregate shows up at `GET /profile`;
//! * `MIDAS_SLO_PHASE_US` / `MIDAS_SLO_VF2_NS` — latency budgets arming
//!   the burn-rate alerts (`GET /alerts`; firing alerts are printed per
//!   batch and flip `/healthz` to `"alerting"`);
//! * `MIDAS_FAULT=slow:US` — inject a per-batch slowdown to watch the
//!   alerts fire.

use midas_core::{Midas, MidasConfig};
use midas_datagen::updates::{deletion_percent, growth_percent};
use midas_datagen::{DatasetKind, DatasetSpec, MotifKind};
use midas_obs::TelemetryConfig;
use std::time::Duration;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

fn main() {
    let kind = DatasetKind::PubchemLike;
    let dataset = DatasetSpec::new(kind, 200, 41).generate();
    let config = MidasConfig {
        budget: midas_catapult::PatternBudget {
            eta_min: 3,
            eta_max: 6,
            gamma: 10,
        },
        sup_min: 0.4,
        max_tree_edges: 3,
        coarse_clusters: 5,
        epsilon: 0.01,
        telemetry: TelemetryConfig {
            enabled: true,
            serve: true,
            ..TelemetryConfig::default()
        },
        ..MidasConfig::default()
    };
    let mut midas = Midas::bootstrap(dataset.db, config).expect("non-empty database");
    let addr = midas
        .obs_addr()
        .expect("observability server failed to bind");
    println!("serving observability endpoints on http://{addr}");
    println!("  GET /metrics   Prometheus text exposition");
    println!("  GET /snapshot  full metrics snapshot as JSON");
    println!("  GET /healthz   liveness + drift + last batch");
    println!("  GET /flight    flight-recorder dump (recent batches + events)");
    println!("  GET /profile   folded profiler stacks (flamegraph-ready)");
    println!("  GET /slow      tail-latency exemplars (slowest searches, attributed)");
    println!("  GET /alerts    SLO burn-rate alert states");
    if let Some(path) = std::env::var_os("MIDAS_ADDR_FILE") {
        std::fs::write(&path, addr.to_string()).expect("write MIDAS_ADDR_FILE");
    }

    let iters = env_u64("MIDAS_DAEMON_ITERS", 0);
    let pause = Duration::from_millis(env_u64("MIDAS_DAEMON_PAUSE_MS", 500));
    let mut tick = 0u64;
    loop {
        tick += 1;
        let update = match tick % 5 {
            0 => midas_datagen::novel_family_batch(
                if tick.is_multiple_of(2) {
                    MotifKind::BoronicEster
                } else {
                    MotifKind::Phosphate
                },
                midas.db().len() / 5,
                1_000 + tick,
            ),
            3 => deletion_percent(midas.db(), 4.0, 1_000 + tick),
            _ => growth_percent(&kind.params(), midas.db(), 4.0, 1_000 + tick),
        };
        let report = midas.apply_batch(update);
        println!(
            "batch {tick:>4}: {:?} drift {:.4}, {} candidates, {} swaps, PMT {:?}",
            report.kind,
            report.distance,
            report.candidates_generated,
            report.swaps,
            report.pattern_maintenance_time
        );
        let firing = midas_obs::alerts::firing();
        if !firing.is_empty() {
            println!("batch {tick:>4}: ALERTS FIRING: {}", firing.join(", "));
        }
        if iters > 0 && tick >= iters {
            break;
        }
        std::thread::sleep(pause);
    }
    println!("done after {tick} batches; endpoints stay up until exit");
}
