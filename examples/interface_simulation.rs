//! Visual-interface simulation: 25 simulated users formulate queries with
//! maintained vs unmaintained pattern panels, reporting QFT / steps / VMT
//! (the §7.2 user-study mechanics).
//!
//! ```sh
//! cargo run -p midas-examples --bin interface_simulation
//! ```

use midas_core::{Midas, MidasConfig};
use midas_datagen::{DatasetKind, DatasetSpec, MotifKind};
use midas_graph::GraphId;
use midas_queryform::{StudyConfig, UserStudy};
use std::collections::BTreeSet;

fn main() {
    let dataset = DatasetSpec::new(DatasetKind::AidsLike, 200, 31).generate();
    let config = MidasConfig {
        budget: midas_catapult::PatternBudget {
            eta_min: 3,
            eta_max: 8,
            gamma: 12,
        },
        sup_min: 0.4,
        max_tree_edges: 3,
        coarse_clusters: 6,
        epsilon: 0.01,
        ..MidasConfig::default()
    };
    let mut midas = Midas::bootstrap(dataset.db, config).expect("non-empty");
    let stale = midas.patterns();

    // Two novel waves arrive.
    let before: BTreeSet<GraphId> = midas.db().ids().collect();
    midas.apply_batch(midas_datagen::novel_family_batch(
        MotifKind::BoronicEster,
        40,
        310,
    ));
    midas.apply_batch(midas_datagen::novel_family_batch(
        MotifKind::Phosphate,
        40,
        311,
    ));
    let inserted: Vec<GraphId> = midas.db().ids().filter(|id| !before.contains(id)).collect();

    // Users formulate queries balanced over the new compounds (§7.1).
    let queries = midas_datagen::balanced_query_set(midas.db(), &inserted, 20, (6, 14), 312);
    let study = UserStudy::new(StudyConfig::default());
    let results = study.compare(
        &queries,
        &[
            ("MIDAS (maintained)", midas.patterns()),
            ("NoMaintain (stale)", stale),
            ("no patterns at all", Vec::new()),
        ],
    );
    println!(
        "simulated study over {} queries, 25 users:\n",
        queries.len()
    );
    println!(
        "{:<22} {:>8} {:>7} {:>7} {:>6}",
        "approach", "QFT", "steps", "VMT", "MP"
    );
    for (name, r) in &results {
        println!(
            "{:<22} {:>7.1}s {:>7.1} {:>6.1}s {:>5.0}%",
            name, r.qft_secs, r.steps, r.vmt_secs, r.missed_pct
        );
    }
    let maintained = results["MIDAS (maintained)"];
    let stale_r = results["NoMaintain (stale)"];
    println!(
        "\nQFT saved by maintenance: {:.1}% (paper reports up to 29.5%)",
        (stale_r.qft_secs - maintained.qft_secs) / stale_r.qft_secs * 100.0
    );
}
