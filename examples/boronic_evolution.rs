//! The paper's running example (Examples 1.1 / 1.2): a chemist formulates
//! a boronic-compound query before and after a wave of boronic esters is
//! added to the repository.
//!
//! ```sh
//! cargo run -p midas-examples --bin boronic_evolution
//! ```

use midas_core::{Midas, MidasConfig};
use midas_datagen::{DatasetKind, DatasetSpec, MotifKind};
use midas_examples::print_patterns;
use midas_queryform::formulate;

fn main() {
    let dataset = DatasetSpec::new(DatasetKind::PubchemLike, 200, 21).generate();
    let config = MidasConfig {
        budget: midas_catapult::PatternBudget {
            eta_min: 3,
            eta_max: 8,
            gamma: 12,
        },
        sup_min: 0.4,
        max_tree_edges: 3,
        coarse_clusters: 6,
        epsilon: 0.01,
        ..MidasConfig::default()
    };
    let mut midas = Midas::bootstrap(dataset.db, config).expect("non-empty");
    let stale = midas.patterns();
    print_patterns("GUI panel before the update", &stale, &dataset.interner);

    // PubChem adds a family of boronic esters (Example 1.2's 6 375
    // compounds, scaled): graphlet and label mass shift.
    let update = midas_datagen::novel_family_batch(MotifKind::BoronicEster, 80, 210);
    let report = midas.apply_batch(update);
    println!(
        "\nboronic-ester wave: {:?} modification (drift {:.3}), {} swaps\n",
        report.kind, report.distance, report.swaps
    );
    let fresh = midas.patterns();
    print_patterns("GUI panel after maintenance", &fresh, &dataset.interner);

    // John's query: a boronic-ester compound.
    let query = midas_datagen::novel_family_batch(MotifKind::BoronicEster, 3, 911)
        .insert
        .remove(1);
    println!(
        "\nquery: boronic-ester compound with {} vertices / {} edges",
        query.vertex_count(),
        query.edge_count()
    );
    let edge_mode = formulate(&query, &[]);
    let with_stale = formulate(&query, &stale);
    let with_fresh = formulate(&query, &fresh);
    println!("  edge-at-a-time: {} steps", edge_mode.edge_steps);
    println!(
        "  stale panel:    {} steps ({} patterns used)",
        with_stale.steps, with_stale.patterns_used
    );
    println!(
        "  fresh panel:    {} steps ({} patterns used)",
        with_fresh.steps, with_fresh.patterns_used
    );
    assert!(with_fresh.steps <= with_stale.steps);
    assert!(with_stale.steps <= edge_mode.edge_steps);
    println!("\nordering matches the paper: edge-at-a-time ≥ stale ≥ refreshed");
}
