//! Periodic-update simulation: daily batches hit the repository for two
//! simulated weeks; MIDAS classifies each as major/minor and maintains
//! opportunely — most days cost almost nothing.
//!
//! ```sh
//! cargo run -p midas-examples --bin streaming_updates
//! ```

use midas_core::{Midas, MidasConfig, ModificationKind};
use midas_datagen::updates::{deletion_percent, growth_percent};
use midas_datagen::{DatasetKind, DatasetSpec, MotifKind};

/// Local copy of the bench formatter (examples do not depend on the bench
/// crate).
mod midas_bench_shim {
    pub fn fmt_duration(d: std::time::Duration) -> String {
        if d.as_millis() >= 1 {
            format!("{}ms", d.as_millis())
        } else {
            format!("{}µs", d.as_micros())
        }
    }
}

fn main() {
    let kind = DatasetKind::PubchemLike;
    let dataset = DatasetSpec::new(kind, 250, 41).generate();
    let config = MidasConfig {
        budget: midas_catapult::PatternBudget {
            eta_min: 3,
            eta_max: 6,
            gamma: 10,
        },
        sup_min: 0.4,
        max_tree_edges: 3,
        coarse_clusters: 5,
        epsilon: 0.01,
        ..MidasConfig::default()
    };
    let mut midas = Midas::bootstrap(dataset.db, config).expect("non-empty");
    println!(
        "day  0: bootstrap, {} graphs, {} patterns\n",
        midas.db().len(),
        midas.patterns().len()
    );

    let mut majors = 0;
    for day in 1..=14u64 {
        // Most days: ordinary growth and the occasional cleanup. Every
        // fifth day a novel family wave lands.
        let update = match day % 5 {
            0 => midas_datagen::novel_family_batch(
                if day % 2 == 0 {
                    MotifKind::BoronicEster
                } else {
                    MotifKind::Phosphate
                },
                midas.db().len() / 5,
                1_000 + day,
            ),
            3 => deletion_percent(midas.db(), 5.0, 1_000 + day),
            _ => growth_percent(&kind.params(), midas.db(), 5.0, 1_000 + day),
        };
        let adds = update.insert.len();
        let dels = update.delete.len();
        let report = midas.apply_batch(update);
        if report.kind == ModificationKind::Major {
            majors += 1;
        }
        println!(
            "day {day:>2}: +{adds:<3} -{dels:<3} drift {:.4} -> {:?} (PMT {}, swaps {})",
            report.distance,
            report.kind,
            midas_bench_shim::fmt_duration(report.pattern_maintenance_time),
            report.swaps
        );
    }
    let quality = midas.quality();
    println!(
        "\nafter 14 days: {} graphs, {majors} major maintenance events,\n\
         pattern quality scov={:.2} lcov={:.2} div={:.2} cog={:.2}",
        midas.db().len(),
        quality.scov,
        quality.lcov,
        quality.div,
        quality.cog
    );
}
