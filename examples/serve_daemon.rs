//! The multi-tenant pattern-serving daemon, runnable.
//!
//! ```sh
//! MIDAS_SERVE_ADDR=127.0.0.1:9900 MIDAS_SERVE=127.0.0.1:9898 \
//!     cargo run --release -p midas-examples --bin serve_daemon
//! # from another shell:
//! curl -s http://127.0.0.1:9900/healthz
//! curl -s -X POST http://127.0.0.1:9900/v1/tenants \
//!   -d '{"name": "acme", "dataset": {"kind": "pubchem_like", "size": 120, "seed": 41}, "config": "small"}'
//! curl -s http://127.0.0.1:9900/v1/acme/patterns | head -c 400
//! curl -s -X POST 'http://127.0.0.1:9900/v1/acme/updates?mode=sync' \
//!   -d '{"generate": {"op": "growth", "percent": 5, "seed": 7}}'
//! curl -s http://127.0.0.1:9900/v1/acme/epoch
//! curl -s http://127.0.0.1:9898/metrics | grep 'tenant="acme"'
//! ```
//!
//! Boots a `midas_serve::ServeDaemon` (the `/v1` API) plus the
//! observability server (`/metrics`, `/sli`, `/healthz`, …) in one
//! process. Tenants are created over HTTP; each gets its own embedded
//! MIDAS instance, with reads served lock-free off the published
//! snapshot and maintenance running on the shared worker pool.
//!
//! Environment knobs:
//!
//! * `MIDAS_SERVE_ADDR` — the API bind address (default `127.0.0.1:0`,
//!   printed, and written to `MIDAS_ADDR_FILE` when that is set);
//! * `MIDAS_SERVE_HTTP_WORKERS` / `MIDAS_SERVE_MAINT_WORKERS` — pool
//!   sizes (defaults 8 and 2);
//! * `MIDAS_SERVE` — the observability bind address (default
//!   `127.0.0.1:0`; written to `MIDAS_OBS_ADDR_FILE` when that is set);
//! * `MIDAS_SERVE_TENANTS` — comma-separated `name:kind:size:seed`
//!   specs to create at boot, e.g. `acme:pubchem_like:120:41`;
//! * `MIDAS_SERVE_ITERS_MS` — exit after this many milliseconds
//!   (default: run until killed), for scripted smoke runs.

use midas_serve::client::ServeClient;
use midas_serve::{ServeConfig, ServeDaemon};
use std::time::Duration;

fn main() {
    // One process-wide telemetry activation: the daemon owns the single
    // obs server; tenants bootstrap with `bootstrap_embedded`, which
    // deliberately never starts its own.
    let telemetry = midas_obs::TelemetryConfig {
        enabled: true,
        ..midas_obs::TelemetryConfig::default()
    }
    .from_env();
    telemetry.activate();
    let obs_addr = std::env::var("MIDAS_SERVE").unwrap_or_else(|_| "127.0.0.1:0".into());
    let obs = midas_obs::ObsServer::start(&obs_addr).expect("bind observability server");
    println!("observability on http://{}", obs.addr());
    if let Some(path) = std::env::var_os("MIDAS_OBS_ADDR_FILE") {
        std::fs::write(&path, obs.addr().to_string()).expect("write MIDAS_OBS_ADDR_FILE");
    }

    let daemon = ServeDaemon::start(ServeConfig::default().from_env()).expect("bind serving API");
    let addr = daemon.addr();
    println!("serving API on http://{addr}");
    println!("  GET    /healthz                    daemon liveness");
    println!("  GET    /v1/tenants                 list tenants");
    println!("  POST   /v1/tenants                 create a tenant");
    println!("  GET    /v1/{{tenant}}/patterns       lock-free pattern snapshot");
    println!("  GET    /v1/{{tenant}}/epoch          staleness probe");
    println!("  GET    /v1/{{tenant}}/queries        sample a query workload");
    println!("  POST   /v1/{{tenant}}/updates        apply/enqueue a batch (?mode=sync)");
    println!("  POST   /v1/{{tenant}}/querylog       log formulated queries into /sli");
    println!("  DELETE /v1/{{tenant}}                remove a tenant");
    if let Some(path) = std::env::var_os("MIDAS_ADDR_FILE") {
        std::fs::write(&path, addr.to_string()).expect("write MIDAS_ADDR_FILE");
    }

    // Optional boot-time tenants, through the same API path as curl.
    if let Ok(specs) = std::env::var("MIDAS_SERVE_TENANTS") {
        let client = ServeClient::new(addr.to_string());
        for spec in specs.split(',').filter(|s| !s.trim().is_empty()) {
            let parts: Vec<&str> = spec.trim().split(':').collect();
            let (name, kind, size, seed) = match parts.as_slice() {
                [n, k, s, seed] => (*n, *k, s.parse().unwrap_or(100), seed.parse().unwrap_or(41)),
                [n, k, s] => (*n, *k, s.parse().unwrap_or(100), 41),
                _ => {
                    eprintln!(
                        "skipping malformed tenant spec {spec:?} (want name:kind:size[:seed])"
                    );
                    continue;
                }
            };
            match client.create_tenant(name, kind, size, seed, "small") {
                Ok(reply) if reply.status == 201 => {
                    println!("created tenant {name} ({kind}, {size} graphs)")
                }
                Ok(reply) => eprintln!(
                    "tenant {name} failed: HTTP {} {}",
                    reply.status,
                    reply.body.trim()
                ),
                Err(e) => eprintln!("tenant {name} failed: {e}"),
            }
        }
    }

    match std::env::var("MIDAS_SERVE_ITERS_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
    {
        Some(ms) => {
            println!("serving for {ms} ms, then exiting");
            std::thread::sleep(Duration::from_millis(ms));
            daemon.shutdown();
            obs.shutdown();
        }
        None => {
            println!("serving until killed (ctrl-c)");
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
    }
}
