//! Profiling a batch: run one maintenance cycle with full telemetry and
//! export `metrics.json` + `trace.json`.
//!
//! ```sh
//! cargo run -p midas-examples --bin profile_batch
//! # or via the environment switches, with any binary:
//! MIDAS_TELEMETRY=1 MIDAS_TRACE_OUT=trace.json cargo run -p midas-examples --bin quickstart
//! ```
//!
//! Open `trace.json` in `chrome://tracing` or <https://ui.perfetto.dev> to
//! see the Algorithm-1 phases (`batch.*` spans) with the `exec.worker`
//! lanes of the parallel kernel nested underneath. `metrics.json` holds
//! the counter/histogram snapshot for the same batch — this is the file
//! the CI telemetry gate validates.

use midas_core::{Midas, MidasConfig};
use midas_datagen::{DatasetKind, DatasetSpec, MotifKind};
use midas_obs::TelemetryConfig;

fn main() {
    // Telemetry on: metrics + trace + info logging. The environment can
    // still override (MIDAS_TELEMETRY=0 silences this example).
    let config = MidasConfig {
        budget: midas_catapult::PatternBudget {
            eta_min: 3,
            eta_max: 6,
            gamma: 8,
        },
        sup_min: 0.4,
        max_tree_edges: 3,
        coarse_clusters: 4,
        epsilon: 0.01,
        telemetry: TelemetryConfig::on(),
        ..MidasConfig::default()
    };

    let dataset = DatasetSpec::new(DatasetKind::PubchemLike, 150, 7).generate();
    let mut midas = Midas::bootstrap(dataset.db, config).expect("non-empty database");
    println!(
        "bootstrapped on {} graphs, {} initial patterns",
        midas.db().len(),
        midas.patterns().len()
    );

    let update = midas_datagen::novel_family_batch(MotifKind::BoronicEster, 50, 99);
    let report = midas.apply_batch(update);
    println!(
        "batch classified {:?} (drift {:.3}): {} candidates, {} swaps, PMT {:?}",
        report.kind,
        report.distance,
        report.candidates_generated,
        report.swaps,
        report.pattern_maintenance_time
    );

    // The report's snapshot is scoped to the batch; persist it next to the
    // Chrome trace (written by apply_batch itself, honoring
    // MIDAS_TRACE_OUT).
    report
        .telemetry
        .write("metrics.json")
        .expect("write metrics.json");
    let phases = [
        "batch.ingest",
        "batch.fct",
        "batch.cluster",
        "batch.index",
        "batch.classify",
        "batch.candidates",
        "batch.swap",
    ];
    println!("\nphase breakdown (spans, µs):");
    for phase in phases {
        let s = report.telemetry.span(phase);
        if s.count > 0 {
            println!("  {phase:<18} {:>10}", s.total_us);
        }
    }
    println!(
        "\nvf2: {} searches, {} recursion nodes, {} prefilter rejects",
        report.telemetry.counter("vf2.searches"),
        report.telemetry.counter("vf2.nodes"),
        report.telemetry.counter("vf2.prefilter_rejects")
    );
    println!(
        "cache: {} hits / {} misses, {} insertions, {} invalidations",
        report.telemetry.counter("cache.hits"),
        report.telemetry.counter("cache.misses"),
        report.telemetry.counter("cache.insertions"),
        report.telemetry.counter("cache.invalidations")
    );
    println!(
        "exec: {} fan-outs, {} tasks",
        report.telemetry.counter("exec.fanouts"),
        report.telemetry.counter("exec.tasks")
    );
    println!(
        "\nwrote metrics.json; trace at {}",
        TelemetryConfig::trace_path().display()
    );
}
