//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_shuffle`, range and tuple strategies, [`collection::vec`],
//! [`num`]'s `ANY` constants, a deterministic [`test_runner::TestRunner`],
//! and the [`proptest!`] / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: cases are generated from a fixed seed
//! (fully deterministic runs), and failing cases are reported without
//! shrinking — the failing inputs are printed verbatim instead. For the
//! small structured inputs these tests draw, that trade keeps the
//! implementation dependency-free without hurting debuggability much.

pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy, ValueTree};
pub use test_runner::{ProptestConfig, TestCaseError, TestRunner};

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// A size specification: an exact count or a range of counts.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing a `Vec` of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with the given element strategy and size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let n = runner.uniform_usize(self.size.min, self.size.max);
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// Numeric `ANY` strategies (`proptest::num::usize::ANY` etc.).
pub mod num {
    macro_rules! any_mod {
        ($($m:ident => $t:ty),*) => {$(
            /// `ANY` strategy for the corresponding integer type.
            pub mod $m {
                use crate::strategy::Strategy;
                use crate::test_runner::TestRunner;

                /// Strategy over every value of the type.
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                /// Draws any value of the type.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;
                    fn generate(&self, runner: &mut TestRunner) -> $t {
                        runner.next_u64() as $t
                    }
                }
            }
        )*};
    }
    any_mod!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
             i32 => i32, i64 => i64);
}

/// One-stop imports for test files.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy, ValueTree};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a `proptest!` body; on failure the case
/// inputs are reported and the test panics.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                left,
                right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    // Internal `@fns` muncher arms must come first: the public entry arm
    // below matches any token stream, including `@fns ...` recursions.
    (@fns ($config:expr)) => {};
    (
        @fns ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $config;
            let mut runner = $crate::TestRunner::new_for(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                if rejected > config.cases * 16 + 256 {
                    panic!(
                        "proptest {}: too many rejected cases ({} accepted)",
                        stringify!($name),
                        accepted
                    );
                }
                $(let $arg = ($strat).generate(&mut runner);)*
                let case_debug = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}",)*),
                    $(&$arg,)*
                );
                let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject) => rejected += 1,
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest {} failed after {} passing case(s): {}\ninputs:{}",
                        stringify!($name),
                        accepted,
                        msg,
                        case_debug
                    ),
                }
            }
        }
        $crate::proptest!(@fns ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@fns ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()) $($rest)*);
    };
}
