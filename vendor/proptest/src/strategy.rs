//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRunner;
use std::fmt::Debug;

/// A generated value plus (vestigial) shrinking hooks.
///
/// This stand-in does not shrink: `simplify`/`complicate` always return
/// `false` and [`ValueTree::current`] returns the generated value.
pub trait ValueTree {
    /// The value type.
    type Value;
    /// The current value.
    fn current(&self) -> Self::Value;
    /// Attempts to simplify; never succeeds here.
    fn simplify(&mut self) -> bool {
        false
    }
    /// Attempts to complicate; never succeeds here.
    fn complicate(&mut self) -> bool {
        false
    }
}

/// A trivial value tree holding one concrete value.
#[derive(Debug, Clone)]
pub struct TrivialTree<T>(pub T);

impl<T: Clone> ValueTree for TrivialTree<T> {
    type Value = T;
    fn current(&self) -> T {
        self.0.clone()
    }
}

/// Generates values of `Self::Value` from a [`TestRunner`].
pub trait Strategy {
    /// The generated type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Produces a value tree (proptest-compatible entry point).
    fn new_tree(&self, runner: &mut TestRunner) -> Result<TrivialTree<Self::Value>, String> {
        Ok(TrivialTree(self.generate(runner)))
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Shuffles the generated `Vec` uniformly.
    fn prop_shuffle<T>(self) -> Shuffle<Self>
    where
        Self: Sized + Strategy<Value = Vec<T>>,
        T: Clone + Debug,
    {
        Shuffle { inner: self }
    }
}

/// Strategy always yielding a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.generate(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, runner: &mut TestRunner) -> S2::Value {
        (self.f)(self.inner.generate(runner)).generate(runner)
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S> {
    inner: S,
}

impl<S, T> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
    T: Clone + Debug,
{
    type Value = Vec<T>;
    fn generate(&self, runner: &mut TestRunner) -> Vec<T> {
        let mut v = self.inner.generate(runner);
        for i in (1..v.len()).rev() {
            let j = runner.uniform_usize(0, i);
            v.swap(i, j);
        }
        v
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add((runner.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((runner.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}
