//! Deterministic test runner for the proptest stand-in.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was skipped by `prop_assume!`.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Generates test cases from a deterministic stream.
#[derive(Debug, Clone)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// A runner with a fixed default seed.
    pub fn deterministic() -> Self {
        TestRunner {
            rng: StdRng::seed_from_u64(0x5EED_CAFE),
        }
    }

    /// A runner seeded from a test name, so distinct tests explore distinct
    /// streams while staying reproducible run to run.
    pub fn new_for(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniform draw from `[lo, hi]`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }
}
