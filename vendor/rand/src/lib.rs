//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the surface the workspace uses: [`SeedableRng`],
//! [`rngs::StdRng`] and the [`RngExt`] extension trait (`random`,
//! `random_range`, `random_bool`). The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic across platforms, which is all the MIDAS
//! experiments require (every stochastic component takes an explicit seed).

/// A random number generator yielding `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from all bit patterns (or `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types uniformly samplable from a range.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `lo < hi` must hold.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; `lo <= hi` must hold.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform draw of `T` (all bit patterns, or `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seeding. Small, fast, and deterministic across platforms.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(5..=5u8);
            assert_eq!(y, 5);
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 4);
    }
}
