//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is deliberately simple — a
//! warm-up pass followed by `sample_size` timed samples, reporting min /
//! median / mean — which is plenty for the relative comparisons the MIDAS
//! perf trajectory tracks. Measured medians can be harvested
//! programmatically through [`Criterion::take_results`].

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted for API compatibility; every
/// batch is one input here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// One bench's measured samples.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Bench id as passed to [`Criterion::bench_function`].
    pub name: String,
    /// Per-sample durations of one routine invocation.
    pub samples: Vec<Duration>,
}

impl BenchResult {
    /// Median sample duration.
    pub fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        s.sort_unstable();
        s[s.len() / 2]
    }

    /// Mean sample duration.
    pub fn mean(&self) -> Duration {
        self.samples.iter().sum::<Duration>() / self.samples.len().max(1) as u32
    }

    /// Minimum sample duration.
    pub fn min(&self) -> Duration {
        self.samples.iter().min().copied().unwrap_or_default()
    }
}

/// The benchmark harness.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Sets the number of timed samples per bench.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    fn effective_sample_size(&self) -> usize {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }

    /// Runs one benchmark and prints a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            target_samples: self.effective_sample_size(),
        };
        f(&mut bencher);
        let result = BenchResult {
            name: name.to_owned(),
            samples: if bencher.samples.is_empty() {
                vec![Duration::ZERO]
            } else {
                bencher.samples
            },
        };
        println!(
            "bench {:<44} min {:>12?} median {:>12?} mean {:>12?} ({} samples)",
            result.name,
            result.min(),
            result.median(),
            result.mean(),
            result.samples.len()
        );
        self.results.push(result);
        self
    }

    /// Drains the results collected so far (for JSON reports).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    /// Criterion API shim: final reporting happens per-bench already.
    pub fn final_summary(&mut self) {}
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine`, one sample per invocation, after one warm-up call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine());
        for _ in 0..self.target_samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
