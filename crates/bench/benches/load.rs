//! Closed-loop load scenario: user-facing SLIs as a gated benchmark.
//!
//! Runs `midas_load::run` — N concurrent simulated users formulating
//! queries against the live pattern snapshot while the driver streams
//! update batches — and reports the SLIs the harness exists to measure:
//! formulation-cost reduction vs the frozen no-maintenance baseline,
//! snapshot staleness (batches behind + graphlet drift), and snapshot-read
//! / formulation latency quantiles.
//!
//! Full mode (the committed `BENCH_load.json`): 8 users over a 240-graph
//! PubchemLike database for 12 ticks — the `pubchem_like_u8` scenario.
//! `MIDAS_BENCH_QUICK=1` shrinks to 4 users / 100 graphs / 4 ticks for CI.
//! Both modes append one record to `BENCH_history.jsonl` (flagged `quick`
//! so `scripts/bench_gate.py` never compares across modes); the gate
//! tracks `load/read_ns_p50` for read-path regressions.
//!
//! Latency quantiles come from the report's exact per-query samples, so
//! the run itself executes with telemetry *disabled* — the numbers are the
//! user-visible cost, not the instrumented cost.

use midas_core::{Midas, MidasConfig};
use midas_datagen::{DatasetKind, DatasetSpec};
use midas_load::{LoadConfig, LoadReport};
use midas_obs::TelemetryConfig;

const SCENARIO: &str = "pubchem_like_u8";
const DB_SIZE: usize = 240;
const QUICK_DB_SIZE: usize = 100;

fn quick_mode() -> bool {
    std::env::var("MIDAS_BENCH_QUICK")
        .map(|v| matches!(v.trim(), "1" | "true" | "on" | "yes"))
        .unwrap_or(false)
}

fn report_json(quick: bool, db_size: usize, r: &LoadReport) -> String {
    format!(
        "{{\n  \"scenario\": \"{SCENARIO}\",\n  \"config\": {{\"users\": {}, \"ticks\": {}, \"db_size\": {db_size}, \"quick\": {quick}}},\n  \"queries\": {},\n  \"steps_live\": {},\n  \"steps_baseline\": {},\n  \"formulation_reduction\": {:.6},\n  \"staleness\": {{\"batches_p50\": {}, \"batches_p99\": {}, \"batches_max\": {}, \"drift_mean\": {:.8}, \"drift_max\": {:.8}}},\n  \"latency_ns\": {{\"read_p50\": {}, \"read_p99\": {}, \"read_max\": {}, \"formulate_p50\": {}, \"formulate_p99\": {}, \"formulate_max\": {}}},\n  \"final_epoch\": {},\n  \"wall_ms\": {}\n}}\n",
        r.users,
        r.ticks,
        r.queries,
        r.steps_live,
        r.steps_baseline,
        r.reduction,
        r.staleness_batches.p50,
        r.staleness_batches.p99,
        r.staleness_batches.max,
        r.staleness_drift_mean,
        r.staleness_drift_max,
        r.read_ns.p50,
        r.read_ns.p99,
        r.read_ns.max,
        r.formulate_ns.p50,
        r.formulate_ns.p99,
        r.formulate_ns.max,
        r.final_epoch,
        r.wall_ms
    )
}

/// One `BENCH_history.jsonl` record, in the kernel bench's shape: the gate
/// reads `quick` + `median_ns` and skips records missing a tracked metric.
fn append_history(quick: bool, db_size: usize, r: &LoadReport) {
    let line = format!(
        "{{\"unix_ms\": {}, \"quick\": {quick}, \"scenario\": \"{SCENARIO}\", \"users\": {}, \"ticks\": {}, \"db_size\": {db_size}, \"median_ns\": {{\"load/read_ns_p50\": {}, \"load/read_ns_p99\": {}, \"load/formulate_ns_p50\": {}, \"load/formulate_ns_p99\": {}}}}}\n",
        midas_obs::flight::unix_ms(),
        r.users,
        r.ticks,
        r.read_ns.p50,
        r.read_ns.p99,
        r.formulate_ns.p50,
        r.formulate_ns.p99
    );
    let append = |path: &str| -> std::io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(line.as_bytes())
    };
    append("../../BENCH_history.jsonl")
        .or_else(|_| append("BENCH_history.jsonl"))
        .expect("append BENCH_history.jsonl");
}

fn main() {
    let quick = quick_mode();
    let (db_size, cfg) = if quick {
        (
            QUICK_DB_SIZE,
            LoadConfig {
                users: 4,
                ticks: 4,
                tick_ms: 25,
                pool: 16,
                ..LoadConfig::default()
            },
        )
    } else {
        (
            DB_SIZE,
            LoadConfig {
                users: 8,
                ticks: 12,
                tick_ms: 60,
                pool: 32,
                ..LoadConfig::default()
            },
        )
    };
    let kind = DatasetKind::PubchemLike;
    println!(
        "load bench [{SCENARIO}]: {} users × {} ticks, |D| = {db_size}{}",
        cfg.users,
        cfg.ticks,
        if quick { " (quick mode)" } else { "" }
    );
    let dataset = DatasetSpec::new(kind, db_size, 41).generate();
    let config = MidasConfig {
        budget: midas_catapult::PatternBudget {
            eta_min: 3,
            eta_max: 6,
            gamma: 10,
        },
        sup_min: 0.4,
        max_tree_edges: 3,
        coarse_clusters: 5,
        epsilon: 0.01,
        telemetry: TelemetryConfig::default(), // disabled: measure user cost
        ..MidasConfig::default()
    };
    let mut midas = Midas::bootstrap(dataset.db, config).expect("non-empty database");
    let report = midas_load::run(&mut midas, kind, &cfg);

    let json = report_json(quick, db_size, &report);
    // Like BENCH_kernel.json: the committed headline report tracks the
    // full-size scenario only.
    if !quick {
        std::fs::write("../../BENCH_load.json", &json)
            .or_else(|_| std::fs::write("BENCH_load.json", &json))
            .expect("write BENCH_load.json");
    }
    append_history(quick, db_size, &report);
    println!("{json}");
    println!(
        "reduction {:.4} over {} queries; read p50 {}ns p99 {}ns; staleness p99 {} batches",
        report.reduction,
        report.queries,
        report.read_ns.p50,
        report.read_ns.p99,
        report.staleness_batches.p99
    );
    assert!(report.queries > 0, "closed loop produced no samples");
    assert_eq!(
        report.final_epoch, cfg.ticks,
        "every batch published a snapshot"
    );
}
