//! Kernel benchmark: serial vs parallel vs parallel + cached isomorphism
//! scans for matrix builds and batch maintenance (§5.1), the hot loops the
//! `MatchKernel` accelerates. Writes `BENCH_kernel.json` at the repo root
//! with medians and the measured speedups, and appends one timestamped
//! record per run to `BENCH_history.jsonl` — the trajectory
//! `scripts/bench_gate.py` gates regressions against.
//!
//! Scenario: a 2 000-graph molecule database, a 12-feature FCT-Index, and
//! a 100-graph (5 %) insertion batch — the shape of one Algorithm 1 round.
//! `MIDAS_BENCH_QUICK=1` shrinks that to 300 graphs / 20 insertions for
//! CI: the medians are smaller (history records carry a `quick` flag so
//! the gate never compares across modes) but the relative regressions the
//! gate watches for still show.

use criterion::{BatchSize, Criterion};
use midas_datagen::{DatasetKind, DatasetSpec};
use midas_graph::{GraphDb, GraphId, LabeledGraph, MatchKernel, MatcherKind};
use midas_index::{FctIndex, PatternId};
use midas_mining::{tree_key, TreeKey};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const DB_SIZE: usize = 2_000;
const BATCH_SIZE: usize = 100; // 5% of DB_SIZE
const QUICK_DB_SIZE: usize = 300;
const QUICK_BATCH_SIZE: usize = 20;
const THREADS: usize = 4;
const FEATURES: usize = 12;

/// `MIDAS_BENCH_QUICK=1|true|on` — CI-sized scenario, no
/// `BENCH_kernel.json` rewrite (history still appends, flagged `quick`).
fn quick_mode() -> bool {
    std::env::var("MIDAS_BENCH_QUICK")
        .map(|v| matches!(v.trim(), "1" | "true" | "on" | "yes"))
        .unwrap_or(false)
}

struct Scenario {
    db: GraphDb,
    batch: Vec<(GraphId, LabeledGraph)>,
    features: Vec<(TreeKey, LabeledGraph)>,
}

fn scenario(db_size: usize, batch_size: usize) -> Scenario {
    let generated = DatasetSpec::new(DatasetKind::PubchemLike, db_size + batch_size, 42).generate();
    let graphs: Vec<LabeledGraph> = generated
        .db
        .iter()
        .map(|(_, g)| g.as_ref().clone())
        .collect();
    let db = GraphDb::from_graphs(graphs[..db_size].iter().cloned());
    let batch: Vec<(GraphId, LabeledGraph)> = graphs[db_size..]
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, g)| (GraphId((db_size + i) as u64), g))
        .collect();
    // Features: random connected subtrees (1–4 edges, the paper's
    // `max_tree_edges` range) drawn from the database, deduplicated by
    // canonical key. Cyclic draws are discarded — features must be trees.
    let mut rng = StdRng::seed_from_u64(7);
    let mut features: Vec<(TreeKey, LabeledGraph)> = Vec::new();
    let mut i = 0usize;
    while features.len() < FEATURES && i < 50 * FEATURES {
        let source = db.get(GraphId((i % db_size) as u64)).expect("dense ids");
        let edges = 1 + (i % 4);
        if let Some(t) = midas_datagen::random_connected_subgraph(source, edges, &mut rng) {
            if t.edge_count() + 1 != t.vertex_count() {
                i += 1;
                continue; // not a tree
            }
            let key = tree_key(&t);
            if !features.iter().any(|(k, _)| *k == key) {
                features.push((key, t));
            }
        }
        i += 1;
    }
    Scenario {
        db,
        batch,
        features,
    }
}

fn graph_refs(db: &GraphDb) -> Vec<(GraphId, &LabeledGraph)> {
    db.iter().map(|(id, g)| (id, g.as_ref())).collect()
}

fn serial_build(s: &Scenario) -> FctIndex {
    FctIndex::build(
        s.features.iter().map(|(k, t)| (k.clone(), t)),
        graph_refs(&s.db),
        std::iter::empty::<(PatternId, &LabeledGraph)>(),
    )
}

fn kernel_build(s: &Scenario, kernel: &MatchKernel) -> FctIndex {
    FctIndex::build_with(kernel, s.features.iter().cloned(), &graph_refs(&s.db), &[])
}

/// Appends one JSONL record for this run to `BENCH_history.jsonl` at the
/// repo root (falling back to the current directory, mirroring the
/// `BENCH_kernel.json` write). One line per run keeps the file
/// append-only and trivially parsable; `scripts/bench_gate.py` compares
/// the newest record against the trailing median of its mode.
fn append_history(
    quick: bool,
    db_size: usize,
    batch_size: usize,
    results: &[criterion::BenchResult],
    probe_ns: f64,
) {
    let mut medians = String::new();
    for (i, r) in results.iter().enumerate() {
        medians.push_str(&format!(
            "\"{}\": {}{}",
            r.name,
            r.median().as_nanos(),
            if i + 1 < results.len() { ", " } else { "" }
        ));
    }
    let line = format!(
        "{{\"unix_ms\": {}, \"quick\": {quick}, \"db_size\": {db_size}, \"batch_size\": {batch_size}, \"threads\": {THREADS}, \"disabled_probe_ns\": {probe_ns:.2}, \"median_ns\": {{{medians}}}}}\n",
        midas_obs::flight::unix_ms()
    );
    let append = |path: &str| -> std::io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(line.as_bytes())
    };
    append("../../BENCH_history.jsonl")
        .or_else(|_| append("BENCH_history.jsonl"))
        .expect("append BENCH_history.jsonl");
}

fn main() {
    let quick = quick_mode();
    let (db_size, batch_size) = if quick {
        (QUICK_DB_SIZE, QUICK_BATCH_SIZE)
    } else {
        (DB_SIZE, BATCH_SIZE)
    };
    let s = scenario(db_size, batch_size);
    println!(
        "kernel bench: |D| = {}, batch = {}, features = {}, threads = {}{}",
        s.db.len(),
        s.batch.len(),
        s.features.len(),
        THREADS,
        if quick { " (quick mode)" } else { "" }
    );
    let mut c = Criterion::default().sample_size(10);

    // --- Matrix build: the bootstrap-time TG matrix ---------------------
    c.bench_function("matrix_build/serial", |b| {
        b.iter(|| black_box(serial_build(&s)))
    });
    c.bench_function("matrix_build/parallel", |b| {
        // Fresh cache every iteration: pure parallel speedup. Pinned to
        // the VF2 matcher so the scenario keeps measuring the reference
        // twin now that kernels default to the plan path.
        b.iter_batched(
            || MatchKernel::with_matcher(THREADS, MatcherKind::Vf2),
            |kernel| black_box(kernel_build(&s, &kernel)),
            BatchSize::LargeInput,
        )
    });
    let warm = MatchKernel::with_matcher(THREADS, MatcherKind::Vf2);
    kernel_build(&s, &warm); // warm the memo once
    c.bench_function("matrix_build/parallel_cached", |b| {
        b.iter(|| black_box(kernel_build(&s, &warm)))
    });

    // --- Plan-compiled matcher: the cold single-thread build ------------
    // Fresh embedding cache per iteration, one worker: the direct
    // replacement for the serial VF2 cold path above. Pattern plans are
    // memoized per canonical class in the process-wide plan cache, so
    // after the first iteration the measured work is CSR construction
    // plus the plan searches themselves — exactly the steady state a
    // maintenance round sees.
    c.bench_function("matrix_build/plan_serial", |b| {
        b.iter_batched(
            || MatchKernel::with_matcher(1, MatcherKind::Plan),
            |kernel| black_box(kernel_build(&s, &kernel)),
            BatchSize::LargeInput,
        )
    });

    // --- Batch maintenance: 5% insertion, TG columns --------------------
    let base = serial_build(&s);
    let batch_refs: Vec<(GraphId, &LabeledGraph)> =
        s.batch.iter().map(|(id, g)| (*id, g)).collect();
    c.bench_function("apply_batch/serial", |b| {
        b.iter_batched(
            || base.clone(),
            |mut index| {
                for &(id, g) in &batch_refs {
                    index.add_graph(id, g);
                }
                black_box(index)
            },
            BatchSize::LargeInput,
        )
    });
    c.bench_function("apply_batch/parallel", |b| {
        b.iter_batched(
            || {
                (
                    base.clone(),
                    MatchKernel::with_matcher(THREADS, MatcherKind::Vf2),
                )
            },
            |(mut index, kernel)| {
                index.add_graphs_kernel(&kernel, &batch_refs);
                black_box(index)
            },
            BatchSize::LargeInput,
        )
    });
    c.bench_function("apply_batch/plan_serial", |b| {
        // The plan matcher on a cold cache, one worker: each batch graph
        // costs one CSR build plus a plan search per feature.
        b.iter_batched(
            || {
                (
                    base.clone(),
                    MatchKernel::with_matcher(1, MatcherKind::Plan),
                )
            },
            |(mut index, kernel)| {
                index.add_graphs_kernel(&kernel, &batch_refs);
                black_box(index)
            },
            BatchSize::LargeInput,
        )
    });
    let warm_batch = MatchKernel::with_matcher(THREADS, MatcherKind::Vf2);
    {
        let mut scratch = base.clone();
        scratch.add_graphs_kernel(&warm_batch, &batch_refs); // warm once
    }
    c.bench_function("apply_batch/parallel_cached_repeat", |b| {
        // The same batch re-applied with a warm memo — the steady state
        // when scoring re-scans recently maintained graphs.
        b.iter_batched(
            || base.clone(),
            |mut index| {
                index.add_graphs_kernel(&warm_batch, &batch_refs);
                black_box(index)
            },
            BatchSize::LargeInput,
        )
    });

    // --- Telemetry ------------------------------------------------------
    // All timed sections above ran with telemetry disabled (the default),
    // so the medians measure the kernel itself. Two extra readings feed
    // the report: the cost of a disabled probe (the overhead-budget
    // guard), and one instrumented cold+warm build pass for the cache
    // hit-rate and signature-prefilter reject-rate.
    let probe_ns = {
        let n = 1_000_000u64;
        let start = std::time::Instant::now();
        for i in 0..n {
            midas_obs::counter_add!("bench.kernel.probe", i & 1);
        }
        start.elapsed().as_nanos() as f64 / n as f64
    };
    midas_obs::set_enabled(true);
    let telemetry_base = midas_obs::MetricsSnapshot::capture();
    let observed = MatchKernel::with_matcher(THREADS, MatcherKind::Vf2);
    kernel_build(&s, &observed); // cold: all misses
    kernel_build(&s, &observed); // warm: all hits
    let telemetry = midas_obs::MetricsSnapshot::capture().since(&telemetry_base);
    // Plan-matcher pass: fresh compiles (bypassing the process-wide plan
    // cache) for compile-time stats, then a cold + warm build through a
    // plan kernel for search latency, intersection and pruning counters.
    let plan_base = midas_obs::MetricsSnapshot::capture();
    for (_, t) in &s.features {
        black_box(midas_graph::MatchPlan::compile(t));
    }
    let observed_plan = MatchKernel::with_matcher(THREADS, MatcherKind::Plan);
    kernel_build(&s, &observed_plan); // cold: all misses
    kernel_build(&s, &observed_plan); // warm: all hits
    let plan_telemetry = midas_obs::MetricsSnapshot::capture().since(&plan_base);
    midas_obs::set_enabled(false);
    let cache_stats = observed.cache().stats();
    let hit_rate = cache_stats.hit_rate();
    let prefilter_rejects = telemetry.counter("vf2.prefilter_rejects");
    let prefilter_reject_rate = if cache_stats.misses == 0 {
        0.0
    } else {
        prefilter_rejects as f64 / cache_stats.misses as f64
    };
    // Per-search VF2 latency percentiles from the log₂ histogram the
    // instrumented pass fed (the same series `/metrics` exposes as
    // `midas_vf2_search_ns{quantile=...}`).
    let vf2_latency = telemetry.histogram("vf2.search_ns");
    let vf2_search_p50_ns = vf2_latency.quantile(0.5);
    let vf2_search_p99_ns = vf2_latency.quantile(0.99);
    // The plan-path equivalents of the VF2 percentiles, from the same
    // log₂ histograms `/metrics` exposes.
    let plan_latency = plan_telemetry.histogram("plan.search_ns");
    let plan_search_p50_ns = plan_latency.quantile(0.5);
    let plan_search_p99_ns = plan_latency.quantile(0.99);
    let plan_compile = plan_telemetry.histogram("plan.compile_ns");
    let plan_compile_p50_ns = plan_compile.quantile(0.5);

    // --- Report ---------------------------------------------------------
    let results = c.take_results();
    let median_ns = |name: &str| -> u128 {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median().as_nanos())
            .unwrap_or(0)
    };
    let ratio = |num: &str, den: &str| -> f64 {
        let d = median_ns(den);
        if d == 0 {
            return 0.0;
        }
        median_ns(num) as f64 / d as f64
    };
    let build_speedup = ratio("matrix_build/serial", "matrix_build/parallel");
    let build_cached_speedup = ratio("matrix_build/serial", "matrix_build/parallel_cached");
    let batch_speedup = ratio("apply_batch/serial", "apply_batch/parallel");
    let batch_repeat_speedup = ratio("apply_batch/serial", "apply_batch/parallel_cached_repeat");
    let plan_build_speedup = ratio("matrix_build/serial", "matrix_build/plan_serial");
    let plan_batch_speedup = ratio("apply_batch/serial", "apply_batch/plan_serial");

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"db_size\": {db_size}, \"batch_size\": {batch_size}, \"threads\": {THREADS}, \"features\": {FEATURES}, \"available_cores\": {cores}}},\n"
    ));
    json.push_str("  \"median_ns\": {\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {}{}\n",
            r.name,
            r.median().as_nanos(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"speedups\": {{\n    \"matrix_build_parallel\": {build_speedup:.2},\n    \"matrix_build_parallel_cached\": {build_cached_speedup:.2},\n    \"matrix_build_plan_serial\": {plan_build_speedup:.2},\n    \"apply_batch_parallel\": {batch_speedup:.2},\n    \"apply_batch_repeat_cached\": {batch_repeat_speedup:.2},\n    \"apply_batch_plan_serial\": {plan_batch_speedup:.2}\n  }},\n"
    ));
    json.push_str(&format!(
        "  \"telemetry\": {{\n    \"disabled_probe_ns\": {probe_ns:.2},\n    \"cache_hit_rate\": {hit_rate:.4},\n    \"prefilter_reject_rate\": {prefilter_reject_rate:.4},\n    \"vf2_search_p50_ns\": {vf2_search_p50_ns},\n    \"vf2_search_p99_ns\": {vf2_search_p99_ns},\n    \"cache_hits\": {},\n    \"cache_misses\": {},\n    \"prefilter_rejects\": {prefilter_rejects},\n    \"vf2_nodes\": {},\n    \"plan_search_p50_ns\": {plan_search_p50_ns},\n    \"plan_search_p99_ns\": {plan_search_p99_ns},\n    \"plan_compile_p50_ns\": {plan_compile_p50_ns},\n    \"plan_compiles\": {},\n    \"plan_cache_hits\": {},\n    \"plan_searches\": {},\n    \"plan_intersections\": {},\n    \"plan_candidates_pruned\": {},\n    \"plan_prefilter_rejects\": {}\n  }}\n",
        cache_stats.hits,
        cache_stats.misses,
        telemetry.counter("vf2.nodes"),
        plan_telemetry.counter("plan.compiles"),
        plan_telemetry.counter("plan.cache_hits"),
        plan_telemetry.counter("plan.searches"),
        plan_telemetry.counter("plan.intersections"),
        plan_telemetry.counter("plan.candidates_pruned"),
        plan_telemetry.counter("plan.prefilter_rejects")
    ));
    json.push_str("}\n");
    // The headline report tracks the full-size scenario only; a quick run
    // must never overwrite it with incomparable numbers.
    if !quick {
        std::fs::write("../../BENCH_kernel.json", &json)
            .or_else(|_| std::fs::write("BENCH_kernel.json", &json))
            .expect("write BENCH_kernel.json");
    }
    append_history(quick, db_size, batch_size, &results, probe_ns);
    println!("{json}");
    println!(
        "apply_batch parallel speedup {batch_speedup:.2}x (target >= 3x), \
         repeated cached {batch_repeat_speedup:.2}x (target >= 10x)"
    );
    println!(
        "plan matcher: matrix_build {plan_build_speedup:.2}x vs serial VF2 \
         (target >= 5x), apply_batch {plan_batch_speedup:.2}x, \
         search p50 {plan_search_p50_ns}ns p99 {plan_search_p99_ns}ns, \
         compile p50 {plan_compile_p50_ns}ns"
    );
    println!(
        "telemetry: disabled probe {probe_ns:.2}ns, cache hit rate {:.1}%, \
         prefilter reject rate {:.1}%, vf2 search p50 {vf2_search_p50_ns}ns \
         p99 {vf2_search_p99_ns}ns",
        100.0 * hit_rate,
        100.0 * prefilter_reject_rate
    );
    assert!(
        probe_ns < 50.0,
        "disabled telemetry probe costs {probe_ns:.1}ns — overhead budget blown"
    );
}
