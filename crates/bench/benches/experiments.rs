//! Criterion end-to-end benchmarks mirroring the paper's measured
//! quantities: PMT for a MIDAS batch (minor and major), CATAPULT /
//! CATAPULT++ rebuild time, FCT maintenance, and index maintenance.
//! These are the series behind Figs 11, 12 and 16 in bench form.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use midas_catapult::PatternBudget;
use midas_core::baselines::{catapult_from_scratch, catapult_pp_from_scratch};
use midas_core::{Midas, MidasConfig};
use midas_datagen::updates::{growth_batch, novel_family_batch};
use midas_datagen::{DatasetKind, DatasetSpec, MotifKind};
use midas_graph::GraphDb;
use midas_mining::incremental::FctState;
use std::hint::black_box;

fn config(seed: u64) -> MidasConfig {
    MidasConfig {
        budget: PatternBudget {
            eta_min: 3,
            eta_max: 6,
            gamma: 8,
        },
        sup_min: 0.4,
        max_tree_edges: 3,
        coarse_clusters: 4,
        max_cluster_size: 60,
        sample_size: 80,
        walks: 40,
        walk_length: 12,
        seeds_per_size: 2,
        seed,
        ..MidasConfig::default()
    }
}

fn dataset(n: usize) -> GraphDb {
    DatasetSpec::new(DatasetKind::PubchemLike, n, 3)
        .generate()
        .db
}

fn bench_pmt(c: &mut Criterion) {
    let db = dataset(150);
    c.bench_function("pmt/midas_minor_batch_plus10", |b| {
        b.iter_batched(
            || {
                (
                    Midas::bootstrap(db.clone(), config(1)).expect("non-empty"),
                    growth_batch(&DatasetKind::PubchemLike.params(), 15, 5),
                )
            },
            |(mut midas, update)| black_box(midas.apply_batch(update)),
            BatchSize::LargeInput,
        )
    });
    c.bench_function("pmt/midas_major_batch_novel", |b| {
        b.iter_batched(
            || {
                (
                    Midas::bootstrap(db.clone(), config(1)).expect("non-empty"),
                    novel_family_batch(MotifKind::BoronicEster, 40, 5),
                )
            },
            |(mut midas, update)| black_box(midas.apply_batch(update)),
            BatchSize::LargeInput,
        )
    });
}

fn bench_rebuild(c: &mut Criterion) {
    let db = dataset(150);
    c.bench_function("rebuild/catapult_from_scratch", |b| {
        b.iter(|| black_box(catapult_from_scratch(black_box(&db), &config(2))))
    });
    c.bench_function("rebuild/catapult_pp_from_scratch", |b| {
        b.iter(|| black_box(catapult_pp_from_scratch(black_box(&db), &config(2))))
    });
}

fn bench_fct_maintenance(c: &mut Criterion) {
    let db = dataset(200);
    let mining = config(3).mining();
    c.bench_function("fct/maintain_plus20_graphs", |b| {
        b.iter_batched(
            || {
                let state = FctState::build(&db, mining);
                let mut evolved = db.clone();
                let (inserted, _) =
                    evolved.apply(growth_batch(&DatasetKind::PubchemLike.params(), 20, 9));
                (state, evolved, inserted)
            },
            |(mut state, evolved, inserted)| {
                state.apply_batch(&evolved, &inserted, &[]);
                black_box(state)
            },
            BatchSize::LargeInput,
        )
    });
    c.bench_function("fct/build_from_scratch_220", |b| {
        let mut evolved = db.clone();
        evolved.apply(growth_batch(&DatasetKind::PubchemLike.params(), 20, 9));
        b.iter(|| black_box(FctState::build(black_box(&evolved), mining)))
    });
}

criterion_group!(
    name = experiments;
    config = Criterion::default().sample_size(10);
    targets = bench_pmt, bench_rebuild, bench_fct_maintenance
);
criterion_main!(experiments);
