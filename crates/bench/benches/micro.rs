//! Criterion micro-benchmarks for the substrate operations MIDAS leans on:
//! VF2 subgraph isomorphism, GED bounds, graphlet counting, MCCS, canonical
//! codes, closure/CSG construction, and FCT mining.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use midas_datagen::{DatasetKind, DatasetSpec};
use midas_graph::{ClosureGraph, GraphId, LabeledGraph};
use midas_mining::{mine_lattice, MiningConfig};
use std::hint::black_box;

fn dataset(n: usize) -> Vec<LabeledGraph> {
    DatasetSpec::new(DatasetKind::PubchemLike, n, 7)
        .generate()
        .db
        .iter()
        .map(|(_, g)| g.as_ref().clone())
        .collect()
}

fn pattern_of(g: &LabeledGraph, edges: usize, seed: u64) -> LabeledGraph {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    midas_datagen::random_connected_subgraph(g, edges.min(g.edge_count()), &mut rng)
        .expect("graph large enough")
}

fn bench_isomorphism(c: &mut Criterion) {
    let graphs = dataset(50);
    let target = graphs
        .iter()
        .max_by_key(|g| g.edge_count())
        .expect("non-empty")
        .clone();
    let pattern = pattern_of(&target, 5, 1);
    c.bench_function("vf2/contains_5edge_pattern", |b| {
        b.iter(|| {
            black_box(midas_graph::isomorphism::is_subgraph_of(
                black_box(&pattern),
                black_box(&target),
            ))
        })
    });
    c.bench_function("vf2/count_embeddings_cap64", |b| {
        b.iter(|| {
            black_box(midas_graph::isomorphism::count_embeddings(
                black_box(&pattern),
                black_box(&target),
                64,
            ))
        })
    });
}

fn bench_ged(c: &mut Criterion) {
    let graphs = dataset(10);
    let a = pattern_of(&graphs[0], 5, 2);
    let b2 = pattern_of(&graphs[1], 5, 3);
    c.bench_function("ged/tight_lower_bound", |b| {
        b.iter(|| {
            black_box(midas_graph::ged::ged_tight_lower_bound(
                black_box(&a),
                black_box(&b2),
            ))
        })
    });
    let small_a = pattern_of(&graphs[2], 3, 4);
    let small_b = pattern_of(&graphs[3], 3, 5);
    c.bench_function("ged/exact_small", |b| {
        b.iter(|| {
            black_box(midas_graph::ged::ged_exact_bounded(
                black_box(&small_a),
                black_box(&small_b),
                16,
            ))
        })
    });
}

fn bench_graphlets(c: &mut Criterion) {
    let graphs = dataset(20);
    c.bench_function("graphlets/count_one_molecule", |b| {
        let g = &graphs[0];
        b.iter(|| black_box(midas_graph::graphlets::count_graphlets(black_box(g))))
    });
    c.bench_function("graphlets/count_20_molecules", |b| {
        b.iter(|| {
            let mut total = midas_graph::graphlets::GraphletCounts::default();
            for g in &graphs {
                total.add(&midas_graph::graphlets::count_graphlets(g));
            }
            black_box(total)
        })
    });
}

fn bench_mccs(c: &mut Criterion) {
    let graphs = dataset(10);
    c.bench_function("mccs/similarity_budget2k", |b| {
        b.iter(|| {
            black_box(midas_graph::mccs::mccs_similarity(
                black_box(&graphs[0]),
                black_box(&graphs[1]),
                2_000,
            ))
        })
    });
}

fn bench_canonical(c: &mut Criterion) {
    let graphs = dataset(10);
    let pattern = pattern_of(&graphs[0], 6, 8);
    c.bench_function("canonical/code_6edge_pattern", |b| {
        b.iter(|| black_box(midas_graph::canonical::canonical_code(black_box(&pattern))))
    });
}

fn bench_closure(c: &mut Criterion) {
    let graphs = dataset(30);
    c.bench_function("closure/csg_of_30_graphs", |b| {
        b.iter_batched(
            || {
                graphs
                    .iter()
                    .enumerate()
                    .map(|(i, g)| (GraphId(i as u64), g))
                    .collect::<Vec<_>>()
            },
            |refs| black_box(ClosureGraph::from_graphs(refs)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_mining(c: &mut Criterion) {
    let graphs = dataset(60);
    let refs: Vec<(GraphId, &LabeledGraph)> = graphs
        .iter()
        .enumerate()
        .map(|(i, g)| (GraphId(i as u64), g))
        .collect();
    let config = MiningConfig {
        sup_min: 0.4,
        max_edges: 3,
    };
    c.bench_function("mining/fct_lattice_60_graphs", |b| {
        b.iter(|| black_box(mine_lattice(black_box(&refs), black_box(&config))))
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_isomorphism,
        bench_ged,
        bench_graphlets,
        bench_mccs,
        bench_canonical,
        bench_closure,
        bench_mining
);
criterion_main!(micro);
