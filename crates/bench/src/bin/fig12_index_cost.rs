//! Exp 2 (Fig. 12): cost of FCT mining, index construction (time and
//! memory), and FCT/index maintenance across dataset scales.
//!
//! Paper setting: PubChem at 100K / 500K / 1M. Here: PubChem-like at
//! 1/500 scale (200 / 1 000 / 2 000 graphs).

use midas_bench::{fmt_duration, print_table};
use midas_datagen::updates::growth_batch;
use midas_datagen::{DatasetKind, DatasetSpec};
use midas_graph::{GraphId, LabeledGraph};
use midas_index::{FctIndex, IfeIndex, PatternId};
use midas_mining::incremental::FctState;
use midas_mining::MiningConfig;
use std::collections::BTreeSet;
use std::time::Instant;

fn main() {
    let kind = DatasetKind::PubchemLike;
    let mining = MiningConfig {
        sup_min: 0.4,
        max_edges: 3,
    };
    let mut rows = Vec::new();
    for (label, size) in [
        ("PubChem100K/500", 200),
        ("PubChem500K/500", 1_000),
        ("PubChem1M/500", 2_000),
    ] {
        let db = DatasetSpec::new(kind, size, 12).generate().db;
        // FCT mining time.
        let t = Instant::now();
        let mut state = FctState::build(&db, mining);
        let fct_time = t.elapsed();
        let fct_count = state.fct(db.len()).len();
        // Index construction time + memory.
        let graph_refs: Vec<(GraphId, &LabeledGraph)> =
            db.iter().map(|(id, g)| (id, g.as_ref())).collect();
        let t = Instant::now();
        let features: Vec<(midas_mining::TreeKey, LabeledGraph)> = state
            .fct(db.len())
            .into_iter()
            .map(|(k, e)| (k.clone(), e.tree.clone()))
            .collect();
        let fct_index = FctIndex::build(
            features.iter().map(|(k, t)| (k.clone(), t)),
            graph_refs.iter().copied(),
            std::iter::empty::<(PatternId, &LabeledGraph)>(),
        );
        let infrequent: BTreeSet<midas_graph::EdgeLabel> = state
            .edges
            .infrequent(mining.sup_min, db.len())
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        let ife_index = IfeIndex::build(
            infrequent,
            graph_refs.iter().copied(),
            std::iter::empty::<(PatternId, &LabeledGraph)>(),
        );
        let index_time = t.elapsed();
        let index_bytes = fct_index.approx_bytes() + ife_index.approx_bytes();
        // FCT maintenance time for a +5% batch.
        let mut evolving = db.clone();
        let batch = growth_batch(&kind.params(), size / 20, 77);
        let (inserted, _) = evolving.apply(batch);
        let t = Instant::now();
        state.apply_batch(&evolving, &inserted, &[]);
        let fct_maint = t.elapsed();
        // Index maintenance: add the new graph columns.
        let mut fct_index = fct_index;
        let mut ife_index = ife_index;
        let t = Instant::now();
        for &id in &inserted {
            let g = evolving.get(id).expect("inserted");
            fct_index.add_graph(id, g);
            ife_index.add_graph(id, g);
        }
        let index_maint = t.elapsed();
        rows.push(vec![
            label.to_owned(),
            db.len().to_string(),
            fmt_duration(fct_time),
            fct_count.to_string(),
            fmt_duration(index_time),
            format!("{:.1}KB", index_bytes as f64 / 1024.0),
            fmt_duration(fct_maint),
            fmt_duration(index_maint),
        ]);
    }
    print_table(
        "Fig 12: FCT & index costs across dataset scales (PubChem-like)",
        &[
            "dataset",
            "|D|",
            "FCT mine",
            "|FCT|",
            "idx build",
            "idx mem",
            "FCT maint (+5%)",
            "idx maint (+5%)",
        ],
        &rows,
    );
}
