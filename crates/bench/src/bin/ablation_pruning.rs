//! Ablation: MIDAS's coverage-based candidate pruning (§5.2, Eq. 2 +
//! Def. 5.5) versus unpruned CATAPULT-style generation on the same CSGs.
//!
//! The paper motivates the pruning as the reason candidate generation can
//! "guide the FCP generation process towards candidates that are deemed to
//! have greater potential"; this harness quantifies it: candidates
//! produced, share surviving the promising test, and wall-clock.

use midas_bench::{experiment_config, fmt_duration, print_table, scaled_dataset};
use midas_catapult::candidates::generate_candidates;
use midas_catapult::random_walk::random_walks;
use midas_catapult::WeightedCsg;
use midas_core::candidate_gen::{coverage_state, generate_promising_candidates, GenerationParams};
use midas_core::metrics::ScovContext;
use midas_core::Midas;
use midas_datagen::updates::novel_family_batch;
use midas_datagen::{DatasetKind, MotifKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let kind = DatasetKind::PubchemLike;
    let db = scaled_dataset(kind, 25_000, 100, 77);
    let mut config = experiment_config(77);
    // Suppress the swap so we measure candidate generation against the
    // *stale* pattern set — the state §5.2's pruning actually sees.
    config.epsilon = f64::INFINITY;
    let mut midas = Midas::bootstrap(db, config).expect("non-empty");
    midas.apply_batch(novel_family_batch(MotifKind::BoronicEster, 60, 770));

    let sample: std::collections::BTreeSet<midas_graph::GraphId> = midas.db().ids().collect();
    let ctx = ScovContext {
        fct: midas.fct_index(),
        ife: midas.ife_index(),
        db: midas.db(),
        sample: &sample,
        catalog: &midas.fct_state().edges,
        kernel: Some(midas.kernel()),
    };
    let csgs: Vec<WeightedCsg> = midas
        .clusters()
        .iter()
        .map(|(_, c)| WeightedCsg::build(c.csg(), &midas.fct_state().edges, midas.db().len()))
        .collect();
    let state = coverage_state(midas.pattern_store(), &ctx);
    let params = GenerationParams {
        budget: config.budget,
        walks: config.walks,
        walk_length: config.walk_length,
        seeds_per_size: config.seeds_per_size,
        kappa: config.kappa,
    };

    // Pruned (MIDAS).
    let t = Instant::now();
    let mut rng = StdRng::seed_from_u64(7_700);
    let pruned = generate_promising_candidates(
        &csgs,
        midas.pattern_store(),
        &ctx,
        &state,
        &params,
        &mut rng,
    );
    let pruned_time = t.elapsed();

    // Unpruned (CATAPULT-style): same walks and sizes, pass-through hook,
    // no promising filter.
    let t = Instant::now();
    let mut rng = StdRng::seed_from_u64(7_700);
    let mut unpruned = Vec::new();
    for csg in &csgs {
        let stats = random_walks(csg, params.walks, params.walk_length, &mut rng);
        for size in params.budget.eta_min..=params.budget.eta_max {
            let mut pass = |_: &[(u32, u32)], _: (u32, u32)| true;
            unpruned.extend(generate_candidates(
                csg,
                &stats,
                size,
                params.seeds_per_size,
                &mut pass,
            ));
        }
    }
    let unpruned_time = t.elapsed();
    // How many unpruned candidates would actually be promising?
    let threshold = ((1.0 + params.kappa) * state.min_exclusive as f64).ceil() as usize;
    let promising = unpruned
        .iter()
        .filter(|c| ctx.covered(c).difference(&state.covered_union).count() >= threshold)
        .count();

    print_table(
        "Ablation: Eq. 2 pruning in candidate generation",
        &["variant", "candidates", "promising", "time"],
        &[
            vec![
                "MIDAS (pruned)".into(),
                pruned.len().to_string(),
                pruned.len().to_string(),
                fmt_duration(pruned_time),
            ],
            vec![
                "unpruned".into(),
                unpruned.len().to_string(),
                promising.to_string(),
                fmt_duration(unpruned_time),
            ],
        ],
    );
    println!(
        "\nmin exclusive coverage = {} -> promising threshold = {threshold}.",
        state.min_exclusive
    );
    if threshold == 0 {
        println!(
            "threshold 0: at this scale some pattern has zero exclusive\n\
             coverage, so Def. 5.5 admits every candidate and the pruning\n\
             pass only adds verification cost. At the paper's scale (25K+\n\
             graphs, γ = 30 diverse patterns) exclusive coverages are\n\
             positive and the filter discards the unproductive majority —\n\
             rerun with a larger dataset to see the crossover."
        );
    } else {
        println!(
            "pruning emitted {} promising FCPs; unpruned generation produced\n\
             {} candidates of which only {promising} were promising.",
            pruned.len(),
            unpruned.len()
        );
    }
}
