//! Example 1.1 / 1.2 walk-through: the boronic-acid query before and after
//! the boronic-ester batch arrives.
//!
//! The paper's numbers: edge-at-a-time 41 steps (145 s); stale patterns
//! 20 steps (102 s); refreshed patterns 14 steps (70 s). We reproduce the
//! *ordering and mechanism* — the refreshed set contains an ester-family
//! pattern that the stale set lacks, cutting steps further.

use midas_bench::{experiment_config, print_table};
use midas_core::Midas;
use midas_datagen::updates::novel_family_batch;
use midas_datagen::{DatasetKind, DatasetSpec, MotifKind};
use midas_graph::LabeledGraph;
use midas_queryform::{formulate, StudyConfig, UserStudy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Database: PubChem-like, then a boronic-ester wave arrives.
    let db = DatasetSpec::new(DatasetKind::PubchemLike, 200, 21)
        .generate()
        .db;
    let config = experiment_config(21);
    let mut midas = Midas::bootstrap(db, config).expect("non-empty");
    let stale = midas.patterns();

    // A large ester wave (the paper's 6 375 boronic esters against 23K
    // compounds is ~28%; we add 40%) so ester edges become frequent enough
    // for the random walks to surface B-carrying candidates.
    let update = novel_family_batch(MotifKind::BoronicEster, 80, 210);
    let report = midas.apply_batch(update);
    let fresh = midas.patterns();
    let boron = midas_datagen::atom(midas_datagen::Atom::B);
    let fresh_has_b = fresh.iter().any(|p| p.labels().contains(&boron));
    let stale_has_b = stale.iter().any(|p| p.labels().contains(&boron));

    // John's query: a full boronic-ester compound from the new family —
    // the analogue of the paper's boronic-acid query (Fig. 1).
    let ester_graph = novel_family_batch(MotifKind::BoronicEster, 3, 911)
        .insert
        .remove(1);
    let mut rng = StdRng::seed_from_u64(212);
    let query: LabeledGraph =
        midas_datagen::random_connected_subgraph(&ester_graph, ester_graph.edge_count(), &mut rng)
            .unwrap_or(ester_graph);

    let study = UserStudy::new(StudyConfig {
        users: 1,
        user_sigma: 0.0,
        ..StudyConfig::default()
    });
    let edge_mode = formulate(&query, &[]);
    let with_stale = formulate(&query, &stale);
    let with_fresh = formulate(&query, &fresh);
    let rows = vec![
        vec![
            "edge-at-a-time".into(),
            edge_mode.steps.to_string(),
            format!(
                "{:.0}s",
                study.run(std::slice::from_ref(&query), &[]).qft_secs
            ),
        ],
        vec![
            "stale patterns (pre-update)".into(),
            with_stale.steps.to_string(),
            format!(
                "{:.0}s",
                study.run(std::slice::from_ref(&query), &stale).qft_secs
            ),
        ],
        vec![
            "refreshed patterns (MIDAS)".into(),
            with_fresh.steps.to_string(),
            format!(
                "{:.0}s",
                study.run(std::slice::from_ref(&query), &fresh).qft_secs
            ),
        ],
    ];
    print_table(
        "Example 1: formulating a boronic-ester query",
        &["mode", "steps", "QFT"],
        &rows,
    );
    println!(
        "\nbatch classified as {:?} (graphlet drift {:.3}), {} swaps",
        report.kind, report.distance, report.swaps
    );
    println!(
        "stale set contains a B-carrying pattern: {stale_has_b}; refreshed set: {fresh_has_b} \
         (the paper's p3' effect)"
    );
    println!(
        "paper's ordering: edge-at-a-time (41) > stale (20) > refreshed (14); \
         ours must be monotone the same way."
    );
}
