//! Exp 3b continued (Fig. 15): the baseline comparison of Fig. 14 on
//! PubChem-like data (paper: PubChem15K).

use midas_bench::{
    experiment_config, fmt_duration, mu_against, print_table, scaled_dataset, BaselineBench,
};
use midas_datagen::updates::novel_family_batch;
use midas_datagen::{DatasetKind, MotifKind};

fn main() {
    let kind = DatasetKind::PubchemLike;
    let db = scaled_dataset(kind, 15_000, 100, 15);
    let config = experiment_config(15);
    let mut bench = BaselineBench::bootstrap(db, config);
    let update = novel_family_batch(MotifKind::BoronicEster, bench.midas.db().len() / 5, 150);
    let mut evolved = bench.midas.db().clone();
    let (inserted, _) = evolved.apply(update.clone());
    let queries = midas_datagen::balanced_query_set(&evolved, &inserted, 60, (3, 10), 151);

    let rows = bench.run_batch(update, &queries);
    let midas_patterns = rows[0].patterns.clone();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                fmt_duration(r.time),
                format!("{:.1}%", r.missed_pct),
                format!("{:.1}", r.steps),
                format!("{:+.3}", mu_against(&queries, &r.patterns, &midas_patterns)),
                format!("{:.3}", r.quality.scov),
                format!("{:.3}", r.quality.lcov),
                format!("{:.2}", r.quality.div),
                format!("{:.2}", r.quality.cog),
            ]
        })
        .collect();
    print_table(
        "Fig 15: baselines on PubChem-like",
        &[
            "approach",
            "time",
            "MP",
            "steps",
            "mu(MIDAS vs X)",
            "scov",
            "lcov",
            "div",
            "cog",
        ],
        &table,
    );
}
