//! Exp 4 (Fig. 16): scalability — PMT, PGT, cluster-maintenance speedup
//! over CATAPULT rebuild, and quality ranges as the dataset grows.
//!
//! Paper setting: PubChem DS = {200K, 450K, 950K} each +50K. Here: 1/1000
//! scale (200 / 450 / 950 graphs, each +20%).

use midas_bench::{experiment_config, fmt_duration, print_table};
use midas_core::baselines::catapult_from_scratch;
use midas_core::Midas;
use midas_datagen::{DatasetKind, DatasetSpec};

fn main() {
    let kind = DatasetKind::PubchemLike;
    let mut rows = Vec::new();
    for (label, size) in [("200K/1000", 200), ("450K/1000", 450), ("950K/1000", 950)] {
        let db = DatasetSpec::new(kind, size, 16).generate().db;
        let config = experiment_config(16);
        let mut midas = Midas::bootstrap(db.clone(), config).expect("non-empty");
        // The paper adds 50K new PubChem compounds per scale — a novel
        // wave large enough to warrant maintenance. We add a proportional
        // novel-family batch (+20%) so the major path runs at every scale.
        let update = midas_datagen::novel_family_batch(
            midas_datagen::MotifKind::BoronicEster,
            size / 5,
            160,
        );
        let report = midas.apply_batch(update);
        let quality = midas.quality();
        // CATAPULT rebuild on the evolved database for the speedup column.
        let scratch = catapult_from_scratch(midas.db(), &config);
        let speedup_pmt = scratch.total_time.as_secs_f64()
            / report.pattern_maintenance_time.as_secs_f64().max(1e-9);
        let speedup_cluster =
            scratch.clustering_time.as_secs_f64() / report.clustering_time.as_secs_f64().max(1e-9);
        rows.push(vec![
            label.to_owned(),
            midas.db().len().to_string(),
            fmt_duration(report.pattern_maintenance_time),
            fmt_duration(report.pattern_generation_time()),
            fmt_duration(scratch.total_time),
            format!("{speedup_pmt:.0}x"),
            format!("{speedup_cluster:.0}x"),
            format!("{:.2}", quality.scov),
            format!("{:.2}", quality.lcov),
            format!("{:.2}", quality.div),
            format!("{:.2}", quality.cog),
        ]);
    }
    print_table(
        "Fig 16: scalability on PubChem-like (+20% novel batch per scale)",
        &[
            "dataset",
            "|D|",
            "PMT",
            "PGT",
            "CATAPULT rebuild",
            "PMT speedup",
            "cluster speedup",
            "scov",
            "lcov",
            "div",
            "cog",
        ],
        &rows,
    );
    println!(
        "\nPaper shape: PMT/PGT grow with |D| but stay far below rebuild\n\
         (paper: 83× PMT and 642× clustering speedup at 1M);\n\
         quality stays in tight ranges (scov 0.94–0.98, cog 1.8–3.3)."
    );
}
