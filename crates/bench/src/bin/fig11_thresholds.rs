//! Exp 1 (Fig. 11): effect of the evolution-ratio threshold ε and the
//! swapping thresholds κ = λ on PMT, clustering time and PGT, versus
//! CATAPULT++ from-scratch maintenance.
//!
//! Paper setting: AIDS25K with a +5K batch. Here: AIDS-like at 1/100
//! scale (250 graphs, +50 batch).

use midas_bench::{experiment_config, fmt_duration, print_table, scaled_dataset};
use midas_core::baselines::catapult_pp_from_scratch;
use midas_core::Midas;
use midas_datagen::updates::growth_batch;
use midas_datagen::DatasetKind;

fn main() {
    let kind = DatasetKind::AidsLike;
    let db = scaled_dataset(kind, 25_000, 100, 11);
    let batch_size = db.len() / 5; // +20%, mirroring +5K on 25K

    // Sweep ε. The paper sweeps {0.05, 0.1, 0.2} on its datasets; our
    // generator's drift scale is ~10× smaller (see experiment_config), so
    // the equivalent sweep is {0.005, 0.01, 0.02}. The batch is a
    // novel-family addition, whose drift sits between the lower and upper
    // sweep values — making the Major→Minor transition visible.
    let mut rows = Vec::new();
    for epsilon in [0.005, 0.01, 0.02] {
        let mut config = experiment_config(11);
        config.epsilon = epsilon;
        let mut midas = Midas::bootstrap(db.clone(), config).expect("non-empty");
        let update = midas_datagen::novel_family_batch(
            midas_datagen::MotifKind::BoronicEster,
            batch_size,
            42,
        );
        let report = midas.apply_batch(update);
        rows.push(vec![
            format!("{epsilon}"),
            format!("{:?}", report.kind),
            fmt_duration(report.pattern_maintenance_time),
            fmt_duration(report.clustering_time),
            fmt_duration(report.pattern_generation_time()),
            report.swaps.to_string(),
        ]);
    }
    // CATAPULT++ reference (from scratch on the evolved database).
    {
        let config = experiment_config(11);
        let mut evolved = db.clone();
        evolved.apply(midas_datagen::novel_family_batch(
            midas_datagen::MotifKind::BoronicEster,
            batch_size,
            42,
        ));
        let scratch = catapult_pp_from_scratch(&evolved, &config);
        rows.push(vec![
            "CATAPULT++".into(),
            "(rebuild)".into(),
            fmt_duration(scratch.total_time),
            fmt_duration(scratch.clustering_time),
            fmt_duration(scratch.selection_time),
            "-".into(),
        ]);
    }
    print_table(
        "Fig 11 (top): varying ε on AIDS-like +20%",
        &["epsilon", "kind", "PMT", "cluster", "PGT", "swaps"],
        &rows,
    );

    // Sweep κ = λ.
    let mut rows = Vec::new();
    for kappa in [0.05, 0.1, 0.2, 0.4] {
        let mut config = experiment_config(11);
        config.kappa = kappa;
        config.lambda = kappa;
        config.epsilon = 0.0; // force pattern maintenance so PGT is visible
        let mut midas = Midas::bootstrap(db.clone(), config).expect("non-empty");
        let update = growth_batch(&kind.params(), batch_size, 43);
        let report = midas.apply_batch(update);
        rows.push(vec![
            format!("{kappa}"),
            fmt_duration(report.pattern_maintenance_time),
            fmt_duration(report.pattern_generation_time()),
            report.candidates_generated.to_string(),
            report.swaps.to_string(),
        ]);
    }
    print_table(
        "Fig 11 (bottom): varying κ = λ (ε = 0 to force maintenance)",
        &["kappa", "PMT", "PGT", "candidates", "swaps"],
        &rows,
    );
}
