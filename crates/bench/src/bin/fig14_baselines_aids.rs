//! Exp 3b (Fig. 14): MIDAS vs CATAPULT vs CATAPULT++ vs Random on
//! AIDS-like data — maintenance time, MP, μ, and set quality.

use midas_bench::{
    experiment_config, fmt_duration, mu_against, print_table, scaled_dataset, BaselineBench,
};
use midas_datagen::updates::novel_family_batch;
use midas_datagen::{DatasetKind, MotifKind};

fn main() {
    run(
        DatasetKind::AidsLike,
        25_000,
        "Fig 14: baselines on AIDS-like",
    );
}

/// Shared by fig14 (AIDS) and fig15 (PubChem).
pub fn run(kind: DatasetKind, paper_size: usize, title: &str) {
    let db = scaled_dataset(kind, paper_size, 100, 14);
    let config = experiment_config(14);
    let mut bench = BaselineBench::bootstrap(db, config);
    let update = novel_family_batch(MotifKind::BoronicEster, bench.midas.db().len() / 5, 140);
    // Balanced queries: half from Δ⁺-like graphs. The query set is drawn
    // after the batch inside run_batch's world, so draw from the evolved DB.
    let mut evolved = bench.midas.db().clone();
    let (inserted, _) = evolved.apply(update.clone());
    let queries = midas_datagen::balanced_query_set(&evolved, &inserted, 60, (3, 10), 141);

    let rows = bench.run_batch(update, &queries);
    let midas_patterns = rows[0].patterns.clone();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                fmt_duration(r.time),
                format!("{:.1}%", r.missed_pct),
                format!("{:.1}", r.steps),
                format!("{:+.3}", mu_against(&queries, &r.patterns, &midas_patterns)),
                format!("{:.3}", r.quality.scov),
                format!("{:.3}", r.quality.lcov),
                format!("{:.2}", r.quality.div),
                format!("{:.2}", r.quality.cog),
            ]
        })
        .collect();
    print_table(
        title,
        &[
            "approach",
            "time",
            "MP",
            "steps",
            "mu(MIDAS vs X)",
            "scov",
            "lcov",
            "div",
            "cog",
        ],
        &table,
    );
    println!(
        "\nμ > 0 means the approach needs more formulation steps than MIDAS.\n\
         Paper shape: MIDAS ≈ Random (fastest), ≫ faster than CATAPULT/CATAPULT++;\n\
         MIDAS lowest MP and best μ; quality comparable or better."
    );
}
