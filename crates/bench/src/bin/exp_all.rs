//! Runs the full experiment suite (Figs 9–16 + Example 1) sequentially at
//! harness scale. Each figure also has its own binary for focused runs.

use std::process::Command;

fn main() {
    let bins = [
        "fig09_user_study",
        "fig10_user_queries",
        "fig11_thresholds",
        "fig12_index_cost",
        "fig13_nomaintain",
        "fig14_baselines_aids",
        "fig15_baselines_pubchem",
        "fig16_scalability",
        "example1_boronic",
        "ablation_pruning",
        "ablation_fct_vs_fs",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        println!("\n################ {bin} ################");
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            midas_obs::obs_error!("bench::exp_all", "{bin} exited with {status}");
            std::process::exit(1);
        }
    }
    println!("\nall experiments completed");
}
