//! User study (Fig. 9): simulated participants formulate three query sets
//! (Qs1 from D, Qs2 mixed, Qs3 from Δ⁺) on PubChem-like data, comparing
//! QFT, steps and VMT across approaches.
//!
//! Paper setting: PubChem23K + 6K added, 25 participants, |P| = 30.
//! Paper result: MIDAS up to 29.5% faster QFT and 22.9% fewer steps than
//! NoMaintain; VMT comparable across approaches.

use midas_bench::{experiment_config, print_table, scaled_dataset, BaselineBench};
use midas_datagen::updates::novel_family_batch;
use midas_datagen::{DatasetKind, MotifKind};
use midas_graph::{GraphId, LabeledGraph};
use midas_queryform::{StudyConfig, UserStudy};

fn main() {
    let kind = DatasetKind::PubchemLike;
    let db = scaled_dataset(kind, 23_000, 100, 9);
    let config = experiment_config(9);
    let mut bench = BaselineBench::bootstrap(db, config);
    // +26% novel-family batch (6K on 23K).
    let update = novel_family_batch(
        MotifKind::BoronicEster,
        bench.midas.db().len() * 26 / 100,
        90,
    );

    // Snapshot Δ⁺ ids by applying to a scratch copy first (the bench applies
    // the same update to its pipelines).
    let mut probe = bench.midas.db().clone();
    let (inserted, _) = probe.apply(update.clone());

    // Query sets: Qs1 from D, Qs2 mixed (2 old + 3 new), Qs3 from Δ⁺.
    let old_ids: Vec<GraphId> = probe.ids().filter(|id| !inserted.contains(id)).collect();
    let qs1 = draw(&probe, &old_ids, 5, 901);
    let mut qs2 = draw(&probe, &old_ids, 2, 902);
    qs2.extend(draw(&probe, &inserted, 3, 903));
    let qs3 = draw(&probe, &inserted, 5, 904);

    // Maintain under every approach.
    let rows = bench.run_batch(update, &qs1);
    let approaches: Vec<(&str, Vec<LabeledGraph>)> = rows
        .iter()
        .map(|r| (r.name.as_str(), r.patterns.clone()))
        .collect();

    let study = UserStudy::new(StudyConfig::default());
    for (set_name, queries) in [
        ("Qs 1 (from D)", &qs1),
        ("Qs 2 (mixed)", &qs2),
        ("Qs 3 (from Δ+)", &qs3),
    ] {
        let results = study.compare(queries, &approaches);
        let mut table = Vec::new();
        for (name, r) in &results {
            table.push(vec![
                name.clone(),
                format!("{:.1}s", r.qft_secs),
                format!("{:.1}", r.steps),
                format!("{:.1}s", r.vmt_secs),
                format!("{:.0}%", r.missed_pct),
            ]);
        }
        print_table(
            &format!("Fig 9 — {set_name}: simulated user study (PubChem-like)"),
            &["approach", "QFT", "steps", "VMT", "MP"],
            &table,
        );
    }
    println!(
        "\nPaper shape: MIDAS fastest QFT / fewest steps, gap largest on Qs 3\n\
         (queries from Δ⁺); VMT comparable across approaches."
    );
}

fn draw(db: &midas_graph::GraphDb, pool: &[GraphId], count: usize, seed: u64) -> Vec<LabeledGraph> {
    // Study queries are larger (paper: size 19–45); our molecules are
    // scaled down, so use sizes 8–16.
    let all: Vec<GraphId> = db.ids().collect();
    let pool = if pool.is_empty() { &all } else { pool };
    let sub = midas_graph::GraphDb::from_graphs(
        pool.iter()
            .map(|id| db.get(*id).expect("live").as_ref().clone()),
    );
    midas_datagen::query_set(&sub, count, (8, 16), seed)
}
