//! User study with user-specified queries (Fig. 10): simulated users pose
//! their own queries of any size/topology on all three datasets; average
//! QFT, steps and VMT per approach.
//!
//! Paper: ~5 queries per user per dataset, sizes 18–42; MIDAS takes the
//! least QFT, steps and VMT on average for all datasets.

use midas_bench::{experiment_config, print_table, scaled_dataset, BaselineBench};
use midas_datagen::updates::novel_family_batch;
use midas_datagen::{DatasetKind, MotifKind};
use midas_graph::LabeledGraph;
use midas_queryform::{StudyConfig, UserStudy};

fn main() {
    for (kind, paper_size, name) in [
        (DatasetKind::PubchemLike, 23_000, "PubChem-like"),
        (DatasetKind::AidsLike, 25_000, "AIDS-like"),
        (DatasetKind::EmolLike, 5_000, "eMol-like"),
    ] {
        let db = scaled_dataset(kind, paper_size, 100, 10);
        let config = experiment_config(10);
        let mut bench = BaselineBench::bootstrap(db, config);
        let update = novel_family_batch(MotifKind::BoronicEster, bench.midas.db().len() / 4, 100);

        // User-specified queries: free size/topology, biased toward recent
        // graphs (users explore what is new) — drawn from the evolved DB.
        let mut evolved = bench.midas.db().clone();
        let (inserted, _) = evolved.apply(update.clone());
        let user_queries: Vec<LabeledGraph> =
            midas_datagen::balanced_query_set(&evolved, &inserted, 25, (6, 14), 101);

        let rows = bench.run_batch(update, &user_queries);
        let approaches: Vec<(&str, Vec<LabeledGraph>)> = rows
            .iter()
            .map(|r| (r.name.as_str(), r.patterns.clone()))
            .collect();
        let study = UserStudy::new(StudyConfig::default());
        let results = study.compare(&user_queries, &approaches);
        let mut table = Vec::new();
        for (approach, r) in &results {
            table.push(vec![
                approach.clone(),
                format!("{:.1}s", r.qft_secs),
                format!("{:.1}", r.steps),
                format!("{:.1}s", r.vmt_secs),
                format!("{:.0}%", r.missed_pct),
            ]);
        }
        print_table(
            &format!("Fig 10 — user-specified queries on {name}"),
            &["approach", "QFT", "steps", "VMT", "MP"],
            &table,
        );
    }
    println!("\nPaper shape: MIDAS lowest average QFT/steps/VMT on every dataset.");
}
