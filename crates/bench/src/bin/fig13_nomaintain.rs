//! Exp 3a (Fig. 13): MIDAS vs NoMaintain on AIDS-like data — missed
//! percentage, diversity and subgraph coverage across a batch sequence.
//!
//! Paper setting: AIDS25K with ±Y% batches; the paper reports MIDAS beating
//! NoMaintain's MP by 61% on average with better div and scov. Queries are
//! balanced over Δ⁺ (§7.1), which is where stale pattern sets lose.

use midas_bench::{experiment_config, print_table, scaled_dataset};
use midas_core::Midas;
use midas_datagen::updates::{deletion_percent, growth_percent, novel_family_batch};
use midas_datagen::{DatasetKind, MotifKind};
use midas_graph::{BatchUpdate, GraphId};
use std::collections::BTreeSet;

fn main() {
    let kind = DatasetKind::AidsLike;
    let db = scaled_dataset(kind, 25_000, 100, 13);
    let config = experiment_config(13);
    let mut midas = Midas::bootstrap(db, config).expect("non-empty");
    let stale_patterns = midas.patterns();

    // Batch sequence: successive novel families arrive, plus growth and
    // deletions — the paper's ±Y% programme.
    let size = midas.db().len();
    let batches: Vec<(&str, BatchUpdate)> = vec![
        (
            "+20% ester",
            novel_family_batch(MotifKind::BoronicEster, size / 5, 131),
        ),
        (
            "+10%",
            growth_percent(&kind.params(), midas.db(), 10.0, 132),
        ),
        (
            "+20% phosphate",
            novel_family_batch(MotifKind::Phosphate, size / 5, 134),
        ),
        ("-10%", deletion_percent(midas.db(), 10.0, 133)),
        (
            "+20% thiol",
            novel_family_batch(MotifKind::Thiol, size / 5, 135),
        ),
    ];

    let mut rows = Vec::new();
    let mut mp_gains = Vec::new();
    for (i, (label, update)) in batches.into_iter().enumerate() {
        let before_ids: BTreeSet<GraphId> = midas.db().ids().collect();
        let report = midas.apply_batch(update);
        let inserted: Vec<GraphId> = midas
            .db()
            .ids()
            .filter(|id| !before_ids.contains(id))
            .collect();
        // Balanced queries: half from Δ⁺ when there is one (§7.1).
        let queries =
            midas_datagen::balanced_query_set(midas.db(), &inserted, 60, (3, 10), 1_300 + i as u64);
        let universe: BTreeSet<GraphId> = midas.db().ids().collect();
        let q_midas = midas_core::quality_of(
            &midas.patterns(),
            midas.db(),
            &midas.fct_state().edges,
            &universe,
        );
        let q_stale = midas_core::quality_of(
            &stale_patterns,
            midas.db(),
            &midas.fct_state().edges,
            &universe,
        );
        let mp_midas = midas_queryform::missed_percentage(&queries, &midas.patterns());
        let mp_stale = midas_queryform::missed_percentage(&queries, &stale_patterns);
        if mp_stale > 0.0 {
            mp_gains.push((mp_stale - mp_midas) / mp_stale * 100.0);
        }
        rows.push(vec![
            label.to_owned(),
            format!("{:?}", report.kind),
            format!("{:.1}%", mp_midas),
            format!("{:.1}%", mp_stale),
            format!("{:.3}", q_midas.scov),
            format!("{:.3}", q_stale.scov),
            format!("{:.2}", q_midas.div),
            format!("{:.2}", q_stale.div),
            report.swaps.to_string(),
        ]);
    }
    print_table(
        "Fig 13: MIDAS vs NoMaintain on AIDS-like (MP / scov / div per batch)",
        &[
            "batch",
            "kind",
            "MP midas",
            "MP stale",
            "scov midas",
            "scov stale",
            "div midas",
            "div stale",
            "swaps",
        ],
        &rows,
    );
    if !mp_gains.is_empty() {
        let avg = mp_gains.iter().sum::<f64>() / mp_gains.len() as f64;
        println!("\naverage MP improvement over NoMaintain: {avg:.1}% (paper: 61%)");
    }
}
