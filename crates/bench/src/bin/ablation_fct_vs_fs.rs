//! Ablation: frequent closed trees (FCT) vs frequent subtrees (FS) as the
//! clustering feature basis — §3.3's scaffolding claim.
//!
//! > "there are fewer closed trees than frequent ones in general.
//! > Consequently, FCTs significantly reduce the number of frequent
//! > structures being considered."
//!
//! Reports |FS| vs |FCT| and the coarse-clustering feature dimensionality
//! for each dataset preset, plus mining time.

use midas_bench::{fmt_duration, print_table};
use midas_cluster::FeatureSpace;
use midas_datagen::{DatasetKind, DatasetSpec};
use midas_mining::incremental::FctState;
use midas_mining::MiningConfig;
use std::time::Instant;

fn main() {
    let mut rows = Vec::new();
    // Deeper trees subsume more subtrees, so the FCT reduction grows with
    // max_edges — sweep it alongside the dataset presets.
    for (kind, size, max_edges) in [
        (DatasetKind::AidsLike, 250, 2),
        (DatasetKind::AidsLike, 250, 3),
        (DatasetKind::AidsLike, 250, 4),
        (DatasetKind::PubchemLike, 250, 3),
        (DatasetKind::EmolLike, 250, 3),
    ] {
        let mining = MiningConfig {
            sup_min: 0.4,
            max_edges,
        };
        let ds = DatasetSpec::new(kind, size, 88).generate();
        let t = Instant::now();
        let state = FctState::build(&ds.db, mining);
        let mine_time = t.elapsed();
        let fs = state.frequent_trees(ds.db.len()).len();
        let fct = state.fct(ds.db.len()).len();
        let fs_space = FeatureSpace::from_frequent(&state.lattice, mining.sup_min, ds.db.len());
        let fct_space = FeatureSpace::from_fct(&state.lattice, mining.sup_min, ds.db.len());
        rows.push(vec![
            format!("{} (≤{} edges)", ds.name, max_edges),
            fs.to_string(),
            fct.to_string(),
            format!("{:.0}%", 100.0 * fct as f64 / fs.max(1) as f64),
            fs_space.dims().to_string(),
            fct_space.dims().to_string(),
            fmt_duration(mine_time),
        ]);
    }
    print_table(
        "Ablation: FCT vs FS feature bases (sup_min = 0.4)",
        &[
            "dataset",
            "|FS|",
            "|FCT|",
            "FCT/FS",
            "FS dims",
            "FCT dims",
            "mine time",
        ],
        &rows,
    );
    println!(
        "\nPaper claim (§3.3): closed trees are fewer than frequent trees,\n\
         shrinking the clustering feature space while preserving the\n\
         information (FS are derivable from FCT)."
    );
}
