//! # midas-bench
//!
//! The experiment harness reproducing every figure of the MIDAS paper's
//! evaluation (§7). Each `fig*` binary in `src/bin/` regenerates the rows
//! or series of one figure; `exp_all` runs the full suite at reduced scale.
//!
//! Datasets are synthetic molecule collections from `midas-datagen`,
//! scaled down ~100× from the paper (see DESIGN.md §3) — absolute numbers
//! differ from the paper's testbed, but the comparisons (who wins, by what
//! factor, where crossovers fall) are the reproduction target, recorded in
//! EXPERIMENTS.md.

use midas_catapult::PatternBudget;
use midas_core::baselines::{catapult_from_scratch, catapult_pp_from_scratch};
use midas_core::framework::SwapStrategy;
use midas_core::{Midas, MidasConfig};
use midas_datagen::{DatasetKind, DatasetSpec};
use midas_graph::{BatchUpdate, GraphDb, GraphId, LabeledGraph};
use std::time::Duration;

/// A standard experiment configuration at harness scale.
pub fn experiment_config(seed: u64) -> MidasConfig {
    MidasConfig {
        budget: PatternBudget {
            eta_min: 3,
            eta_max: 8,
            gamma: 12,
        },
        sup_min: 0.4,
        max_tree_edges: 3,
        coarse_clusters: 6,
        max_cluster_size: 60,
        sample_size: 120,
        walks: 60,
        walk_length: 16,
        seeds_per_size: 2,
        // The paper's ε = 0.1 is calibrated to its datasets' drift scale.
        // Our generator's same-distribution growth drifts ≤ 0.008 and
        // novel-family batches drift ≥ 0.015, so the equivalent boundary
        // sits at 0.01 (the fig11 harness sweeps around it).
        epsilon: 0.01,
        seed,
        ..MidasConfig::default()
    }
}

/// Builds the scaled dataset named like the paper (`AIDS25K` → here a
/// ~250-graph AIDS-like collection when `scale_divisor` = 100).
pub fn scaled_dataset(kind: DatasetKind, paper_size: usize, divisor: usize, seed: u64) -> GraphDb {
    let size = (paper_size / divisor).max(40);
    DatasetSpec::new(kind, size, seed).generate().db
}

/// Per-approach measurement row shared by Exp 3 / Exp 4.
#[derive(Debug, Clone)]
pub struct ApproachRow {
    /// Approach name (MIDAS / CATAPULT / CATAPULT++ / Random / NoMaintain).
    pub name: String,
    /// Maintenance time for the batch.
    pub time: Duration,
    /// Missed percentage over the evaluation query set.
    pub missed_pct: f64,
    /// Mean steps over the query set.
    pub steps: f64,
    /// Pattern-set quality.
    pub quality: midas_catapult::score::SetQuality,
    /// Patterns held after maintenance.
    pub patterns: Vec<LabeledGraph>,
}

/// Runs one batch under all five §7.1 approaches, measuring each.
///
/// All approaches start from the *same* bootstrapped state (cloned MIDAS
/// pipelines) so differences come from the maintenance strategy alone.
pub struct BaselineBench {
    /// Fully maintained MIDAS instance.
    pub midas: Midas,
    /// The pipeline used by the Random baseline.
    pub random: Midas,
    /// The static database snapshot the NoMaintain patterns came from.
    pub initial_patterns: Vec<LabeledGraph>,
    config: MidasConfig,
}

impl BaselineBench {
    /// Bootstraps the shared starting state.
    pub fn bootstrap(db: GraphDb, config: MidasConfig) -> Self {
        let midas = Midas::bootstrap(db.clone(), config).expect("non-empty db");
        let random = Midas::bootstrap(db, config).expect("non-empty db");
        let initial_patterns = midas.patterns();
        BaselineBench {
            midas,
            random,
            initial_patterns,
            config,
        }
    }

    /// Applies `update` under every approach; returns rows evaluated on
    /// `queries`.
    pub fn run_batch(&mut self, update: BatchUpdate, queries: &[LabeledGraph]) -> Vec<ApproachRow> {
        let mut rows = Vec::new();
        // MIDAS.
        let report = self.midas.apply_batch(update.clone());
        rows.push(self.row(
            "MIDAS",
            report.pattern_maintenance_time,
            self.midas.patterns(),
            queries,
            &self.midas,
        ));
        // Random (same pipeline, random swapping).
        let report = self
            .random
            .apply_batch_with_strategy(update.clone(), SwapStrategy::Random);
        rows.push(self.row(
            "Random",
            report.pattern_maintenance_time,
            self.random.patterns(),
            queries,
            &self.random,
        ));
        // From-scratch baselines run on MIDAS's (already updated) database.
        let db = self.midas.db().clone();
        let scratch = catapult_from_scratch(&db, &self.config);
        rows.push(self.row(
            "CATAPULT",
            scratch.total_time,
            scratch.patterns,
            queries,
            &self.midas,
        ));
        let scratch_pp = catapult_pp_from_scratch(&db, &self.config);
        rows.push(self.row(
            "CATAPULT++",
            scratch_pp.total_time,
            scratch_pp.patterns,
            queries,
            &self.midas,
        ));
        // NoMaintain: zero maintenance cost, stale patterns.
        rows.push(self.row(
            "NoMaintain",
            Duration::ZERO,
            self.initial_patterns.clone(),
            queries,
            &self.midas,
        ));
        rows
    }

    fn row(
        &self,
        name: &str,
        time: Duration,
        patterns: Vec<LabeledGraph>,
        queries: &[LabeledGraph],
        world: &Midas,
    ) -> ApproachRow {
        let universe: std::collections::BTreeSet<GraphId> = world.db().ids().collect();
        let quality =
            midas_core::quality_of(&patterns, world.db(), &world.fct_state().edges, &universe);
        ApproachRow {
            name: name.to_owned(),
            time,
            missed_pct: midas_queryform::missed_percentage(queries, &patterns),
            steps: midas_queryform::measures::mean_steps(queries, &patterns),
            quality,
            patterns,
        }
    }
}

/// Formats a duration compactly for tables.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 10 {
        format!("{:.1}s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{}ms", d.as_millis())
    } else {
        format!("{}µs", d.as_micros())
    }
}

/// Prints a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, |c| c.len()))
                .chain([h.len()])
                .max()
                .unwrap_or(h.len())
        })
        .collect();
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|h| (*h).to_owned()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Reduction ratio of `reference` patterns vs each named baseline.
pub fn mu_against(
    queries: &[LabeledGraph],
    baseline: &[LabeledGraph],
    reference: &[LabeledGraph],
) -> f64 {
    midas_queryform::reduction_ratio(queries, baseline, reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_datagen::updates::growth_batch;

    #[test]
    fn baseline_bench_produces_all_five_rows() {
        let db = scaled_dataset(DatasetKind::EmolLike, 6_000, 100, 1);
        let config = experiment_config(1);
        let mut bench = BaselineBench::bootstrap(db, config);
        let update = growth_batch(&DatasetKind::EmolLike.params(), 10, 2);
        let queries = midas_datagen::query_set(bench.midas.db(), 10, (3, 6), 3);
        let rows = bench.run_batch(update, &queries);
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["MIDAS", "Random", "CATAPULT", "CATAPULT++", "NoMaintain"]
        );
        for row in &rows {
            assert!(row.missed_pct >= 0.0 && row.missed_pct <= 100.0);
            assert!(row.steps >= 0.0);
        }
    }

    #[test]
    fn scaled_dataset_has_floor() {
        let db = scaled_dataset(DatasetKind::EmolLike, 100, 100, 1);
        assert!(db.len() >= 40);
    }

    #[test]
    fn fmt_duration_ranges() {
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.0s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7µs");
    }
}
