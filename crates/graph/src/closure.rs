//! Graph closure — the integration operation behind cluster summary graphs
//! (§2.3, Fig. 4).
//!
//! A *closure graph* integrates several data graphs into one labelled graph:
//! conceptually each input graph is padded with `ε`-dummies into an
//! *extended graph*, a mapping `φ` aligns the extended graphs, and each
//! vertex/edge of the closure takes the element-wise union of the aligned
//! attribute values (with `ε` removed). Our [`ClosureGraph`] realizes the
//! result directly: vertices carry label *multisets* (one contribution per
//! member graph), and edges carry the set of member graph ids that contain
//! them — exactly the bookkeeping the CSG maintenance steps of §4.4
//! manipulate.
//!
//! The alignment `φ` is computed greedily (label-first, then maximizing
//! matched edges); optimal alignment is NP-hard and the paper does not
//! require it (see DESIGN.md §5).

use crate::db::GraphId;
use crate::graph::{LabeledGraph, VertexId};
use crate::labels::LabelId;
use std::collections::{BTreeMap, BTreeSet};

/// Index of a vertex within a [`ClosureGraph`].
pub type ClosureVertexId = u32;

/// A closure graph: the integration of a set of member graphs.
#[derive(Debug, Clone, Default)]
pub struct ClosureGraph {
    /// Per-vertex label multiset: label -> number of member graphs that
    /// mapped a vertex with this label here.
    vertex_labels: Vec<BTreeMap<LabelId, u32>>,
    /// Per-vertex supporting member ids.
    vertex_support: Vec<BTreeSet<GraphId>>,
    /// Adjacency with edge supports: `adj[u][v]` = ids of member graphs
    /// containing the edge `(u, v)`. Kept symmetric.
    adj: Vec<BTreeMap<ClosureVertexId, BTreeSet<GraphId>>>,
    /// All member graph ids.
    members: BTreeSet<GraphId>,
}

impl ClosureGraph {
    /// Creates an empty closure graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the closure of `graphs` by iterative insertion, largest graph
    /// first (which gives the greedy alignment the best anchor).
    pub fn from_graphs<'a, I>(graphs: I) -> Self
    where
        I: IntoIterator<Item = (GraphId, &'a LabeledGraph)>,
    {
        let mut items: Vec<(GraphId, &LabeledGraph)> = graphs.into_iter().collect();
        items.sort_by_key(|(id, g)| (std::cmp::Reverse(g.edge_count()), *id));
        let mut closure = Self::new();
        for (id, g) in items {
            closure.insert_graph(id, g);
        }
        closure
    }

    /// Number of (live) closure vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertex_labels
            .iter()
            .filter(|labels| !labels.is_empty())
            .count()
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.adj
            .iter()
            .enumerate()
            .map(|(u, ns)| ns.keys().filter(|&&v| v as usize > u).count())
            .sum()
    }

    /// Member graph ids.
    pub fn members(&self) -> &BTreeSet<GraphId> {
        &self.members
    }

    /// Whether `(u, v)` is a live edge.
    pub fn has_edge(&self, u: ClosureVertexId, v: ClosureVertexId) -> bool {
        self.adj
            .get(u as usize)
            .is_some_and(|ns| ns.contains_key(&v))
    }

    /// The support set of edge `(u, v)`, if the edge exists.
    pub fn edge_support(
        &self,
        u: ClosureVertexId,
        v: ClosureVertexId,
    ) -> Option<&BTreeSet<GraphId>> {
        self.adj.get(u as usize).and_then(|ns| ns.get(&v))
    }

    /// Iterates live edges as `(u, v, support)` with `u < v`.
    pub fn edges(
        &self,
    ) -> impl Iterator<Item = (ClosureVertexId, ClosureVertexId, &BTreeSet<GraphId>)> {
        self.adj.iter().enumerate().flat_map(|(u, ns)| {
            ns.iter()
                .filter(move |(&v, _)| v as usize > u)
                .map(move |(&v, sup)| (u as ClosureVertexId, v, sup))
        })
    }

    /// The label multiset of vertex `v` (empty if the vertex is dead).
    pub fn vertex_label_counts(&self, v: ClosureVertexId) -> &BTreeMap<LabelId, u32> {
        &self.vertex_labels[v as usize]
    }

    /// The representative label of vertex `v`: the most frequent
    /// contribution (ties broken toward the smallest label id). `None` for
    /// dead vertices.
    pub fn representative_label(&self, v: ClosureVertexId) -> Option<LabelId> {
        self.vertex_labels[v as usize]
            .iter()
            .max_by(|(la, ca), (lb, cb)| ca.cmp(cb).then(lb.cmp(la)))
            .map(|(&l, _)| l)
    }

    /// Greedy insertion of one member graph (the `φ`-alignment step).
    ///
    /// Vertices of `graph` are visited in descending-degree order. Each is
    /// mapped to the live closure vertex maximizing
    /// `(matched adjacent edges, exact label match)`, provided it either
    /// matches at least one edge or (when the vertex has no mapped neighbor
    /// yet) matches the label; otherwise a fresh closure vertex is created
    /// (the "extended graph" dummy in reverse).
    ///
    /// Returns the mapping `graph vertex -> closure vertex`.
    pub fn insert_graph(&mut self, id: GraphId, graph: &LabeledGraph) -> Vec<ClosureVertexId> {
        assert!(
            self.members.insert(id),
            "graph {id} is already a member of this closure"
        );
        let n = graph.vertex_count();
        let mut order: Vec<VertexId> = (0..n as VertexId).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));

        let mut mapping = vec![u32::MAX; n];
        let mut used = vec![false; self.vertex_labels.len()];

        for &v in &order {
            let label = graph.label(v);
            let mapped_neighbors: Vec<ClosureVertexId> = graph
                .neighbors(v)
                .iter()
                .filter_map(|&w| {
                    let m = mapping[w as usize];
                    (m != u32::MAX).then_some(m)
                })
                .collect();
            let mut best: Option<(usize, bool, std::cmp::Reverse<u32>)> = None;
            let mut best_vertex = None;
            for c in 0..self.vertex_labels.len() as ClosureVertexId {
                if used[c as usize] || self.vertex_labels[c as usize].is_empty() {
                    continue;
                }
                let label_match = self.vertex_labels[c as usize].contains_key(&label);
                let edge_score = mapped_neighbors
                    .iter()
                    .filter(|&&m| self.has_edge(c, m))
                    .count();
                // Accept only alignments that share structure or, for
                // frontier-free vertices, at least the label.
                if edge_score == 0 && !(mapped_neighbors.is_empty() && label_match) {
                    continue;
                }
                let key = (edge_score, label_match, std::cmp::Reverse(c));
                if best.as_ref().is_none_or(|b| key > *b) {
                    best = Some(key);
                    best_vertex = Some(c);
                }
            }
            let target = match best_vertex {
                Some(c) => c,
                None => {
                    self.vertex_labels.push(BTreeMap::new());
                    self.vertex_support.push(BTreeSet::new());
                    self.adj.push(BTreeMap::new());
                    used.push(false);
                    (self.vertex_labels.len() - 1) as ClosureVertexId
                }
            };
            used[target as usize] = true;
            mapping[v as usize] = target;
            *self.vertex_labels[target as usize]
                .entry(label)
                .or_insert(0) += 1;
            self.vertex_support[target as usize].insert(id);
        }

        for &(u, v) in graph.edges() {
            let (cu, cv) = (mapping[u as usize], mapping[v as usize]);
            self.adj[cu as usize].entry(cv).or_default().insert(id);
            self.adj[cv as usize].entry(cu).or_default().insert(id);
        }
        mapping
    }

    /// Removes a member graph (§4.4 step 2): its id is dropped from every
    /// edge and vertex support; edges whose support empties are deleted, and
    /// vertices with no remaining support become dead.
    ///
    /// `graph` must be the same graph that was inserted under `id` — it is
    /// used to decrement the per-vertex label multiset.
    pub fn remove_graph(&mut self, id: GraphId, graph: &LabeledGraph) {
        if !self.members.remove(&id) {
            return;
        }
        // Labels: decrement one contribution per graph vertex label from the
        // closure vertices that `id` supports. We do not know the original
        // mapping, but each supported closure vertex holds exactly one
        // contribution from `id`; removing label counts greedily by matching
        // the graph's label multiset against supported vertices is exact
        // because contributions are per-graph-vertex.
        let mut remaining: BTreeMap<LabelId, u32> = BTreeMap::new();
        for &l in graph.labels() {
            *remaining.entry(l).or_insert(0) += 1;
        }
        for v in 0..self.vertex_labels.len() {
            if !self.vertex_support[v].remove(&id) {
                continue;
            }
            // This closure vertex held exactly one vertex of `id`; find a
            // label of `id` still unaccounted that this vertex carries.
            let candidate = self.vertex_labels[v]
                .keys()
                .copied()
                .find(|l| remaining.get(l).is_some_and(|&c| c > 0));
            if let Some(l) = candidate {
                *remaining.get_mut(&l).expect("checked above") -= 1;
                let count = self.vertex_labels[v].get_mut(&l).expect("candidate key");
                *count -= 1;
                if *count == 0 {
                    self.vertex_labels[v].remove(&l);
                }
            }
        }
        // Edges.
        for u in 0..self.adj.len() {
            let mut dead = Vec::new();
            for (&v, sup) in self.adj[u].iter_mut() {
                if sup.remove(&id) && sup.is_empty() {
                    dead.push(v);
                }
            }
            for v in dead {
                self.adj[u].remove(&v);
            }
        }
    }

    /// Projects the closure onto a plain [`LabeledGraph`] using
    /// representative labels, dropping dead vertices.
    ///
    /// Returns the projected graph together with, for each projected vertex,
    /// the originating closure vertex id.
    pub fn to_labeled_graph(&self) -> (LabeledGraph, Vec<ClosureVertexId>) {
        let mut back = Vec::new();
        let mut fwd = vec![u32::MAX; self.vertex_labels.len()];
        let mut g = LabeledGraph::new();
        for v in 0..self.vertex_labels.len() as ClosureVertexId {
            if let Some(label) = self.representative_label(v) {
                fwd[v as usize] = g.add_vertex(label);
                back.push(v);
            }
        }
        for (u, v, _) in self.edges() {
            let (fu, fv) = (fwd[u as usize], fwd[v as usize]);
            if fu != u32::MAX && fv != u32::MAX {
                g.add_edge(fu, fv);
            }
        }
        (g, back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn gid(i: u64) -> GraphId {
        GraphId(i)
    }

    fn co_path() -> LabeledGraph {
        // C - O
        GraphBuilder::new().vertices(&[0, 1]).edge(0, 1).build()
    }

    fn con_path() -> LabeledGraph {
        // C - O - N
        GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .path(&[0, 1, 2])
            .build()
    }

    #[test]
    fn single_graph_closure_mirrors_graph() {
        let g = con_path();
        let c = ClosureGraph::from_graphs([(gid(1), &g)]);
        assert_eq!(c.vertex_count(), 3);
        assert_eq!(c.edge_count(), 2);
        assert_eq!(c.members().len(), 1);
        let (proj, _) = c.to_labeled_graph();
        assert_eq!(proj.sorted_labels(), vec![0, 1, 2]);
        assert_eq!(proj.edge_count(), 2);
    }

    #[test]
    fn overlapping_graphs_share_vertices() {
        // C-O and C-O-N should integrate into a 3-vertex closure.
        let a = co_path();
        let b = con_path();
        let c = ClosureGraph::from_graphs([(gid(1), &a), (gid(2), &b)]);
        assert_eq!(c.vertex_count(), 3);
        assert_eq!(c.edge_count(), 2);
        // The C-O edge is supported by both graphs.
        let shared = c
            .edges()
            .find(|(_, _, sup)| sup.len() == 2)
            .expect("shared edge exists");
        assert_eq!(shared.2.iter().count(), 2);
    }

    #[test]
    fn disjoint_labels_stay_separate() {
        let a = co_path(); // C-O
        let b = GraphBuilder::new().vertices(&[3, 4]).edge(0, 1).build(); // S-P
        let c = ClosureGraph::from_graphs([(gid(1), &a), (gid(2), &b)]);
        assert_eq!(c.vertex_count(), 4);
        assert_eq!(c.edge_count(), 2);
    }

    #[test]
    fn removal_restores_prior_structure() {
        let a = co_path();
        let b = con_path();
        let mut c = ClosureGraph::new();
        c.insert_graph(gid(1), &a);
        c.insert_graph(gid(2), &b);
        c.remove_graph(gid(2), &b);
        assert_eq!(c.members().len(), 1);
        // Only the C-O edge survives, supported by graph 1 alone.
        assert_eq!(c.edge_count(), 1);
        let (_, _, sup) = c.edges().next().unwrap();
        assert_eq!(sup.iter().copied().collect::<Vec<_>>(), vec![gid(1)]);
        // N's vertex died with graph 2.
        assert_eq!(c.vertex_count(), 2);
    }

    #[test]
    fn remove_unknown_member_is_noop() {
        let a = co_path();
        let mut c = ClosureGraph::new();
        c.insert_graph(gid(1), &a);
        c.remove_graph(gid(9), &a);
        assert_eq!(c.members().len(), 1);
        assert_eq!(c.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "already a member")]
    fn duplicate_member_rejected() {
        let a = co_path();
        let mut c = ClosureGraph::new();
        c.insert_graph(gid(1), &a);
        c.insert_graph(gid(1), &a);
    }

    #[test]
    fn representative_label_is_majority() {
        // Two C-O graphs and one differing alignment contribute labels.
        let a = co_path();
        let b = co_path();
        let mut c = ClosureGraph::new();
        c.insert_graph(gid(1), &a);
        c.insert_graph(gid(2), &b);
        for v in 0..2 {
            let rep = c.representative_label(v).unwrap();
            assert!(rep == 0 || rep == 1);
            assert_eq!(c.vertex_label_counts(v).values().sum::<u32>(), 2);
        }
    }

    #[test]
    fn projection_skips_dead_vertices() {
        let a = co_path();
        let b = con_path();
        let mut c = ClosureGraph::new();
        c.insert_graph(gid(1), &a);
        c.insert_graph(gid(2), &b);
        c.remove_graph(gid(2), &b);
        let (proj, back) = c.to_labeled_graph();
        assert_eq!(proj.vertex_count(), 2);
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn larger_first_ordering_in_from_graphs() {
        // from_graphs must anchor on the larger graph; either way the
        // closure of a graph and its subgraph equals the larger graph.
        let a = co_path();
        let b = con_path();
        let c1 = ClosureGraph::from_graphs([(gid(1), &a), (gid(2), &b)]);
        let c2 = ClosureGraph::from_graphs([(gid(2), &b), (gid(1), &a)]);
        assert_eq!(c1.vertex_count(), c2.vertex_count());
        assert_eq!(c1.edge_count(), c2.edge_count());
    }

    #[test]
    fn fig4_style_closure_of_two_rings() {
        // Two 4-cycles differing in one label integrate into one 4-cycle
        // whose differing vertex carries both labels.
        let r1 = GraphBuilder::new()
            .vertices(&[0, 1, 0, 1])
            .path(&[0, 1, 2, 3])
            .edge(3, 0)
            .build();
        let r2 = GraphBuilder::new()
            .vertices(&[0, 1, 0, 2])
            .path(&[0, 1, 2, 3])
            .edge(3, 0)
            .build();
        let c = ClosureGraph::from_graphs([(gid(1), &r1), (gid(2), &r2)]);
        assert_eq!(c.vertex_count(), 4, "rings align vertex-for-vertex");
        assert_eq!(c.edge_count(), 4);
        let multi = (0..4)
            .filter(|&v| c.vertex_label_counts(v).len() == 2)
            .count();
        assert_eq!(multi, 1, "exactly one vertex carries {{O, N}}");
    }
}
