//! A fast, non-cryptographic hasher for the matcher's hot maps.
//!
//! The embedding memo and the plan cache hash a key per `(pattern, graph)`
//! probe — millions of times per maintenance batch. SipHash's DoS
//! resistance buys nothing there (keys are canonical codes and graph ids
//! produced by this workspace, not attacker input), so these maps use an
//! Fx-style multiply-rotate hash: a few cycles per word instead of a few
//! dozen per byte.

use std::hash::{BuildHasher, Hasher};

/// Multiplier from the golden-ratio family (the same constant the rustc
/// hash tables use); spreads low-entropy inputs across the high bits.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-rotate hasher. Not collision-resistant against
/// adversarial keys — do not use for externally controlled input.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" and "ab\0" diverge.
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; plugs into `HashMap` as the third type
/// parameter.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` using the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn distinct_keys_hash_differently() {
        // Not a collision-resistance claim — just a sanity check that the
        // word folding isn't degenerate on typical key shapes.
        let a = hash_of(&42u64);
        let b = hash_of(&43u64);
        assert_ne!(a, b);
        let s1 = hash_of(&b"ab".to_vec());
        let s2 = hash_of(&b"ab\0".to_vec());
        assert_ne!(s1, s2);
    }

    #[test]
    fn hashing_is_deterministic() {
        let key: Vec<u8> = (0..37).collect();
        assert_eq!(hash_of(&key), hash_of(&key));
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<Vec<u8>, u32> = FxHashMap::default();
        for i in 0..100u32 {
            m.insert(vec![i as u8, (i * 7) as u8], i);
        }
        for i in 0..100u32 {
            assert_eq!(m.get(&vec![i as u8, (i * 7) as u8]), Some(&i));
        }
    }
}
