//! Compressed-sparse-row graph storage for the plan-compiled matcher.
//!
//! [`crate::LabeledGraph`] stores adjacency as one `Vec` per vertex — fine
//! for construction and the VF2 reference path, but the plan interpreter
//! ([`crate::plan`]) wants candidate generation by *label*: "all vertices
//! with label `l`" and "neighbors of `v` with label `l`" as contiguous,
//! id-sorted slices it can sorted-merge intersect. [`Csr`] is that layout,
//! built once per graph and immutable afterwards:
//!
//! * `offsets`/`neighbors` — the classic CSR pair. Each vertex's neighbor
//!   slice is sorted by `(neighbor label, neighbor id)`, so the slice for
//!   one label is a contiguous run, itself sorted ascending by id.
//! * `range_offsets`/`label_ranges` — a second CSR level mapping each
//!   vertex to its per-label runs (`(label, start, end)` into `neighbors`,
//!   ascending by label).
//! * `label_index`/`label_vertices` — the global label → vertex index:
//!   for each distinct label, the ascending list of vertices carrying it.
//!
//! Data graphs evolve only at batch boundaries (`D ⊕ ΔD`, §3.1) and are
//! immutable between them, so [`crate::GraphDb`] simply builds a fresh
//! `Csr` per inserted graph and drops it on deletion — "kept in sync" by
//! construction rather than by incremental surgery.

use crate::graph::{LabeledGraph, VertexId};
use crate::labels::LabelId;

/// Immutable CSR view of a [`LabeledGraph`] with per-label adjacency
/// slices. See the module docs for the layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// Vertex labels, indexed by vertex id.
    labels: Vec<LabelId>,
    /// `neighbors[offsets[v] .. offsets[v+1]]` is `v`'s neighbor slice.
    offsets: Vec<u32>,
    /// All neighbor lists, each sorted by `(label, id)`.
    neighbors: Vec<VertexId>,
    /// `label_ranges[range_offsets[v] .. range_offsets[v+1]]` are `v`'s
    /// per-label runs.
    range_offsets: Vec<u32>,
    /// `(label, start, end)` runs into `neighbors`, ascending by label
    /// within each vertex.
    label_ranges: Vec<(LabelId, u32, u32)>,
    /// `(label, start, end)` runs into `label_vertices`, ascending by
    /// label globally.
    label_index: Vec<(LabelId, u32, u32)>,
    /// Vertices grouped by label; each group ascending by id.
    label_vertices: Vec<VertexId>,
    /// Number of (undirected) edges.
    edge_count: usize,
}

impl Csr {
    /// Builds the CSR representation of `g`.
    pub fn from_graph(g: &LabeledGraph) -> Self {
        let n = g.vertex_count();
        let labels: Vec<LabelId> = g.labels().to_vec();

        let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut neighbors: Vec<VertexId> = Vec::with_capacity(2 * g.edge_count());
        let mut range_offsets: Vec<u32> = Vec::with_capacity(n + 1);
        range_offsets.push(0);
        let mut label_ranges: Vec<(LabelId, u32, u32)> = Vec::new();

        for v in g.vertices() {
            let start = neighbors.len();
            neighbors.extend_from_slice(g.neighbors(v));
            let slice = &mut neighbors[start..];
            slice.sort_unstable_by_key(|&w| (labels[w as usize], w));
            // Delimit the contiguous per-label runs just produced.
            let mut run_start = start;
            while run_start < neighbors.len() {
                let label = labels[neighbors[run_start] as usize];
                let mut run_end = run_start + 1;
                while run_end < neighbors.len() && labels[neighbors[run_end] as usize] == label {
                    run_end += 1;
                }
                label_ranges.push((label, run_start as u32, run_end as u32));
                run_start = run_end;
            }
            offsets.push(neighbors.len() as u32);
            range_offsets.push(label_ranges.len() as u32);
        }

        // Global label → vertices index: bucket by label, ids stay sorted
        // because vertices are visited in ascending order.
        let mut by_label: Vec<(LabelId, VertexId)> = labels
            .iter()
            .enumerate()
            .map(|(v, &l)| (l, v as VertexId))
            .collect();
        by_label.sort_by_key(|&(l, v)| (l, v));
        let mut label_index: Vec<(LabelId, u32, u32)> = Vec::new();
        let mut label_vertices: Vec<VertexId> = Vec::with_capacity(n);
        let mut i = 0;
        while i < by_label.len() {
            let label = by_label[i].0;
            let start = label_vertices.len() as u32;
            while i < by_label.len() && by_label[i].0 == label {
                label_vertices.push(by_label[i].1);
                i += 1;
            }
            label_index.push((label, start, label_vertices.len() as u32));
        }

        Csr {
            labels,
            offsets,
            neighbors,
            range_offsets,
            label_ranges,
            label_index,
            label_vertices,
            edge_count: g.edge_count(),
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The label of vertex `v`.
    pub fn label(&self, v: VertexId) -> LabelId {
        self.labels[v as usize]
    }

    /// The degree of vertex `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// All neighbors of `v`, sorted by `(label, id)`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// The neighbors of `v` carrying `label`, ascending by id (empty when
    /// none do).
    pub fn neighbors_with_label(&self, v: VertexId, label: LabelId) -> &[VertexId] {
        let ranges = &self.label_ranges
            [self.range_offsets[v as usize] as usize..self.range_offsets[v as usize + 1] as usize];
        match ranges.binary_search_by_key(&label, |&(l, _, _)| l) {
            Ok(i) => {
                let (_, start, end) = ranges[i];
                &self.neighbors[start as usize..end as usize]
            }
            Err(_) => &[],
        }
    }

    /// All vertices carrying `label`, ascending by id (empty when none do).
    pub fn vertices_with_label(&self, label: LabelId) -> &[VertexId] {
        match self
            .label_index
            .binary_search_by_key(&label, |&(l, _, _)| l)
        {
            Ok(i) => {
                let (_, start, end) = self.label_index[i];
                &self.label_vertices[start as usize..end as usize]
            }
            Err(_) => &[],
        }
    }

    /// The distinct labels present, ascending, with their vertex counts.
    pub fn label_counts(&self) -> impl Iterator<Item = (LabelId, usize)> + '_ {
        self.label_index
            .iter()
            .map(|&(l, start, end)| (l, (end - start) as usize))
    }

    /// Whether the edge `{u, v}` is present (binary search within `u`'s
    /// per-label run for `v`'s label).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u as usize >= self.labels.len() || v as usize >= self.labels.len() {
            return false;
        }
        self.neighbors_with_label(u, self.labels[v as usize])
            .binary_search(&v)
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn sample() -> LabeledGraph {
        // Labels: 0:a 1:b 2:a 3:c 4:a — mixed degrees, duplicate labels.
        GraphBuilder::new()
            .vertices(&[0, 1, 0, 2, 0])
            .edge(0, 1)
            .edge(0, 2)
            .edge(0, 4)
            .edge(1, 2)
            .edge(2, 3)
            .build()
    }

    #[test]
    fn round_trips_adjacency_lists() {
        let g = sample();
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.vertex_count(), g.vertex_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        for v in g.vertices() {
            assert_eq!(csr.label(v), g.label(v));
            assert_eq!(csr.degree(v), g.degree(v));
            let mut want: Vec<VertexId> = g.neighbors(v).to_vec();
            want.sort_unstable();
            let mut got: Vec<VertexId> = csr.neighbors(v).to_vec();
            got.sort_unstable();
            assert_eq!(got, want, "neighbor set of {v}");
            for w in g.vertices() {
                assert_eq!(csr.has_edge(v, w), g.has_edge(v, w), "edge ({v},{w})");
            }
        }
    }

    #[test]
    fn neighbor_slices_are_label_grouped_and_sorted() {
        let g = sample();
        let csr = Csr::from_graph(&g);
        for v in g.vertices() {
            let ns = csr.neighbors(v);
            // Sorted by (label, id) ⇒ labels non-decreasing, ids ascending
            // within a label run.
            for w in ns.windows(2) {
                let (a, b) = (w[0], w[1]);
                assert!(
                    (csr.label(a), a) < (csr.label(b), b),
                    "neighbors of {v} not (label, id)-sorted"
                );
            }
            // Per-label slices partition the full slice.
            let mut reassembled: Vec<VertexId> = Vec::new();
            for (l, _) in csr.label_counts() {
                let slice = csr.neighbors_with_label(v, l);
                assert!(slice.windows(2).all(|w| w[0] < w[1]), "label slice sorted");
                assert!(slice.iter().all(|&w| csr.label(w) == l));
                reassembled.extend_from_slice(slice);
            }
            assert_eq!(reassembled.len(), ns.len());
        }
    }

    #[test]
    fn label_index_lists_every_vertex_once() {
        let g = sample();
        let csr = Csr::from_graph(&g);
        let mut seen: Vec<VertexId> = Vec::new();
        for (l, count) in csr.label_counts() {
            let vs = csr.vertices_with_label(l);
            assert_eq!(vs.len(), count);
            assert!(vs.windows(2).all(|w| w[0] < w[1]), "vertex list sorted");
            assert!(vs.iter().all(|&v| csr.label(v) == l));
            seen.extend_from_slice(vs);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..g.vertex_count() as VertexId).collect::<Vec<_>>());
        assert!(csr.vertices_with_label(999).is_empty());
    }

    #[test]
    fn empty_and_isolated_graphs() {
        let empty = Csr::from_graph(&LabeledGraph::new());
        assert_eq!(empty.vertex_count(), 0);
        assert_eq!(empty.edge_count(), 0);
        assert!(empty.vertices_with_label(0).is_empty());

        let isolated = GraphBuilder::new().vertices(&[3, 3, 5]).build();
        let csr = Csr::from_graph(&isolated);
        assert_eq!(csr.vertices_with_label(3), &[0, 1]);
        assert_eq!(csr.vertices_with_label(5), &[2]);
        assert!(csr.neighbors(0).is_empty());
        assert!(csr.neighbors_with_label(0, 3).is_empty());
        assert!(!csr.has_edge(0, 1));
    }
}
