//! Graphlet counting and graphlet frequency distributions (§3.4).
//!
//! MIDAS classifies a batch update as *major* or *minor* by the Euclidean
//! distance between the graphlet frequency distributions `ψ_D` and
//! `ψ_{D⊕ΔD}` (Pržulj \[31\]). We count all connected 3-node and 4-node
//! graphlets — the paper observes that size-3 canned patterns *are* 3-/4-node
//! graphlets and larger patterns are grown from them (Lemma 3.5).
//!
//! Counting uses the ESU (FANMOD) enumeration scheme, which visits every
//! connected induced k-vertex subgraph exactly once; molecule-sized graphs
//! make this cheap and exact.

use crate::graph::{LabeledGraph, VertexId};

/// The eight connected graphlets on 3 and 4 vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum GraphletKind {
    /// 3 vertices, 2 edges: the path `P3`.
    Path3 = 0,
    /// 3 vertices, 3 edges: the triangle `K3`.
    Triangle = 1,
    /// 4 vertices, 3 edges, max degree 2: the path `P4`.
    Path4 = 2,
    /// 4 vertices, 3 edges, max degree 3: the star (claw) `S4`.
    Star4 = 3,
    /// 4 vertices, 4 edges, all degree 2: the cycle `C4`.
    Cycle4 = 4,
    /// 4 vertices, 4 edges with a triangle: the tailed triangle (paw).
    TailedTriangle = 5,
    /// 4 vertices, 5 edges: the diamond (chordal 4-cycle).
    Diamond = 6,
    /// 4 vertices, 6 edges: the clique `K4`.
    Clique4 = 7,
}

impl GraphletKind {
    /// All kinds, in index order.
    pub const ALL: [GraphletKind; 8] = [
        GraphletKind::Path3,
        GraphletKind::Triangle,
        GraphletKind::Path4,
        GraphletKind::Star4,
        GraphletKind::Cycle4,
        GraphletKind::TailedTriangle,
        GraphletKind::Diamond,
        GraphletKind::Clique4,
    ];

    /// Number of vertices in this graphlet.
    pub fn vertex_count(self) -> usize {
        match self {
            GraphletKind::Path3 | GraphletKind::Triangle => 3,
            _ => 4,
        }
    }
}

/// Raw graphlet occurrence counts for one graph (or one database).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GraphletCounts {
    counts: [u64; 8],
}

impl GraphletCounts {
    /// The count for `kind`.
    pub fn get(&self, kind: GraphletKind) -> u64 {
        self.counts[kind as usize]
    }

    /// All eight counts in [`GraphletKind::ALL`] order.
    pub fn as_array(&self) -> [u64; 8] {
        self.counts
    }

    /// Sum of all counts.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Element-wise addition (e.g. accumulating a database total).
    pub fn add(&mut self, other: &GraphletCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
    }

    /// Element-wise saturating subtraction (e.g. removing a deleted graph).
    pub fn sub(&mut self, other: &GraphletCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a = a.saturating_sub(b);
        }
    }

    /// Normalizes into a frequency distribution `ψ`. The zero vector stays
    /// zero (an empty database has an empty distribution).
    pub fn distribution(&self) -> GraphletDistribution {
        let total = self.total();
        let mut freqs = [0.0f64; 8];
        if total > 0 {
            for (f, &c) in freqs.iter_mut().zip(self.counts.iter()) {
                *f = c as f64 / total as f64;
            }
        }
        GraphletDistribution { freqs }
    }
}

/// A graphlet frequency distribution `ψ` (§3.4): normalized counts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GraphletDistribution {
    freqs: [f64; 8],
}

impl GraphletDistribution {
    /// Frequency of `kind`.
    pub fn get(&self, kind: GraphletKind) -> f64 {
        self.freqs[kind as usize]
    }

    /// All eight frequencies.
    pub fn as_array(&self) -> [f64; 8] {
        self.freqs
    }

    /// Rebuilds a distribution from [`GraphletDistribution::as_array`]
    /// output — the wire-format constructor: the serving daemon ships the
    /// eight frequencies in its snapshot payloads and HTTP clients
    /// reconstruct the distribution to compute drift-at-read-time.
    pub fn from_freqs(freqs: [f64; 8]) -> Self {
        GraphletDistribution { freqs }
    }

    /// Euclidean distance `dist(ψ_D, ψ_{D⊕ΔD})` used by the selective
    /// maintenance test (§3.4). The paper notes alternative distances do not
    /// change behaviour significantly.
    pub fn euclidean_distance(&self, other: &GraphletDistribution) -> f64 {
        self.freqs
            .iter()
            .zip(other.freqs)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

/// Classifies a connected induced subgraph on 3 vertices by edge count.
fn classify3(edges: usize) -> GraphletKind {
    match edges {
        2 => GraphletKind::Path3,
        3 => GraphletKind::Triangle,
        _ => unreachable!("connected 3-vertex graph has 2 or 3 edges"),
    }
}

/// Classifies a connected induced subgraph on 4 vertices by edge count and
/// maximum degree.
fn classify4(edges: usize, max_degree: usize) -> GraphletKind {
    match (edges, max_degree) {
        (3, 2) => GraphletKind::Path4,
        (3, 3) => GraphletKind::Star4,
        (4, 2) => GraphletKind::Cycle4,
        (4, 3) => GraphletKind::TailedTriangle,
        (5, _) => GraphletKind::Diamond,
        (6, _) => GraphletKind::Clique4,
        _ => unreachable!("impossible connected 4-vertex signature ({edges}, {max_degree})"),
    }
}

/// Counts all connected 3- and 4-node graphlets of `g` exactly, via ESU.
pub fn count_graphlets(g: &LabeledGraph) -> GraphletCounts {
    let mut counts = GraphletCounts::default();
    let n = g.vertex_count();
    if n < 3 {
        return counts;
    }
    // ESU: for each root v, extend subgraphs using only vertices > v that
    // neighbor the current subgraph, tracking the exclusive extension set.
    let mut subgraph: Vec<VertexId> = Vec::with_capacity(4);
    for v in 0..n as VertexId {
        subgraph.push(v);
        let ext: Vec<VertexId> = g.neighbors(v).iter().copied().filter(|&w| w > v).collect();
        extend(g, &mut subgraph, &ext, v, &mut counts);
        subgraph.pop();
    }
    counts
}

fn record(g: &LabeledGraph, subgraph: &[VertexId], counts: &mut GraphletCounts) {
    let k = subgraph.len();
    let mut edges = 0;
    let mut max_degree = 0;
    for (i, &u) in subgraph.iter().enumerate() {
        let mut d = 0;
        for (j, &w) in subgraph.iter().enumerate() {
            if i != j && g.has_edge(u, w) {
                d += 1;
            }
        }
        max_degree = max_degree.max(d);
        edges += d;
    }
    edges /= 2;
    let kind = if k == 3 {
        classify3(edges)
    } else {
        classify4(edges, max_degree)
    };
    counts.counts[kind as usize] += 1;
}

fn extend(
    g: &LabeledGraph,
    subgraph: &mut Vec<VertexId>,
    ext: &[VertexId],
    root: VertexId,
    counts: &mut GraphletCounts,
) {
    if subgraph.len() >= 3 {
        record(g, subgraph, counts);
    }
    if subgraph.len() == 4 {
        return;
    }
    // When |subgraph| == 2 we only record at sizes 3 and 4, so keep going.
    for (idx, &w) in ext.iter().enumerate() {
        // New exclusive extension: remaining ext members, plus neighbors of w
        // that are > root and not adjacent to any current subgraph vertex.
        let mut next_ext: Vec<VertexId> = ext[idx + 1..].to_vec();
        for &u in g.neighbors(w) {
            if u > root
                && u != w
                && !subgraph.contains(&u)
                && !ext.contains(&u)
                && !subgraph.iter().any(|&s| g.has_edge(s, u))
            {
                next_ext.push(u);
            }
        }
        subgraph.push(w);
        extend(g, subgraph, &next_ext, root, counts);
        subgraph.pop();
    }
}

/// Brute-force counter for testing: enumerates all 3- and 4-vertex subsets.
pub fn count_graphlets_brute_force(g: &LabeledGraph) -> GraphletCounts {
    let mut counts = GraphletCounts::default();
    let n = g.vertex_count() as VertexId;
    let connected = |vs: &[VertexId]| g.induced_subgraph(vs).is_connected();
    for a in 0..n {
        for b in a + 1..n {
            for c in b + 1..n {
                if connected(&[a, b, c]) {
                    record(g, &[a, b, c], &mut counts);
                }
                for d in c + 1..n {
                    if connected(&[a, b, c, d]) {
                        record(g, &[a, b, c, d], &mut counts);
                    }
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn path(n: usize) -> LabeledGraph {
        let labels = vec![0u32; n];
        let vs: Vec<u32> = (0..n as u32).collect();
        GraphBuilder::new().vertices(&labels).path(&vs).build()
    }

    fn clique(n: usize) -> LabeledGraph {
        let mut g = LabeledGraph::new();
        for _ in 0..n {
            g.add_vertex(0);
        }
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                g.add_edge(u, v);
            }
        }
        g
    }

    fn cycle(n: usize) -> LabeledGraph {
        let mut g = path(n);
        g.add_edge(0, n as u32 - 1);
        g
    }

    #[test]
    fn triangle_counts() {
        let c = count_graphlets(&clique(3));
        assert_eq!(c.get(GraphletKind::Triangle), 1);
        assert_eq!(c.get(GraphletKind::Path3), 0);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn path4_counts() {
        let c = count_graphlets(&path(4));
        assert_eq!(c.get(GraphletKind::Path3), 2);
        assert_eq!(c.get(GraphletKind::Path4), 1);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn star_counts() {
        // K1,3: one star, three P3s.
        let star = GraphBuilder::new()
            .vertices(&[0, 0, 0, 0])
            .edge(0, 1)
            .edge(0, 2)
            .edge(0, 3)
            .build();
        let c = count_graphlets(&star);
        assert_eq!(c.get(GraphletKind::Star4), 1);
        assert_eq!(c.get(GraphletKind::Path3), 3);
        assert_eq!(c.get(GraphletKind::Path4), 0);
    }

    #[test]
    fn cycle4_counts() {
        let c = count_graphlets(&cycle(4));
        assert_eq!(c.get(GraphletKind::Cycle4), 1);
        assert_eq!(c.get(GraphletKind::Path3), 4);
        // Graphlets are induced: the only 4-vertex subset of C4 induces the
        // cycle itself, so there is no induced P4.
        assert_eq!(c.get(GraphletKind::Path4), 0);
    }

    #[test]
    fn clique4_counts() {
        let c = count_graphlets(&clique(4));
        assert_eq!(c.get(GraphletKind::Clique4), 1);
        assert_eq!(c.get(GraphletKind::Triangle), 4);
        assert_eq!(c.get(GraphletKind::Diamond), 0);
        // Within K4 every 4-set is the clique itself; no sparser 4-graphlet.
        assert_eq!(c.get(GraphletKind::Cycle4), 0);
    }

    #[test]
    fn diamond_counts() {
        // K4 minus one edge.
        let mut g = clique(4);
        let g2 = {
            let mut h = LabeledGraph::new();
            for _ in 0..4 {
                h.add_vertex(0);
            }
            for &(u, v) in g.edges() {
                if (u, v) != (2, 3) {
                    h.add_edge(u, v);
                }
            }
            h
        };
        g = g2;
        let c = count_graphlets(&g);
        assert_eq!(c.get(GraphletKind::Diamond), 1);
        assert_eq!(c.get(GraphletKind::Triangle), 2);
    }

    #[test]
    fn tailed_triangle_counts() {
        let paw = GraphBuilder::new()
            .vertices(&[0, 0, 0, 0])
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .edge(2, 3)
            .build();
        let c = count_graphlets(&paw);
        assert_eq!(c.get(GraphletKind::TailedTriangle), 1);
        assert_eq!(c.get(GraphletKind::Triangle), 1);
        assert_eq!(c.get(GraphletKind::Path3), 2);
    }

    #[test]
    fn esu_matches_brute_force() {
        let samples = vec![
            path(6),
            cycle(5),
            clique(5),
            GraphBuilder::new()
                .vertices(&[0; 7])
                .path(&[0, 1, 2, 3, 4])
                .edge(2, 5)
                .edge(5, 6)
                .edge(1, 4)
                .build(),
        ];
        for g in &samples {
            assert_eq!(
                count_graphlets(g),
                count_graphlets_brute_force(g),
                "ESU mismatch on {g:?}"
            );
        }
    }

    #[test]
    fn small_graphs_have_no_graphlets() {
        assert_eq!(count_graphlets(&path(2)).total(), 0);
        assert_eq!(count_graphlets(&LabeledGraph::new()).total(), 0);
    }

    #[test]
    fn distribution_normalizes() {
        let c = count_graphlets(&path(4));
        let d = c.distribution();
        let sum: f64 = d.as_array().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((d.get(GraphletKind::Path3) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_distribution_for_empty() {
        let d = GraphletCounts::default().distribution();
        assert_eq!(d.as_array(), [0.0; 8]);
    }

    #[test]
    fn euclidean_distance_properties() {
        let a = count_graphlets(&path(5)).distribution();
        let b = count_graphlets(&clique(4)).distribution();
        assert_eq!(a.euclidean_distance(&a), 0.0);
        assert!((a.euclidean_distance(&b) - b.euclidean_distance(&a)).abs() < 1e-15);
        assert!(a.euclidean_distance(&b) > 0.0);
    }

    #[test]
    fn counts_add_and_sub() {
        let mut total = GraphletCounts::default();
        let a = count_graphlets(&path(5));
        let b = count_graphlets(&clique(4));
        total.add(&a);
        total.add(&b);
        assert_eq!(total.total(), a.total() + b.total());
        total.sub(&b);
        assert_eq!(total, a);
    }
}
