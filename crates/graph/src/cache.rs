//! Memoized subgraph-isomorphism counts keyed by `(pattern, data graph)`.
//!
//! The TG/TP matrices (§5.1), scov coverage (§2.2) and the swap/quality
//! machinery all keep asking the same question — "how many embeddings of
//! pattern `p` does graph `G` contain (capped)?" — against a database that
//! changes only at batch boundaries. [`EmbeddingCache`] memoizes those
//! answers so that a batch touching 1% of the database recomputes ~1% of a
//! matrix, and a rebuilt index reuses every surviving cell.
//!
//! # Keying
//!
//! Entries are keyed **graph-first**: a sharded map `GraphId → (signature,
//! pattern-key → count)`. The inner key is the pattern's [`CanonicalCode`],
//! so isomorphic patterns — common, since candidates are generated from
//! random walks on many CSGs — share one entry per graph. Graph-first
//! nesting makes invalidation O(1) per touched graph:
//! [`EmbeddingCache::invalidate_graph`] simply drops the graph's inner map.
//!
//! # Cap soundness
//!
//! Counts are saturating ([`count_embeddings`]'s `cap`). Each entry stores
//! the cap it was computed at. A stored value serves a request when it is
//! *exact* (`count < stored_cap`, so `min(count, cap)` is the true answer)
//! or *saturated at or above the requested cap* (`cap ≤ stored_cap ≤ count`
//! implies the answer is exactly `cap`). Otherwise the entry is recomputed
//! at the larger cap and upgraded in place.
//!
//! # Invalidation contract
//!
//! The cache never observes the database; callers must call
//! [`EmbeddingCache::invalidate_graph`] for every inserted *and* deleted
//! graph id when applying a batch (inserted ids are fresh and can't collide
//! with stale entries because [`crate::db::GraphDb`] never reuses ids, but
//! invalidating both keeps the contract independent of that detail).

use crate::canonical::{canonical_code, CanonicalCode};
use crate::csr::Csr;
use crate::db::GraphId;
use crate::fasthash::FxHashMap;
use crate::graph::LabeledGraph;
use crate::isomorphism::{count_embeddings, GraphSignature};
use crate::plan::{self, MatcherKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Number of independent lock shards. Power of two, sized so a dozen worker
/// threads rarely contend on one lock.
const SHARDS: usize = 64;

/// A pattern prepared for cached matching: the graph plus its canonical key
/// and quick-reject signature, each computed once.
#[derive(Debug, Clone)]
pub struct CachedPattern {
    graph: Arc<LabeledGraph>,
    key: CanonicalCode,
    sig: GraphSignature,
    fingerprint: u64,
    /// Pattern-local memo of the compiled plan, so the per-probe cost is
    /// one atomic load instead of a global-cache round trip.
    plan: std::sync::OnceLock<Arc<crate::plan::MatchPlan>>,
}

impl CachedPattern {
    /// Prepares `pattern` (canonical code + signature).
    pub fn new(pattern: &LabeledGraph) -> Self {
        let key = canonical_code(pattern);
        let fingerprint = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            key.hash(&mut h);
            h.finish()
        };
        CachedPattern {
            graph: Arc::new(pattern.clone()),
            key,
            sig: GraphSignature::of(pattern),
            fingerprint,
            plan: std::sync::OnceLock::new(),
        }
    }

    /// A stable 64-bit digest of the canonical key — equal for isomorphic
    /// patterns, compact enough to tag telemetry exemplars with.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The underlying pattern graph.
    pub fn graph(&self) -> &LabeledGraph {
        &self.graph
    }

    /// The canonical key shared by all patterns isomorphic to this one.
    pub fn key(&self) -> &CanonicalCode {
        &self.key
    }

    /// The pattern's quick-reject signature.
    pub fn signature(&self) -> &GraphSignature {
        &self.sig
    }

    /// The pattern's compiled match plan, compiled at most once per
    /// canonical class per process (via [`plan::cached_plan`]) and then
    /// pinned in this instance, so repeat probes skip the global cache.
    pub fn plan(&self) -> std::sync::Arc<crate::plan::MatchPlan> {
        self.plan_ref().clone()
    }

    /// Borrowing twin of [`Self::plan`] for hot loops — no refcount
    /// traffic.
    pub fn plan_ref(&self) -> &std::sync::Arc<crate::plan::MatchPlan> {
        self.plan
            .get_or_init(|| plan::cached_plan(&self.key, &self.graph))
    }
}

/// One stored answer: the cap it was computed at and the (saturating) count.
#[derive(Debug, Clone, Copy)]
struct StoredCount {
    cap: u64,
    count: u64,
}

impl StoredCount {
    /// The answer for a request at `cap`, when this entry can serve it.
    fn serve(&self, cap: u64) -> Option<u64> {
        if self.count < self.cap {
            // Exact count: valid at any cap.
            Some(self.count.min(cap))
        } else if cap <= self.cap {
            // Saturated at stored cap ≥ requested cap: true count ≥ cap.
            Some(cap)
        } else {
            None
        }
    }
}

/// Everything memoized about one data graph.
#[derive(Debug, Default)]
struct GraphEntry {
    /// Lazily computed quick-reject signature of the graph.
    sig: Option<Arc<GraphSignature>>,
    /// Lazily built CSR view of the graph, for the plan-compiled matcher.
    /// Dropped with the entry on invalidation, like the signature.
    csr: Option<Arc<Csr>>,
    /// Capped embedding counts per pattern, as `(fingerprint, key, count)`
    /// rows. A flat vector beats a per-graph hash map here: the feature
    /// set probed against one graph is small (a TG-matrix row, typically
    /// tens of patterns), a probe sweep touches a couple of contiguous
    /// cache lines instead of scattered buckets, and the 64-bit
    /// fingerprint prescreen makes full key compares rare.
    counts: Vec<(u64, CanonicalCode, StoredCount)>,
}

impl GraphEntry {
    /// The stored count for `key`, if any.
    fn find(&self, fingerprint: u64, key: &CanonicalCode) -> Option<&StoredCount> {
        self.counts
            .iter()
            .find(|(fp, k, _)| *fp == fingerprint && k == key)
            .map(|(_, _, stored)| stored)
    }

    /// Inserts `stored` for `key`, keeping whichever of the racing
    /// computations knows more (the higher cap). Returns `true` when a
    /// fresh row was added (the insertion-accounting event).
    fn store(&mut self, fingerprint: u64, key: &CanonicalCode, stored: StoredCount) -> bool {
        match self
            .counts
            .iter_mut()
            .find(|(fp, k, _)| *fp == fingerprint && k == key)
        {
            Some((_, _, existing)) => {
                if stored.cap > existing.cap {
                    *existing = stored;
                }
                false
            }
            None => {
                self.counts.push((fingerprint, key.clone(), stored));
                true
            }
        }
    }
}

/// One lock shard: the memoized entries plus a shard-local invalidation
/// epoch. The epoch closes the stale-hit window: a compute that started
/// before an [`EmbeddingCache::invalidate_graph`] observed the pre-bump
/// epoch and is refused insertion afterwards, so a graph removed and
/// re-added under a reused [`GraphId`] can never be shadowed by counts of
/// the old graph.
#[derive(Debug, Default)]
struct Shard {
    map: FxHashMap<GraphId, GraphEntry>,
    generation: u64,
}

/// Cache accounting, for tests, bench reporting and telemetry snapshots.
///
/// The same four event streams also feed the global `midas-obs` counters
/// `cache.hits` / `cache.misses` / `cache.insertions` /
/// `cache.invalidations` when telemetry is enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from a stored entry (including prefilter zeros).
    pub hits: u64,
    /// Requests that ran a VF2 search (or were rejected by the prefilter).
    pub misses: u64,
    /// Fresh `(pattern, graph)` entries stored (cap upgrades of an existing
    /// entry do not count).
    pub insertions: u64,
    /// Graphs whose memoized entries were dropped by
    /// [`EmbeddingCache::invalidate_graph`] / [`EmbeddingCache::clear`]
    /// (only graphs that actually had an entry count).
    pub invalidations: u64,
    /// Invalidation epoch: bumped on **every** [`invalidate_graph`] /
    /// [`clear`] call, whether or not anything was stored. Readers can
    /// compare generations to detect that answers may have changed.
    ///
    /// [`invalidate_graph`]: EmbeddingCache::invalidate_graph
    /// [`clear`]: EmbeddingCache::clear
    pub generation: u64,
}

impl CacheStats {
    /// Fraction of requests served from the memo, in `[0, 1]` (0 when no
    /// requests were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, thread-safe memo of capped embedding counts.
///
/// Cheap to share (`Arc<EmbeddingCache>`), safe to hit from the scoped
/// worker threads of [`crate::exec`].
#[derive(Debug)]
pub struct EmbeddingCache {
    shards: Vec<RwLock<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    invalidations: AtomicU64,
    generation: AtomicU64,
}

impl Default for EmbeddingCache {
    fn default() -> Self {
        Self::new()
    }
}

impl EmbeddingCache {
    /// An empty cache.
    pub fn new() -> Self {
        EmbeddingCache {
            shards: (0..SHARDS).map(|_| RwLock::new(Shard::default())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        }
    }

    fn record_hits(&self, n: u64) {
        self.hits.fetch_add(n, Ordering::Relaxed);
        midas_obs::counter_add!("cache.hits", n);
    }

    fn record_misses(&self, n: u64) {
        self.misses.fetch_add(n, Ordering::Relaxed);
        midas_obs::counter_add!("cache.misses", n);
    }

    fn record_insertions(&self, n: u64) {
        self.insertions.fetch_add(n, Ordering::Relaxed);
        midas_obs::counter_add!("cache.insertions", n);
    }

    fn record_invalidations(&self, n: u64) {
        self.invalidations.fetch_add(n, Ordering::Relaxed);
        midas_obs::counter_add!("cache.invalidations", n);
    }

    fn shard(&self, id: GraphId) -> &RwLock<Shard> {
        &self.shards[(id.0 as usize) % SHARDS]
    }

    /// Read-locks `id`'s shard, recovering from poison: the data under the
    /// lock is only ever mutated through short, panic-free critical
    /// sections, so a poisoned guard (a worker that panicked elsewhere
    /// while holding it) still protects a consistent map.
    fn read_shard(&self, id: GraphId) -> RwLockReadGuard<'_, Shard> {
        self.shard(id)
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Write-locks `id`'s shard, recovering from poison (see
    /// [`Self::read_shard`]).
    fn write_shard(&self, id: GraphId) -> RwLockWriteGuard<'_, Shard> {
        self.shard(id)
            .write()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Counts embeddings of `pattern` in `(id, target)`, saturating at
    /// `cap`, consulting and updating the memo. This is the VF2 reference
    /// route; [`Self::count_embeddings_with`] selects the matcher.
    pub fn count_embeddings(
        &self,
        pattern: &CachedPattern,
        id: GraphId,
        target: &LabeledGraph,
        cap: u64,
    ) -> u64 {
        self.count_embeddings_impl(pattern, id, target, cap, |p, t, c| {
            count_embeddings(p, t, c)
        })
    }

    /// [`Self::count_embeddings`] routed through the selected matcher. The
    /// plan route memoizes the target's [`Csr`] in the graph entry next to
    /// its signature, so a cold matrix column builds each view once.
    pub fn count_embeddings_with(
        &self,
        matcher: MatcherKind,
        pattern: &CachedPattern,
        id: GraphId,
        target: &LabeledGraph,
        cap: u64,
    ) -> u64 {
        match matcher {
            MatcherKind::Vf2 => self.count_embeddings(pattern, id, target, cap),
            MatcherKind::Plan => self.count_embeddings_plan(pattern, id, target, cap),
        }
    }

    /// The plan-matcher body of [`Self::count_embeddings_with`]: same memo
    /// protocol as the VF2 seam (stored-entry fast path, epoch-gated
    /// insertion), but the miss computation runs the compiled plan over
    /// the memoized CSR view. No [`GraphSignature`] is built on this
    /// route — the plan interpreter's own size/label-demand prefilter
    /// costs two array compares against the CSR label index, cheaper than
    /// building and storing the signature it would replace.
    fn count_embeddings_plan(
        &self,
        pattern: &CachedPattern,
        id: GraphId,
        target: &LabeledGraph,
        cap: u64,
    ) -> u64 {
        if cap == 0 {
            return 0;
        }
        let mut target_csr: Option<Arc<Csr>> = None;
        let observed_generation;
        {
            let shard = self.read_shard(id);
            observed_generation = shard.generation;
            if let Some(entry) = shard.map.get(&id) {
                if let Some(stored) = entry.find(pattern.fingerprint, &pattern.key) {
                    if let Some(answer) = stored.serve(cap) {
                        self.record_hits(1);
                        return answer;
                    }
                }
                target_csr = entry.csr.clone();
            }
        }
        let csr = target_csr
            .get_or_insert_with(|| Arc::new(Csr::from_graph(target)))
            .clone();
        let stored = {
            let _ctx = midas_obs::enabled()
                .then(|| midas_obs::exemplar::with_context(pattern.fingerprint, id.0));
            StoredCount {
                cap,
                count: pattern.plan_ref().count_embeddings(&csr, cap),
            }
        };
        self.record_misses(1);
        let answer = stored.serve(cap).expect("fresh entry serves its own cap");
        let mut shard = self.write_shard(id);
        if shard.generation != observed_generation {
            // Invalidated mid-compute: serve, don't memoize (see
            // `count_embeddings_impl`).
            return answer;
        }
        let entry = shard.map.entry(id).or_default();
        if let Some(csr) = target_csr {
            entry.csr.get_or_insert(csr);
        }
        if entry.store(pattern.fingerprint, &pattern.key, stored) {
            self.record_insertions(1);
        }
        answer
    }

    /// The body of [`Self::count_embeddings`] with the VF2 search
    /// injectable, so tests can interleave an invalidation with a running
    /// computation deterministically.
    fn count_embeddings_impl(
        &self,
        pattern: &CachedPattern,
        id: GraphId,
        target: &LabeledGraph,
        cap: u64,
        compute: impl FnOnce(&LabeledGraph, &LabeledGraph, u64) -> u64,
    ) -> u64 {
        if cap == 0 {
            return 0;
        }
        // Fast path: stored entry (and memoized target signature). The
        // shard epoch observed here gates the later insertion.
        let mut target_sig: Option<Arc<GraphSignature>> = None;
        let observed_generation;
        {
            let shard = self.read_shard(id);
            observed_generation = shard.generation;
            if let Some(entry) = shard.map.get(&id) {
                if let Some(stored) = entry.find(pattern.fingerprint, &pattern.key) {
                    if let Some(answer) = stored.serve(cap) {
                        self.record_hits(1);
                        return answer;
                    }
                }
                target_sig = entry.sig.clone();
            }
        }
        let target_sig = target_sig.unwrap_or_else(|| Arc::new(GraphSignature::of(target)));
        let stored = if !pattern.sig.may_embed_in(&target_sig) {
            // Prefilter proof of zero: exact at any cap.
            midas_obs::counter_add!("vf2.prefilter_rejects", 1);
            StoredCount {
                cap: u64::MAX,
                count: 0,
            }
        } else {
            // Tag the VF2 run so tail exemplars attribute to this
            // (pattern, graph); the guard unwinds the thread-local tag.
            let _ctx = midas_obs::enabled()
                .then(|| midas_obs::exemplar::with_context(pattern.fingerprint, id.0));
            StoredCount {
                cap,
                count: compute(&pattern.graph, target, cap),
            }
        };
        self.record_misses(1);
        let answer = stored.serve(cap).expect("fresh entry serves its own cap");
        let mut shard = self.write_shard(id);
        if shard.generation != observed_generation {
            // The graph was invalidated (and possibly re-added under the
            // same id) while we were computing: the answer is still correct
            // for the caller's `target`, but memoizing it could shadow the
            // re-added graph with stale counts. Skip the insert.
            return answer;
        }
        let entry = shard.map.entry(id).or_default();
        entry.sig.get_or_insert(target_sig);
        if entry.store(pattern.fingerprint, &pattern.key, stored) {
            self.record_insertions(1);
        }
        answer
    }

    /// Counts embeddings of every pattern in `(id, target)` in one pass:
    /// a single read-lock sweep serves all memoized answers, the matcher
    /// runs only for the gaps, and a single write lock stores the fresh
    /// entries. Equivalent to (but cheaper than) one
    /// [`Self::count_embeddings`] call per pattern — this is the inner
    /// loop of a matrix-column build. The VF2 reference route; see
    /// [`Self::count_embeddings_many_with`].
    pub fn count_embeddings_many(
        &self,
        patterns: &[CachedPattern],
        id: GraphId,
        target: &LabeledGraph,
        cap: u64,
    ) -> Vec<u64> {
        self.count_embeddings_many_with(MatcherKind::Vf2, patterns, id, target, cap)
    }

    /// [`Self::count_embeddings_many`] routed through the selected
    /// matcher. Under [`MatcherKind::Plan`] the target's CSR view is built
    /// (or fetched from the memo) once for the whole batch, and each gap
    /// runs its canonical-class plan over it.
    pub fn count_embeddings_many_with(
        &self,
        matcher: MatcherKind,
        patterns: &[CachedPattern],
        id: GraphId,
        target: &LabeledGraph,
        cap: u64,
    ) -> Vec<u64> {
        if cap == 0 {
            return vec![0; patterns.len()];
        }
        let mut out: Vec<Option<u64>> = vec![None; patterns.len()];
        let mut target_sig: Option<Arc<GraphSignature>>;
        let mut target_csr: Option<Arc<Csr>>;
        let mut hits = 0u64;
        let observed_generation;
        {
            let shard = self.read_shard(id);
            observed_generation = shard.generation;
            let Some(entry) = shard.map.get(&id) else {
                // Never-seen graph: every pattern is a miss, so skip the
                // hit bookkeeping entirely (the bootstrap hot path).
                drop(shard);
                return self.count_many_all_cold(
                    matcher,
                    patterns,
                    id,
                    target,
                    cap,
                    observed_generation,
                );
            };
            target_sig = entry.sig.clone();
            target_csr = entry.csr.clone();
            for (slot, p) in out.iter_mut().zip(patterns) {
                if let Some(answer) = entry
                    .find(p.fingerprint, &p.key)
                    .and_then(|stored| stored.serve(cap))
                {
                    *slot = Some(answer);
                    hits += 1;
                }
            }
        }
        if hits > 0 {
            self.record_hits(hits);
        }
        if out.iter().all(Option::is_some) {
            return out.into_iter().map(|s| s.expect("checked")).collect();
        }
        // The signature prefilter is a VF2-route optimization; the plan
        // interpreter carries its own cheaper prefilter, so the plan
        // route skips signatures entirely (see `count_embeddings_plan`).
        if matcher == MatcherKind::Vf2 && target_sig.is_none() {
            target_sig = Some(Arc::new(GraphSignature::of(target)));
        }
        // Past the all-hits return there is at least one gap, so the plan
        // route always needs the CSR view; build it once for the batch.
        if matcher == MatcherKind::Plan && target_csr.is_none() {
            target_csr = Some(Arc::new(Csr::from_graph(target)));
        }
        let mut fresh: Vec<(usize, StoredCount)> = Vec::new();
        for (i, p) in patterns.iter().enumerate() {
            if out[i].is_some() {
                continue;
            }
            let rejected = matches!(
                (&matcher, &target_sig),
                (MatcherKind::Vf2, Some(sig)) if !p.sig.may_embed_in(sig)
            );
            let stored = if rejected {
                midas_obs::counter_add!("vf2.prefilter_rejects", 1);
                StoredCount {
                    cap: u64::MAX,
                    count: 0,
                }
            } else {
                let _ctx = midas_obs::enabled()
                    .then(|| midas_obs::exemplar::with_context(p.fingerprint, id.0));
                let count = match matcher {
                    MatcherKind::Vf2 => count_embeddings(&p.graph, target, cap),
                    MatcherKind::Plan => {
                        let csr = target_csr.as_deref().expect("built above for plan route");
                        p.plan_ref().count_embeddings(csr, cap)
                    }
                };
                StoredCount { cap, count }
            };
            out[i] = Some(stored.serve(cap).expect("fresh entry serves its own cap"));
            fresh.push((i, stored));
        }
        self.record_misses(fresh.len() as u64);
        let mut shard = self.write_shard(id);
        if shard.generation != observed_generation {
            // Invalidated mid-compute: serve, don't memoize (see
            // `count_embeddings_impl`).
            return out.into_iter().map(|s| s.expect("filled")).collect();
        }
        let entry = shard.map.entry(id).or_default();
        if let Some(sig) = target_sig {
            entry.sig.get_or_insert(sig);
        }
        if let Some(csr) = target_csr {
            entry.csr.get_or_insert(csr);
        }
        let mut inserted = 0u64;
        entry.counts.reserve(fresh.len());
        for (i, stored) in fresh {
            let p = &patterns[i];
            if entry.store(p.fingerprint, &p.key, stored) {
                inserted += 1;
            }
        }
        if inserted > 0 {
            self.record_insertions(inserted);
        }
        out.into_iter().map(|s| s.expect("filled")).collect()
    }

    /// Bootstrap arm of [`Self::count_embeddings_many_with`]: the graph
    /// has no memo entry yet, so every pattern is a miss. Counts go
    /// straight into the output vector — no `Option` slots, no hit scan —
    /// which matters because the bulk build visits every graph exactly
    /// once and therefore runs entirely through this path.
    fn count_many_all_cold(
        &self,
        matcher: MatcherKind,
        patterns: &[CachedPattern],
        id: GraphId,
        target: &LabeledGraph,
        cap: u64,
        observed_generation: u64,
    ) -> Vec<u64> {
        let target_sig =
            (matcher == MatcherKind::Vf2).then(|| Arc::new(GraphSignature::of(target)));
        let target_csr = (matcher == MatcherKind::Plan).then(|| Arc::new(Csr::from_graph(target)));
        let mut out: Vec<u64> = Vec::with_capacity(patterns.len());
        let mut rows: Vec<StoredCount> = Vec::with_capacity(patterns.len());
        for p in patterns {
            let rejected = matches!(
                (&matcher, &target_sig),
                (MatcherKind::Vf2, Some(sig)) if !p.sig.may_embed_in(sig)
            );
            let stored = if rejected {
                midas_obs::counter_add!("vf2.prefilter_rejects", 1);
                StoredCount {
                    cap: u64::MAX,
                    count: 0,
                }
            } else {
                let _ctx = midas_obs::enabled()
                    .then(|| midas_obs::exemplar::with_context(p.fingerprint, id.0));
                let count = match matcher {
                    MatcherKind::Vf2 => count_embeddings(&p.graph, target, cap),
                    MatcherKind::Plan => {
                        let csr = target_csr.as_deref().expect("built above for plan route");
                        p.plan_ref().count_embeddings(csr, cap)
                    }
                };
                StoredCount { cap, count }
            };
            out.push(stored.serve(cap).expect("fresh entry serves its own cap"));
            rows.push(stored);
        }
        self.record_misses(rows.len() as u64);
        let mut shard = self.write_shard(id);
        if shard.generation != observed_generation {
            // Invalidated mid-compute: serve, don't memoize (see
            // `count_embeddings_impl`).
            return out;
        }
        let entry = shard.map.entry(id).or_default();
        if let Some(sig) = target_sig {
            entry.sig.get_or_insert(sig);
        }
        if let Some(csr) = target_csr {
            entry.csr.get_or_insert(csr);
        }
        // `store` still dedupes: a racing thread may have populated the
        // entry between our read probe and this write lock.
        let mut inserted = 0u64;
        entry.counts.reserve(rows.len());
        for (p, stored) in patterns.iter().zip(rows) {
            if entry.store(p.fingerprint, &p.key, stored) {
                inserted += 1;
            }
        }
        if inserted > 0 {
            self.record_insertions(inserted);
        }
        out
    }

    /// Whether `pattern ⊆ target`, through the memo (a cap-1 count).
    pub fn is_subgraph(&self, pattern: &CachedPattern, id: GraphId, target: &LabeledGraph) -> bool {
        self.count_embeddings(pattern, id, target, 1) > 0
    }

    /// [`Self::is_subgraph`] routed through the selected matcher. Under
    /// [`MatcherKind::Plan`] the cap-1 count stops at the first embedding
    /// (the interpreter's early exit), so this is the boolean coverage
    /// fast path.
    pub fn is_subgraph_with(
        &self,
        matcher: MatcherKind,
        pattern: &CachedPattern,
        id: GraphId,
        target: &LabeledGraph,
    ) -> bool {
        self.count_embeddings_with(matcher, pattern, id, target, 1) > 0
    }

    /// Drops everything memoized about `id`. Call for every graph a batch
    /// inserts or deletes. Always bumps the generation; counts an
    /// invalidation only when an entry was actually dropped.
    ///
    /// The drop and the shard-epoch bump happen under one write lock, so
    /// invalidation + reinsert is atomic per shard: any in-flight compute
    /// that probed before this call is refused insertion afterwards.
    pub fn invalidate_graph(&self, id: GraphId) {
        self.generation.fetch_add(1, Ordering::Relaxed);
        let dropped = {
            let mut shard = self.write_shard(id);
            shard.generation += 1;
            shard.map.remove(&id)
        };
        if dropped.is_some() {
            self.record_invalidations(1);
        }
    }

    /// Drops the entire memo (one generation bump, one invalidation per
    /// graph that had an entry).
    pub fn clear(&self) {
        self.generation.fetch_add(1, Ordering::Relaxed);
        let mut dropped = 0u64;
        for shard in &self.shards {
            let mut shard = shard.write().unwrap_or_else(PoisonError::into_inner);
            shard.generation += 1;
            dropped += shard.map.len() as u64;
            shard.map.clear();
        }
        if dropped > 0 {
            self.record_invalidations(dropped);
        }
    }

    /// Number of graphs with at least one memoized entry.
    pub fn cached_graphs(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(PoisonError::into_inner).map.len())
            .sum()
    }

    /// Accounting since construction (or the last [`reset_stats`]). The
    /// generation is never reset — it tracks invalidation epochs, not
    /// workload accounting.
    ///
    /// [`reset_stats`]: EmbeddingCache::reset_stats
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            generation: self.generation.load(Ordering::Relaxed),
        }
    }

    /// The current invalidation epoch (see [`CacheStats::generation`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Zeroes the accounting counters (the memo itself and the generation
    /// are untouched).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.insertions.store(0, Ordering::Relaxed);
        self.invalidations.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn triangle() -> LabeledGraph {
        GraphBuilder::new()
            .vertices(&[0, 0, 0])
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .build()
    }

    #[test]
    fn memoizes_counts() {
        let cache = EmbeddingCache::new();
        let p = CachedPattern::new(&path(&[0, 0]));
        let t = triangle();
        let id = GraphId(7);
        assert_eq!(cache.count_embeddings(&p, id, &t, 64), 6);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.count_embeddings(&p, id, &t, 64), 6);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                insertions: 1,
                invalidations: 0,
                generation: 0,
            }
        );
    }

    #[test]
    fn isomorphic_patterns_share_entries() {
        let cache = EmbeddingCache::new();
        // Same path, two vertex orderings.
        let a = CachedPattern::new(&path(&[0, 1, 0]));
        let b = CachedPattern::new(
            &GraphBuilder::new()
                .vertices(&[0, 0, 1])
                .edge(0, 2)
                .edge(1, 2)
                .build(),
        );
        assert_eq!(a.key(), b.key());
        let t = path(&[0, 1, 0, 1, 0]);
        let id = GraphId(0);
        let first = cache.count_embeddings(&a, id, &t, 64);
        let second = cache.count_embeddings(&b, id, &t, 64);
        assert_eq!(first, second);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    }

    #[test]
    fn cap_upgrades_are_sound() {
        let cache = EmbeddingCache::new();
        let p = CachedPattern::new(&path(&[0, 0]));
        let t = triangle();
        let id = GraphId(1);
        // Boolean query first: stored saturated at cap 1.
        assert!(cache.is_subgraph(&p, id, &t));
        // Same cap served from memo.
        assert_eq!(cache.count_embeddings(&p, id, &t, 1), 1);
        assert_eq!(cache.stats().hits, 1);
        // Larger cap forces a recompute, upgrading the entry.
        assert_eq!(cache.count_embeddings(&p, id, &t, 64), 6);
        // Now exact: every cap served from memo.
        assert_eq!(cache.count_embeddings(&p, id, &t, 3), 3);
        assert_eq!(cache.count_embeddings(&p, id, &t, 1000), 6);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn prefilter_zero_is_exact() {
        let cache = EmbeddingCache::new();
        let p = CachedPattern::new(&path(&[0, 9]));
        let t = triangle();
        let id = GraphId(2);
        assert_eq!(cache.count_embeddings(&p, id, &t, 1), 0);
        assert_eq!(cache.count_embeddings(&p, id, &t, u64::MAX), 0);
        // Second query hits the stored exact zero.
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn invalidation_drops_one_graph_only() {
        let cache = EmbeddingCache::new();
        let p = CachedPattern::new(&path(&[0, 0]));
        let t = triangle();
        cache.count_embeddings(&p, GraphId(0), &t, 64);
        cache.count_embeddings(&p, GraphId(1), &t, 64);
        assert_eq!(cache.cached_graphs(), 2);
        cache.invalidate_graph(GraphId(0));
        assert_eq!(cache.cached_graphs(), 1);
        // Graph 1 still served from memo; graph 0 recomputed.
        cache.reset_stats();
        cache.count_embeddings(&p, GraphId(1), &t, 64);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 0));
        cache.count_embeddings(&p, GraphId(0), &t, 64);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn hit_rate_is_zero_not_nan_on_zero_lookups() {
        // Regression guard: 0/0 must read as 0.0, never NaN — the value
        // flows straight into snapshot JSON and the Prometheus exposition,
        // where NaN is either invalid or poisons downstream aggregation.
        let empty = CacheStats::default();
        assert_eq!(empty.hits + empty.misses, 0);
        let rate = empty.hit_rate();
        assert!(rate.is_finite(), "hit_rate on zero lookups must be finite");
        assert_eq!(rate, 0.0);
        // Same through a live cache that has never been queried.
        let rate = EmbeddingCache::new().stats().hit_rate();
        assert!(rate.is_finite() && rate == 0.0);
    }

    #[test]
    fn hit_rate_accounting_across_insert_delete_cycle() {
        let cache = EmbeddingCache::new();
        let p = CachedPattern::new(&path(&[0, 0]));
        let t = triangle();
        assert_eq!(cache.stats().generation, 0);
        assert_eq!(cache.stats().hit_rate(), 0.0);

        // Warm two graphs (2 misses, 2 insertions), re-query both (2 hits).
        for id in [GraphId(0), GraphId(1)] {
            cache.count_embeddings(&p, id, &t, 64);
        }
        for id in [GraphId(0), GraphId(1)] {
            cache.count_embeddings(&p, id, &t, 64);
        }
        let warm = cache.stats();
        assert_eq!((warm.hits, warm.misses, warm.insertions), (2, 2, 2));
        assert_eq!(warm.hit_rate(), 0.5);

        // "Delete" graph 0 and "insert" graph 2: the batch contract calls
        // invalidate_graph for both ids. Only graph 0 had an entry, so one
        // invalidation counts, but the generation moves on every call.
        cache.invalidate_graph(GraphId(0));
        cache.invalidate_graph(GraphId(2));
        let after = cache.stats();
        assert_eq!(after.invalidations, 1);
        assert_eq!(after.generation, warm.generation + 2);

        // Post-cycle queries: graph 1 survives (hit), graphs 0 and 2 are
        // recomputed and re-inserted (misses + insertions).
        for id in [GraphId(0), GraphId(1), GraphId(2)] {
            cache.count_embeddings(&p, id, &t, 64);
        }
        let end = cache.stats();
        assert_eq!((end.hits, end.misses, end.insertions), (3, 4, 4));
        assert_eq!(end.hit_rate(), 3.0 / 7.0);

        // reset_stats zeroes accounting but preserves the epoch.
        cache.reset_stats();
        let reset = cache.stats();
        assert_eq!((reset.hits, reset.misses), (0, 0));
        assert_eq!((reset.insertions, reset.invalidations), (0, 0));
        assert_eq!(reset.generation, end.generation);
    }

    #[test]
    fn clear_counts_every_stored_graph() {
        let cache = EmbeddingCache::new();
        let p = CachedPattern::new(&path(&[0, 0]));
        let t = triangle();
        for id in 0..3 {
            cache.count_embeddings(&p, GraphId(id), &t, 64);
        }
        let gen_before = cache.generation();
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 3);
        assert_eq!(stats.generation, gen_before + 1);
        assert_eq!(cache.cached_graphs(), 0);
    }

    #[test]
    fn batched_counts_match_single_queries() {
        let cache = EmbeddingCache::new();
        let patterns: Vec<CachedPattern> = [path(&[0, 0]), path(&[0, 9]), triangle()]
            .iter()
            .map(CachedPattern::new)
            .collect();
        let t = triangle();
        let id = GraphId(3);
        // Partially warm the memo, then batch over everything.
        cache.count_embeddings(&patterns[0], id, &t, 64);
        let batch = cache.count_embeddings_many(&patterns, id, &t, 64);
        for (p, &got) in patterns.iter().zip(&batch) {
            assert_eq!(got, count_embeddings(p.graph(), &t, 64));
        }
        // Second batch: all hits, no new misses.
        let misses = cache.stats().misses;
        let again = cache.count_embeddings_many(&patterns, id, &t, 64);
        assert_eq!(again, batch);
        assert_eq!(cache.stats().misses, misses);
    }

    #[test]
    fn plan_and_vf2_routes_share_the_memo() {
        // Entries are keyed by canonical code, not by matcher: the two
        // routes compute the same answers (the oracle pins this), so a
        // count stored by one must serve the other.
        let cache = EmbeddingCache::new();
        let p = CachedPattern::new(&path(&[0, 0]));
        let t = triangle();
        let id = GraphId(11);
        assert_eq!(
            cache.count_embeddings_with(MatcherKind::Plan, &p, id, &t, 64),
            6
        );
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(
            cache.count_embeddings_with(MatcherKind::Vf2, &p, id, &t, 64),
            6
        );
        assert_eq!(cache.stats().hits, 1);
        // Cap upgrades through the plan route stay sound.
        assert!(cache.is_subgraph_with(MatcherKind::Plan, &p, id, &t));
        assert_eq!(
            cache.count_embeddings_with(MatcherKind::Plan, &p, id, &t, 1000),
            6
        );
        // The batched plan route equals the serial VF2 reference,
        // including the prefilter-zero case.
        let patterns: Vec<CachedPattern> = [path(&[0, 0]), path(&[0, 9]), triangle()]
            .iter()
            .map(CachedPattern::new)
            .collect();
        let batch =
            cache.count_embeddings_many_with(MatcherKind::Plan, &patterns, GraphId(12), &t, 64);
        for (p, &got) in patterns.iter().zip(&batch) {
            assert_eq!(got, count_embeddings(p.graph(), &t, 64));
        }
        // Plan-route invalidation drops the memoized CSR with the entry.
        cache.invalidate_graph(id);
        assert_eq!(
            cache.count_embeddings_with(MatcherKind::Plan, &p, id, &t, 64),
            6
        );
    }

    #[test]
    fn invalidate_during_compute_is_not_memoized_stale() {
        // Regression: a graph removed and re-added under a reused GraphId
        // must never be served counts computed against the old graph. The
        // injectable compute hook deterministically interleaves the
        // invalidation with a VF2 search that is already in flight.
        let cache = EmbeddingCache::new();
        let id = GraphId(5);
        let old = triangle(); // 6 embeddings of 0-0
        let new = path(&[9, 9]); // none
        let p = CachedPattern::new(&path(&[0, 0]));
        let stale = cache.count_embeddings_impl(&p, id, &old, 64, |pat, t, c| {
            // Mid-compute, the batch deletes `id` and re-adds a different
            // graph under it (the contract calls invalidate for both).
            cache.invalidate_graph(id);
            count_embeddings(pat, t, c)
        });
        // The in-flight caller still gets the correct answer for ITS graph…
        assert_eq!(stale, 6);
        // …but the memo must not serve that stale count for the new graph.
        assert_eq!(cache.count_embeddings(&p, id, &new, 64), 0);
        // And the entry stored now is the new graph's, served on repeat.
        let hits = cache.stats().hits;
        assert_eq!(cache.count_embeddings(&p, id, &new, 64), 0);
        assert_eq!(cache.stats().hits, hits + 1);
    }

    #[test]
    fn batched_insert_is_skipped_after_mid_compute_invalidation() {
        // Same stale-hit window through count_embeddings_many: the write
        // pass must observe the epoch moved and skip memoization.
        let cache = EmbeddingCache::new();
        let id = GraphId(6);
        let old = triangle();
        let patterns: Vec<CachedPattern> = [path(&[0, 0]), triangle()]
            .iter()
            .map(CachedPattern::new)
            .collect();
        // Probe happens inside; simulate the race by invalidating between
        // two calls while nothing is stored yet is not enough — so drive
        // the single-pattern seam first to store, invalidate, then check
        // the batch path recomputes rather than hitting stale state.
        let first = cache.count_embeddings_many(&patterns, id, &old, 64);
        assert_eq!(first, vec![6, 6]);
        cache.invalidate_graph(id);
        let new = path(&[9, 9]);
        assert_eq!(
            cache.count_embeddings_many(&patterns, id, &new, 64),
            vec![0, 0]
        );
    }

    #[test]
    fn poisoned_shard_lock_recovers() {
        // A worker that panics while holding a shard lock must not wedge
        // the cache: later readers/writers recover the guard and keep
        // serving consistent answers.
        let cache = std::sync::Arc::new(EmbeddingCache::new());
        let p = CachedPattern::new(&path(&[0, 0]));
        let t = triangle();
        let id = GraphId(3);
        assert_eq!(cache.count_embeddings(&p, id, &t, 64), 6);
        let poisoner = std::sync::Arc::clone(&cache);
        let join = std::thread::spawn(move || {
            let _guard = poisoner.shard(id).write().unwrap();
            panic!("poison the shard");
        })
        .join();
        assert!(join.is_err(), "the poisoning thread must panic");
        assert!(cache.shard(id).is_poisoned());
        // Reads, writes and invalidation all still work.
        assert_eq!(cache.count_embeddings(&p, id, &t, 64), 6);
        cache.invalidate_graph(id);
        assert_eq!(cache.count_embeddings(&p, id, &t, 64), 6);
        assert!(cache.cached_graphs() >= 1);
        cache.clear();
        assert_eq!(cache.cached_graphs(), 0);
    }

    #[test]
    fn concurrent_queries_agree_with_serial(/* exercised via exec */) {
        let cache = EmbeddingCache::new();
        let patterns: Vec<CachedPattern> = [path(&[0, 0]), path(&[0, 0, 0]), triangle()]
            .iter()
            .map(CachedPattern::new)
            .collect();
        let targets: Vec<(GraphId, LabeledGraph)> = (0..32)
            .map(|i| {
                (
                    GraphId(i),
                    if i % 2 == 0 {
                        triangle()
                    } else {
                        path(&[0, 0, 0, 0])
                    },
                )
            })
            .collect();
        let results = crate::exec::par_map(8, &targets, |(id, t)| {
            patterns
                .iter()
                .map(|p| cache.count_embeddings(p, *id, t, 64))
                .collect::<Vec<u64>>()
        });
        for ((_, t), row) in targets.iter().zip(&results) {
            for (p, &got) in patterns.iter().zip(row) {
                assert_eq!(got, count_embeddings(p.graph(), t, 64));
            }
        }
    }
}
