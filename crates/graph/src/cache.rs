//! Memoized subgraph-isomorphism counts keyed by `(pattern, data graph)`.
//!
//! The TG/TP matrices (§5.1), scov coverage (§2.2) and the swap/quality
//! machinery all keep asking the same question — "how many embeddings of
//! pattern `p` does graph `G` contain (capped)?" — against a database that
//! changes only at batch boundaries. [`EmbeddingCache`] memoizes those
//! answers so that a batch touching 1% of the database recomputes ~1% of a
//! matrix, and a rebuilt index reuses every surviving cell.
//!
//! # Keying
//!
//! Entries are keyed **graph-first**: a sharded map `GraphId → (signature,
//! pattern-key → count)`. The inner key is the pattern's [`CanonicalCode`],
//! so isomorphic patterns — common, since candidates are generated from
//! random walks on many CSGs — share one entry per graph. Graph-first
//! nesting makes invalidation O(1) per touched graph:
//! [`EmbeddingCache::invalidate_graph`] simply drops the graph's inner map.
//!
//! # Cap soundness
//!
//! Counts are saturating ([`count_embeddings`]'s `cap`). Each entry stores
//! the cap it was computed at. A stored value serves a request when it is
//! *exact* (`count < stored_cap`, so `min(count, cap)` is the true answer)
//! or *saturated at or above the requested cap* (`cap ≤ stored_cap ≤ count`
//! implies the answer is exactly `cap`). Otherwise the entry is recomputed
//! at the larger cap and upgraded in place.
//!
//! # Invalidation contract
//!
//! The cache never observes the database; callers must call
//! [`EmbeddingCache::invalidate_graph`] for every inserted *and* deleted
//! graph id when applying a batch (inserted ids are fresh and can't collide
//! with stale entries because [`crate::db::GraphDb`] never reuses ids, but
//! invalidating both keeps the contract independent of that detail).

use crate::canonical::{canonical_code, CanonicalCode};
use crate::db::GraphId;
use crate::graph::LabeledGraph;
use crate::isomorphism::{count_embeddings, GraphSignature};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of independent lock shards. Power of two, sized so a dozen worker
/// threads rarely contend on one lock.
const SHARDS: usize = 64;

/// A pattern prepared for cached matching: the graph plus its canonical key
/// and quick-reject signature, each computed once.
#[derive(Debug, Clone)]
pub struct CachedPattern {
    graph: Arc<LabeledGraph>,
    key: CanonicalCode,
    sig: GraphSignature,
}

impl CachedPattern {
    /// Prepares `pattern` (canonical code + signature).
    pub fn new(pattern: &LabeledGraph) -> Self {
        CachedPattern {
            graph: Arc::new(pattern.clone()),
            key: canonical_code(pattern),
            sig: GraphSignature::of(pattern),
        }
    }

    /// The underlying pattern graph.
    pub fn graph(&self) -> &LabeledGraph {
        &self.graph
    }

    /// The canonical key shared by all patterns isomorphic to this one.
    pub fn key(&self) -> &CanonicalCode {
        &self.key
    }

    /// The pattern's quick-reject signature.
    pub fn signature(&self) -> &GraphSignature {
        &self.sig
    }
}

/// One stored answer: the cap it was computed at and the (saturating) count.
#[derive(Debug, Clone, Copy)]
struct StoredCount {
    cap: u64,
    count: u64,
}

impl StoredCount {
    /// The answer for a request at `cap`, when this entry can serve it.
    fn serve(&self, cap: u64) -> Option<u64> {
        if self.count < self.cap {
            // Exact count: valid at any cap.
            Some(self.count.min(cap))
        } else if cap <= self.cap {
            // Saturated at stored cap ≥ requested cap: true count ≥ cap.
            Some(cap)
        } else {
            None
        }
    }
}

/// Everything memoized about one data graph.
#[derive(Debug, Default)]
struct GraphEntry {
    /// Lazily computed quick-reject signature of the graph.
    sig: Option<Arc<GraphSignature>>,
    /// Capped embedding counts per pattern canonical key.
    counts: HashMap<CanonicalCode, StoredCount>,
}

/// Hit/miss counters, for tests and bench reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from a stored entry (including prefilter zeros).
    pub hits: u64,
    /// Requests that ran a VF2 search.
    pub misses: u64,
}

/// A sharded, thread-safe memo of capped embedding counts.
///
/// Cheap to share (`Arc<EmbeddingCache>`), safe to hit from the scoped
/// worker threads of [`crate::exec`].
#[derive(Debug)]
pub struct EmbeddingCache {
    shards: Vec<RwLock<HashMap<GraphId, GraphEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for EmbeddingCache {
    fn default() -> Self {
        Self::new()
    }
}

impl EmbeddingCache {
    /// An empty cache.
    pub fn new() -> Self {
        EmbeddingCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, id: GraphId) -> &RwLock<HashMap<GraphId, GraphEntry>> {
        &self.shards[(id.0 as usize) % SHARDS]
    }

    /// Counts embeddings of `pattern` in `(id, target)`, saturating at
    /// `cap`, consulting and updating the memo.
    pub fn count_embeddings(
        &self,
        pattern: &CachedPattern,
        id: GraphId,
        target: &LabeledGraph,
        cap: u64,
    ) -> u64 {
        if cap == 0 {
            return 0;
        }
        // Fast path: stored entry (and memoized target signature).
        let mut target_sig: Option<Arc<GraphSignature>> = None;
        {
            let shard = self.shard(id).read().expect("cache lock");
            if let Some(entry) = shard.get(&id) {
                if let Some(stored) = entry.counts.get(&pattern.key) {
                    if let Some(answer) = stored.serve(cap) {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return answer;
                    }
                }
                target_sig = entry.sig.clone();
            }
        }
        let target_sig = target_sig.unwrap_or_else(|| Arc::new(GraphSignature::of(target)));
        let stored = if !pattern.sig.may_embed_in(&target_sig) {
            // Prefilter proof of zero: exact at any cap.
            StoredCount {
                cap: u64::MAX,
                count: 0,
            }
        } else {
            StoredCount {
                cap,
                count: count_embeddings(&pattern.graph, target, cap),
            }
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(id).write().expect("cache lock");
        let entry = shard.entry(id).or_default();
        entry.sig.get_or_insert(target_sig);
        // Keep whichever of the racing computations knows more.
        let slot = entry.counts.entry(pattern.key.clone()).or_insert(stored);
        if stored.cap > slot.cap {
            *slot = stored;
        }
        stored.serve(cap).expect("fresh entry serves its own cap")
    }

    /// Counts embeddings of every pattern in `(id, target)` in one pass:
    /// a single read-lock sweep serves all memoized answers, VF2 runs only
    /// for the gaps, and a single write lock stores the fresh entries.
    /// Equivalent to (but cheaper than) one [`Self::count_embeddings`] call
    /// per pattern — this is the inner loop of a matrix-column build.
    pub fn count_embeddings_many(
        &self,
        patterns: &[CachedPattern],
        id: GraphId,
        target: &LabeledGraph,
        cap: u64,
    ) -> Vec<u64> {
        if cap == 0 {
            return vec![0; patterns.len()];
        }
        let mut out: Vec<Option<u64>> = vec![None; patterns.len()];
        let mut target_sig: Option<Arc<GraphSignature>> = None;
        let mut hits = 0u64;
        {
            let shard = self.shard(id).read().expect("cache lock");
            if let Some(entry) = shard.get(&id) {
                target_sig = entry.sig.clone();
                for (slot, p) in out.iter_mut().zip(patterns) {
                    if let Some(answer) = entry
                        .counts
                        .get(&p.key)
                        .and_then(|stored| stored.serve(cap))
                    {
                        *slot = Some(answer);
                        hits += 1;
                    }
                }
            }
        }
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
        }
        if out.iter().all(Option::is_some) {
            return out.into_iter().map(|s| s.expect("checked")).collect();
        }
        let target_sig = target_sig.unwrap_or_else(|| Arc::new(GraphSignature::of(target)));
        let mut fresh: Vec<(usize, StoredCount)> = Vec::new();
        for (i, p) in patterns.iter().enumerate() {
            if out[i].is_some() {
                continue;
            }
            let stored = if !p.sig.may_embed_in(&target_sig) {
                StoredCount {
                    cap: u64::MAX,
                    count: 0,
                }
            } else {
                StoredCount {
                    cap,
                    count: count_embeddings(&p.graph, target, cap),
                }
            };
            out[i] = Some(stored.serve(cap).expect("fresh entry serves its own cap"));
            fresh.push((i, stored));
        }
        self.misses.fetch_add(fresh.len() as u64, Ordering::Relaxed);
        let mut shard = self.shard(id).write().expect("cache lock");
        let entry = shard.entry(id).or_default();
        entry.sig.get_or_insert(target_sig);
        for (i, stored) in fresh {
            let slot = entry
                .counts
                .entry(patterns[i].key.clone())
                .or_insert(stored);
            if stored.cap > slot.cap {
                *slot = stored;
            }
        }
        out.into_iter().map(|s| s.expect("filled")).collect()
    }

    /// Whether `pattern ⊆ target`, through the memo (a cap-1 count).
    pub fn is_subgraph(&self, pattern: &CachedPattern, id: GraphId, target: &LabeledGraph) -> bool {
        self.count_embeddings(pattern, id, target, 1) > 0
    }

    /// Drops everything memoized about `id`. Call for every graph a batch
    /// inserts or deletes.
    pub fn invalidate_graph(&self, id: GraphId) {
        self.shard(id).write().expect("cache lock").remove(&id);
    }

    /// Drops the entire memo.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().expect("cache lock").clear();
        }
    }

    /// Number of graphs with at least one memoized entry.
    pub fn cached_graphs(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache lock").len())
            .sum()
    }

    /// Hit/miss counters since construction (or the last [`reset_stats`]).
    ///
    /// [`reset_stats`]: EmbeddingCache::reset_stats
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the hit/miss counters (the memo itself is untouched).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn triangle() -> LabeledGraph {
        GraphBuilder::new()
            .vertices(&[0, 0, 0])
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .build()
    }

    #[test]
    fn memoizes_counts() {
        let cache = EmbeddingCache::new();
        let p = CachedPattern::new(&path(&[0, 0]));
        let t = triangle();
        let id = GraphId(7);
        assert_eq!(cache.count_embeddings(&p, id, &t, 64), 6);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.count_embeddings(&p, id, &t, 64), 6);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn isomorphic_patterns_share_entries() {
        let cache = EmbeddingCache::new();
        // Same path, two vertex orderings.
        let a = CachedPattern::new(&path(&[0, 1, 0]));
        let b = CachedPattern::new(
            &GraphBuilder::new()
                .vertices(&[0, 0, 1])
                .edge(0, 2)
                .edge(1, 2)
                .build(),
        );
        assert_eq!(a.key(), b.key());
        let t = path(&[0, 1, 0, 1, 0]);
        let id = GraphId(0);
        let first = cache.count_embeddings(&a, id, &t, 64);
        let second = cache.count_embeddings(&b, id, &t, 64);
        assert_eq!(first, second);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn cap_upgrades_are_sound() {
        let cache = EmbeddingCache::new();
        let p = CachedPattern::new(&path(&[0, 0]));
        let t = triangle();
        let id = GraphId(1);
        // Boolean query first: stored saturated at cap 1.
        assert!(cache.is_subgraph(&p, id, &t));
        // Same cap served from memo.
        assert_eq!(cache.count_embeddings(&p, id, &t, 1), 1);
        assert_eq!(cache.stats().hits, 1);
        // Larger cap forces a recompute, upgrading the entry.
        assert_eq!(cache.count_embeddings(&p, id, &t, 64), 6);
        // Now exact: every cap served from memo.
        assert_eq!(cache.count_embeddings(&p, id, &t, 3), 3);
        assert_eq!(cache.count_embeddings(&p, id, &t, 1000), 6);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn prefilter_zero_is_exact() {
        let cache = EmbeddingCache::new();
        let p = CachedPattern::new(&path(&[0, 9]));
        let t = triangle();
        let id = GraphId(2);
        assert_eq!(cache.count_embeddings(&p, id, &t, 1), 0);
        assert_eq!(cache.count_embeddings(&p, id, &t, u64::MAX), 0);
        // Second query hits the stored exact zero.
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn invalidation_drops_one_graph_only() {
        let cache = EmbeddingCache::new();
        let p = CachedPattern::new(&path(&[0, 0]));
        let t = triangle();
        cache.count_embeddings(&p, GraphId(0), &t, 64);
        cache.count_embeddings(&p, GraphId(1), &t, 64);
        assert_eq!(cache.cached_graphs(), 2);
        cache.invalidate_graph(GraphId(0));
        assert_eq!(cache.cached_graphs(), 1);
        // Graph 1 still served from memo; graph 0 recomputed.
        cache.reset_stats();
        cache.count_embeddings(&p, GraphId(1), &t, 64);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 0 });
        cache.count_embeddings(&p, GraphId(0), &t, 64);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn batched_counts_match_single_queries() {
        let cache = EmbeddingCache::new();
        let patterns: Vec<CachedPattern> = [path(&[0, 0]), path(&[0, 9]), triangle()]
            .iter()
            .map(CachedPattern::new)
            .collect();
        let t = triangle();
        let id = GraphId(3);
        // Partially warm the memo, then batch over everything.
        cache.count_embeddings(&patterns[0], id, &t, 64);
        let batch = cache.count_embeddings_many(&patterns, id, &t, 64);
        for (p, &got) in patterns.iter().zip(&batch) {
            assert_eq!(got, count_embeddings(p.graph(), &t, 64));
        }
        // Second batch: all hits, no new misses.
        let misses = cache.stats().misses;
        let again = cache.count_embeddings_many(&patterns, id, &t, 64);
        assert_eq!(again, batch);
        assert_eq!(cache.stats().misses, misses);
    }

    #[test]
    fn concurrent_queries_agree_with_serial(/* exercised via exec */) {
        let cache = EmbeddingCache::new();
        let patterns: Vec<CachedPattern> = [path(&[0, 0]), path(&[0, 0, 0]), triangle()]
            .iter()
            .map(CachedPattern::new)
            .collect();
        let targets: Vec<(GraphId, LabeledGraph)> = (0..32)
            .map(|i| {
                (
                    GraphId(i),
                    if i % 2 == 0 {
                        triangle()
                    } else {
                        path(&[0, 0, 0, 0])
                    },
                )
            })
            .collect();
        let results = crate::exec::par_map(8, &targets, |(id, t)| {
            patterns
                .iter()
                .map(|p| cache.count_embeddings(p, *id, t, 64))
                .collect::<Vec<u64>>()
        });
        for ((_, t), row) in targets.iter().zip(&results) {
            for (p, &got) in patterns.iter().zip(row) {
                assert_eq!(got, count_embeddings(p.graph(), t, 64));
            }
        }
    }
}
