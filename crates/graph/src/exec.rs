//! Scoped-thread execution helpers for the isomorphism kernel.
//!
//! Matrix construction (§5.1) and batch maintenance (Algorithm 1) are
//! dominated by embarrassingly parallel `(graph × pattern)` scans. This
//! module centralizes the fork/join plumbing those scans share, so each
//! call site is a data-parallel one-liner instead of hand-rolled chunk
//! arithmetic:
//!
//! * [`par_map`] — map a function over a slice, preserving order.
//! * [`par_map_indexed`] — same, with the element index available.
//! * [`par_chunks`] — run a closure once per contiguous chunk, for
//!   reductions that want per-thread accumulators.
//!
//! Threads are plain `std::thread::scope` workers (no pool): the work items
//! here are chunky (VF2 searches over whole graphs), so spawn overhead is
//! noise, and scoped threads let closures borrow the database and indices
//! without `Arc` gymnastics.
//!
//! When telemetry is enabled (see `midas-obs`), every parallel fan-out
//! bumps `exec.fanouts`/`exec.tasks`, and each worker runs under an
//! `exec.worker` span, so per-thread busy time shows up in span statistics
//! and as one lane per worker in the Chrome trace.
//!
//! # Thread-count selection
//!
//! [`thread_count`] resolves, in order: an explicit override (> 0), the
//! `MIDAS_THREADS` environment variable (> 0), then
//! `std::thread::available_parallelism()`. Work is never split wider than
//! the item count, and `1` means "run inline on the caller's thread".
//!
//! The fan-outs additionally degrade to the serial path
//! ([`effective_threads`]) when the host has a single core or the fan-out
//! is narrower than [`SPAWN_THRESHOLD`] items — spawning scoped threads
//! there only adds overhead (the kernel bench measured parallel at 0.83×
//! serial on a 1-core host before this guard).
//!
//! # Fault isolation
//!
//! [`try_par_map`] / [`try_par_map_indexed`] run every task under
//! [`std::panic::catch_unwind`]: a panicking task poisons only its own
//! result slot and the whole fan-out returns a [`KernelError`] naming the
//! first failed task, instead of aborting the process or wedging the
//! caller. The `MIDAS_FAULT=task:N` environment variable (or
//! [`set_fault_for_tests`]) arms a deterministic injector that panics the
//! Nth task executed through this module — the hook the oracle harness and
//! CI use to prove containment end to end.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::OnceLock;

/// A contained task failure surfaced by the fallible fan-outs
/// ([`try_par_map`] and friends) instead of an abort or a wedged scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelError {
    /// Index of the first failed work item within the fan-out.
    pub task: usize,
    /// The panic payload, stringified.
    pub message: String,
}

impl KernelError {
    /// Sentinel task index for failures contained at *phase* level (a panic
    /// that escaped an infallible fan-out and was caught by the framework's
    /// backstop) rather than in a specific fan-out slot.
    pub const PHASE: usize = usize::MAX;
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.task == Self::PHASE {
            write!(f, "kernel phase panicked: {}", self.message)
        } else {
            write!(f, "kernel task {} panicked: {}", self.task, self.message)
        }
    }
}

impl std::error::Error for KernelError {}

/// Sentinel for "no programmatic fault override": fall back to the env var.
const FAULT_FROM_ENV: i64 = i64::MIN;

/// Programmatic override of the fault target (tests); `FAULT_FROM_ENV`
/// defers to `MIDAS_FAULT`, any other negative value disables injection.
static FAULT_OVERRIDE: AtomicI64 = AtomicI64::new(FAULT_FROM_ENV);

/// Global task ordinal; only advanced while a fault target is armed, so the
/// "Nth task" is deterministic for a fixed workload.
static FAULT_COUNTER: AtomicU64 = AtomicU64::new(0);

/// `MIDAS_FAULT=task:N`, parsed once.
fn env_fault_target() -> Option<u64> {
    static PARSED: OnceLock<Option<u64>> = OnceLock::new();
    *PARSED.get_or_init(|| {
        std::env::var("MIDAS_FAULT")
            .ok()
            .as_deref()
            .and_then(|s| s.trim().strip_prefix("task:"))
            .and_then(|n| n.trim().parse::<u64>().ok())
    })
}

fn fault_target() -> Option<u64> {
    match FAULT_OVERRIDE.load(Ordering::Relaxed) {
        FAULT_FROM_ENV => env_fault_target(),
        n if n >= 0 => Some(n as u64),
        _ => None,
    }
}

/// Arms (`Some(n)`: panic the `n`-th task from now) or disarms (`None`)
/// the fault injector, overriding `MIDAS_FAULT`, and resets the task
/// counter. Process-global — callers must serialize tests around it.
pub fn set_fault_for_tests(target: Option<u64>) {
    FAULT_OVERRIDE.store(
        match target {
            Some(n) => n as i64,
            None => -1,
        },
        Ordering::Relaxed,
    );
    FAULT_COUNTER.store(0, Ordering::Relaxed);
}

/// The per-task injection point: panics on the armed task ordinal.
#[inline]
fn fault_point() {
    if let Some(target) = fault_target() {
        let ordinal = FAULT_COUNTER.fetch_add(1, Ordering::Relaxed);
        if ordinal == target {
            midas_obs::flight::record_event(
                "fault_injected",
                format!("MIDAS_FAULT fired at task {target}"),
            );
            panic!("injected fault at task {target} (MIDAS_FAULT)");
        }
    }
}

/// Stringifies a `catch_unwind` payload (also used by phase-level
/// containment backstops in `midas-core`).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Resolves the number of worker threads to use for `items` work items.
///
/// `override_threads` wins when non-zero (this is the `MidasConfig::threads`
/// knob); otherwise the `MIDAS_THREADS` environment variable (when set to a
/// positive integer); otherwise the machine's available parallelism.
pub fn thread_count(override_threads: usize, items: usize) -> usize {
    let configured = if override_threads > 0 {
        override_threads
    } else {
        env_threads().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
    };
    configured.min(items).max(1)
}

fn env_threads() -> Option<usize> {
    std::env::var("MIDAS_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Fan-outs narrower than this run inline: spawning scoped worker threads
/// costs more than matching a handful of small graphs.
pub const SPAWN_THRESHOLD: usize = 8;

/// Cached `available_parallelism` — the answer cannot change mid-process,
/// and the fan-out hot path should not repeat the syscall.
fn available_cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// [`thread_count`] with the spawn-cost degrade applied: the resolved
/// width collapses to `1` (run inline) when the host has a single core —
/// scoped threads there only add spawn and scheduling overhead — or when
/// the fan-out is narrower than [`SPAWN_THRESHOLD`] items. Results are
/// unchanged either way; only the execution strategy differs.
pub fn effective_threads(override_threads: usize, items: usize) -> usize {
    let threads = thread_count(override_threads, items);
    if threads > 1 && (available_cores() == 1 || items < SPAWN_THRESHOLD) {
        return 1;
    }
    threads
}

/// Maps `f` over `items` in parallel, preserving input order.
///
/// `threads = 0` means auto (see [`thread_count`]). Falls back to a plain
/// sequential map when one thread suffices.
pub fn par_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(threads, items, |_, item| f(item))
}

/// Maps `f(index, item)` over `items` in parallel, preserving input order.
pub fn par_map_indexed<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, x)| {
                fault_point();
                f(i, x)
            })
            .collect();
    }
    midas_obs::counter_add!("exec.fanouts", 1);
    midas_obs::counter_add!("exec.tasks", items.len() as u64);
    let mut out: Vec<Option<U>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let chunk_len = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_idx, (in_chunk, out_chunk)) in items
            .chunks(chunk_len)
            .zip(out.chunks_mut(chunk_len))
            .enumerate()
        {
            let f = &f;
            scope.spawn(move || {
                let _busy = midas_obs::span!("exec.worker");
                let base = chunk_idx * chunk_len;
                for (offset, (item, slot)) in in_chunk.iter().zip(out_chunk).enumerate() {
                    fault_point();
                    *slot = Some(f(base + offset, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

/// Fallible [`par_map`]: every task runs under `catch_unwind`, a panic
/// poisons only its own slot, and the call returns the first failure as a
/// [`KernelError`] instead of unwinding across the scope join.
pub fn try_par_map<T, U, F>(threads: usize, items: &[T], f: F) -> Result<Vec<U>, KernelError>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    try_par_map_indexed(threads, items, |_, item| f(item))
}

/// Fallible [`par_map_indexed`]. Remaining healthy tasks still run to
/// completion (the scope joins every worker); only their results are
/// discarded when an error is reported.
pub fn try_par_map_indexed<T, U, F>(
    threads: usize,
    items: &[T],
    f: F,
) -> Result<Vec<U>, KernelError>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let run_task = |i: usize, item: &T| -> Result<U, KernelError> {
        catch_unwind(AssertUnwindSafe(|| {
            fault_point();
            f(i, item)
        }))
        .map_err(|payload| {
            midas_obs::counter_add!("exec.task_panics", 1);
            KernelError {
                task: i,
                message: panic_message(payload),
            }
        })
    };
    let threads = effective_threads(threads, items.len());
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, x)| run_task(i, x))
            .collect();
    }
    midas_obs::counter_add!("exec.fanouts", 1);
    midas_obs::counter_add!("exec.tasks", items.len() as u64);
    let mut out: Vec<Option<Result<U, KernelError>>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let chunk_len = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_idx, (in_chunk, out_chunk)) in items
            .chunks(chunk_len)
            .zip(out.chunks_mut(chunk_len))
            .enumerate()
        {
            let run_task = &run_task;
            scope.spawn(move || {
                let _busy = midas_obs::span!("exec.worker");
                let base = chunk_idx * chunk_len;
                for (offset, (item, slot)) in in_chunk.iter().zip(out_chunk).enumerate() {
                    *slot = Some(run_task(base + offset, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

/// Runs `f(chunk_start, chunk)` once per contiguous chunk, in parallel, and
/// returns the per-chunk results in order. Useful for reductions: each
/// worker builds a private accumulator, the caller merges the handful of
/// results.
pub fn par_chunks<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> U + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 {
        if items.is_empty() {
            return Vec::new();
        }
        return vec![f(0, items)];
    }
    midas_obs::counter_add!("exec.fanouts", 1);
    midas_obs::counter_add!("exec.tasks", items.len() as u64);
    let chunk_len = items.len().div_ceil(threads);
    let mut out: Vec<Option<U>> = Vec::new();
    out.resize_with(items.len().div_ceil(chunk_len), || None);
    std::thread::scope(|scope| {
        for (chunk_idx, (chunk, slot)) in items.chunks(chunk_len).zip(out.iter_mut()).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let _busy = midas_obs::span!("exec.worker");
                *slot = Some(f(chunk_idx * chunk_len, chunk));
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 7] {
            let doubled = par_map(threads, &items, |&x| x * 2);
            assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_indexed_sees_true_indices() {
        let items = vec!["a"; 257];
        let idxs = par_map_indexed(4, &items, |i, _| i);
        assert_eq!(idxs, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_partitions_exactly() {
        let items: Vec<usize> = (0..103).collect();
        for threads in [1, 2, 5, 16] {
            let sums = par_chunks(threads, &items, |start, chunk| {
                assert_eq!(chunk[0], start);
                chunk.iter().sum::<usize>()
            });
            assert_eq!(sums.iter().sum::<usize>(), items.iter().sum::<usize>());
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(8, &none, |&x| x).is_empty());
        assert!(par_chunks(8, &none, |_, c: &[u32]| c.len()).is_empty());
    }

    #[test]
    fn try_par_map_matches_par_map_on_healthy_tasks() {
        let items: Vec<u64> = (0..500).collect();
        for threads in [1, 2, 8] {
            let out = try_par_map(threads, &items, |&x| x * 3).expect("no faults");
            assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn try_par_map_contains_a_panicking_task() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 4] {
            let err = try_par_map(threads, &items, |&x| {
                if x == 37 {
                    panic!("boom at {x}");
                }
                x
            })
            .expect_err("task 37 panics");
            assert_eq!(err.task, 37);
            assert!(err.message.contains("boom at 37"), "{err}");
        }
    }

    #[test]
    fn try_par_map_indexed_reports_first_failed_index() {
        let items = vec![(); 64];
        let err = try_par_map_indexed(2, &items, |i, ()| {
            if i % 50 == 3 {
                panic!("bad slot");
            }
            i
        })
        .expect_err("slot 3 and 53 panic");
        assert_eq!(err.task, 3, "first error in slot order wins");
        assert!(err.to_string().contains("task 3"));
    }

    #[test]
    fn kernel_error_displays_task_and_message() {
        let e = KernelError {
            task: 9,
            message: "xyz".into(),
        };
        assert_eq!(e.to_string(), "kernel task 9 panicked: xyz");
    }

    #[test]
    fn thread_count_clamps_to_items() {
        assert_eq!(thread_count(64, 3), 3);
        assert_eq!(thread_count(2, 1000), 2);
        assert_eq!(thread_count(0, 0), 1);
        assert!(thread_count(0, 1000) >= 1);
    }

    #[test]
    fn effective_threads_degrades_small_fanouts_to_serial() {
        // Below the spawn threshold the fan-out always runs inline, no
        // matter how many threads were requested or are available.
        for items in 0..SPAWN_THRESHOLD {
            assert_eq!(effective_threads(64, items), 1, "items = {items}");
        }
        // At and beyond the threshold, the degrade depends only on the
        // host: a single-core machine never spawns (parallel was measured
        // at 0.83x serial there), a multi-core one keeps the resolved
        // width.
        let wide = effective_threads(4, 1000);
        if available_cores() == 1 {
            assert_eq!(wide, 1, "single-core host must run serial");
        } else {
            assert_eq!(wide, 4, "multi-core host keeps the requested width");
        }
        // The underlying resolution order is untouched.
        assert_eq!(thread_count(64, 3), 3);
    }

    #[test]
    fn degraded_fanouts_produce_identical_results() {
        // The degrade changes execution strategy, never results: a fan-out
        // narrower than the spawn threshold matches the serial map.
        let items: Vec<u64> = (0..SPAWN_THRESHOLD as u64 - 1).collect();
        let out = par_map(8, &items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        let tried = try_par_map(8, &items, |&x| x + 1).expect("no faults");
        assert_eq!(tried, items.iter().map(|&x| x + 1).collect::<Vec<_>>());
    }
}
