//! Scoped-thread execution helpers for the isomorphism kernel.
//!
//! Matrix construction (§5.1) and batch maintenance (Algorithm 1) are
//! dominated by embarrassingly parallel `(graph × pattern)` scans. This
//! module centralizes the fork/join plumbing those scans share, so each
//! call site is a data-parallel one-liner instead of hand-rolled chunk
//! arithmetic:
//!
//! * [`par_map`] — map a function over a slice, preserving order.
//! * [`par_map_indexed`] — same, with the element index available.
//! * [`par_chunks`] — run a closure once per contiguous chunk, for
//!   reductions that want per-thread accumulators.
//!
//! Threads are plain `std::thread::scope` workers (no pool): the work items
//! here are chunky (VF2 searches over whole graphs), so spawn overhead is
//! noise, and scoped threads let closures borrow the database and indices
//! without `Arc` gymnastics.
//!
//! When telemetry is enabled (see `midas-obs`), every parallel fan-out
//! bumps `exec.fanouts`/`exec.tasks`, and each worker runs under an
//! `exec.worker` span, so per-thread busy time shows up in span statistics
//! and as one lane per worker in the Chrome trace.
//!
//! # Thread-count selection
//!
//! [`thread_count`] resolves, in order: an explicit override (> 0), the
//! `MIDAS_THREADS` environment variable (> 0), then
//! `std::thread::available_parallelism()`. Work is never split wider than
//! the item count, and `1` means "run inline on the caller's thread".

use std::num::NonZeroUsize;

/// Resolves the number of worker threads to use for `items` work items.
///
/// `override_threads` wins when non-zero (this is the `MidasConfig::threads`
/// knob); otherwise the `MIDAS_THREADS` environment variable (when set to a
/// positive integer); otherwise the machine's available parallelism.
pub fn thread_count(override_threads: usize, items: usize) -> usize {
    let configured = if override_threads > 0 {
        override_threads
    } else {
        env_threads().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
    };
    configured.min(items).max(1)
}

fn env_threads() -> Option<usize> {
    std::env::var("MIDAS_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Maps `f` over `items` in parallel, preserving input order.
///
/// `threads = 0` means auto (see [`thread_count`]). Falls back to a plain
/// sequential map when one thread suffices.
pub fn par_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(threads, items, |_, item| f(item))
}

/// Maps `f(index, item)` over `items` in parallel, preserving input order.
pub fn par_map_indexed<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = thread_count(threads, items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    midas_obs::counter_add!("exec.fanouts", 1);
    midas_obs::counter_add!("exec.tasks", items.len() as u64);
    let mut out: Vec<Option<U>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let chunk_len = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_idx, (in_chunk, out_chunk)) in items
            .chunks(chunk_len)
            .zip(out.chunks_mut(chunk_len))
            .enumerate()
        {
            let f = &f;
            scope.spawn(move || {
                let _busy = midas_obs::span!("exec.worker");
                let base = chunk_idx * chunk_len;
                for (offset, (item, slot)) in in_chunk.iter().zip(out_chunk).enumerate() {
                    *slot = Some(f(base + offset, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

/// Runs `f(chunk_start, chunk)` once per contiguous chunk, in parallel, and
/// returns the per-chunk results in order. Useful for reductions: each
/// worker builds a private accumulator, the caller merges the handful of
/// results.
pub fn par_chunks<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> U + Sync,
{
    let threads = thread_count(threads, items.len());
    if threads <= 1 {
        if items.is_empty() {
            return Vec::new();
        }
        return vec![f(0, items)];
    }
    midas_obs::counter_add!("exec.fanouts", 1);
    midas_obs::counter_add!("exec.tasks", items.len() as u64);
    let chunk_len = items.len().div_ceil(threads);
    let mut out: Vec<Option<U>> = Vec::new();
    out.resize_with(items.len().div_ceil(chunk_len), || None);
    std::thread::scope(|scope| {
        for (chunk_idx, (chunk, slot)) in items.chunks(chunk_len).zip(out.iter_mut()).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let _busy = midas_obs::span!("exec.worker");
                *slot = Some(f(chunk_idx * chunk_len, chunk));
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 7] {
            let doubled = par_map(threads, &items, |&x| x * 2);
            assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_indexed_sees_true_indices() {
        let items = vec!["a"; 257];
        let idxs = par_map_indexed(4, &items, |i, _| i);
        assert_eq!(idxs, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_partitions_exactly() {
        let items: Vec<usize> = (0..103).collect();
        for threads in [1, 2, 5, 16] {
            let sums = par_chunks(threads, &items, |start, chunk| {
                assert_eq!(chunk[0], start);
                chunk.iter().sum::<usize>()
            });
            assert_eq!(sums.iter().sum::<usize>(), items.iter().sum::<usize>());
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(8, &none, |&x| x).is_empty());
        assert!(par_chunks(8, &none, |_, c: &[u32]| c.len()).is_empty());
    }

    #[test]
    fn thread_count_clamps_to_items() {
        assert_eq!(thread_count(64, 3), 3);
        assert_eq!(thread_count(2, 1000), 2);
        assert_eq!(thread_count(0, 0), 1);
        assert!(thread_count(0, 1000) >= 1);
    }
}
