//! The graph database `D` and batch updates `ΔD` (§2.1, §3.1).
//!
//! A [`GraphDb`] holds a large collection of small/medium data graphs, each
//! with a unique stable [`GraphId`]. Evolution happens through
//! [`BatchUpdate`]s — a set of graph insertions `Δ⁺` and deletions `Δ⁻` —
//! matching the paper's assumption that repositories like PubChem are
//! updated periodically in batches rather than streamed.

use crate::csr::Csr;
use crate::graph::LabeledGraph;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Stable identifier of a data graph within a [`GraphDb`].
///
/// Ids are never reused, so `GraphId`s remain valid across deletions (they
/// simply stop resolving), which is what the CSG edge-support sets and the
/// index matrices of §5.1 rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GraphId(pub u64);

impl std::fmt::Display for GraphId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "G{}", self.0)
    }
}

/// A batch update `ΔD`: insertions `Δ⁺` and deletions `Δ⁻`.
#[derive(Debug, Clone, Default)]
pub struct BatchUpdate {
    /// Graphs to insert (`Δ⁺`).
    pub insert: Vec<LabeledGraph>,
    /// Ids of graphs to delete (`Δ⁻`).
    pub delete: Vec<GraphId>,
}

impl BatchUpdate {
    /// An update inserting `graphs` and deleting nothing.
    pub fn insert_only(graphs: Vec<LabeledGraph>) -> Self {
        BatchUpdate {
            insert: graphs,
            delete: Vec::new(),
        }
    }

    /// An update deleting `ids` and inserting nothing.
    pub fn delete_only(ids: Vec<GraphId>) -> Self {
        BatchUpdate {
            insert: Vec::new(),
            delete: ids,
        }
    }

    /// Whether the batch contains no unit updates.
    pub fn is_empty(&self) -> bool {
        self.insert.is_empty() && self.delete.is_empty()
    }

    /// Total number of unit updates `|Δ⁺| + |Δ⁻|`.
    pub fn len(&self) -> usize {
        self.insert.len() + self.delete.len()
    }
}

/// A database of data graphs with stable ids and batch evolution.
///
/// Graphs are stored behind `Arc` so clusters, indices and summaries can
/// share them without copying. Iteration is in ascending id order, keeping
/// all downstream algorithms deterministic.
///
/// Every stored graph also carries a [`Csr`] twin ([`GraphDb::csr`]) built
/// at insertion and dropped at deletion, so the plan-compiled matcher
/// ([`crate::plan`]) always finds an up-to-date label-sliced view — the
/// two maps move through [`GraphDb::insert`] / [`GraphDb::remove`] /
/// [`GraphDb::apply`] together and can never diverge.
#[derive(Debug, Clone, Default)]
pub struct GraphDb {
    graphs: BTreeMap<GraphId, Arc<LabeledGraph>>,
    csrs: BTreeMap<GraphId, Arc<Csr>>,
    next_id: u64,
}

impl GraphDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a database from a collection of graphs, assigning fresh ids.
    pub fn from_graphs<I>(graphs: I) -> Self
    where
        I: IntoIterator<Item = LabeledGraph>,
    {
        let mut db = Self::new();
        for g in graphs {
            db.insert(g);
        }
        db
    }

    /// Inserts a graph, returning its new id. The CSR twin is built here,
    /// once, so readers never observe a graph without one.
    pub fn insert(&mut self, graph: LabeledGraph) -> GraphId {
        let id = GraphId(self.next_id);
        self.next_id += 1;
        self.csrs.insert(id, Arc::new(Csr::from_graph(&graph)));
        self.graphs.insert(id, Arc::new(graph));
        id
    }

    /// Removes the graph `id`, returning it if present. Its CSR twin is
    /// dropped in the same step.
    pub fn remove(&mut self, id: GraphId) -> Option<Arc<LabeledGraph>> {
        self.csrs.remove(&id);
        self.graphs.remove(&id)
    }

    /// Applies a batch update, returning the ids assigned to `Δ⁺` (in input
    /// order) and the subset of `Δ⁻` ids that were actually present.
    ///
    /// Deletions are applied first, then insertions, so a batch can never
    /// delete a graph it just inserted.
    pub fn apply(&mut self, update: BatchUpdate) -> (Vec<GraphId>, Vec<GraphId>) {
        let mut deleted = Vec::with_capacity(update.delete.len());
        for id in update.delete {
            if self.remove(id).is_some() {
                deleted.push(id);
            }
        }
        let inserted = update.insert.into_iter().map(|g| self.insert(g)).collect();
        (inserted, deleted)
    }

    /// Looks up a graph by id.
    pub fn get(&self, id: GraphId) -> Option<&Arc<LabeledGraph>> {
        self.graphs.get(&id)
    }

    /// The CSR twin of graph `id`, if the graph is live. Kept in lockstep
    /// with [`GraphDb::get`] by insert/remove/apply.
    pub fn csr(&self, id: GraphId) -> Option<&Arc<Csr>> {
        self.csrs.get(&id)
    }

    /// Whether `id` resolves to a live graph.
    pub fn contains(&self, id: GraphId) -> bool {
        self.graphs.contains_key(&id)
    }

    /// Number of graphs `|D|`.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Iterates `(id, graph)` in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (GraphId, &Arc<LabeledGraph>)> {
        self.graphs.iter().map(|(&id, g)| (id, g))
    }

    /// All live ids in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = GraphId> + '_ {
        self.graphs.keys().copied()
    }

    /// The largest graph by edge count, if any — `G_max` in the paper's
    /// complexity statements.
    pub fn largest(&self) -> Option<(GraphId, &Arc<LabeledGraph>)> {
        self.iter().max_by_key(|(_, g)| g.edge_count())
    }

    /// Total number of edges across all graphs.
    pub fn total_edges(&self) -> usize {
        self.graphs.values().map(|g| g.edge_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn tiny(label: u32) -> LabeledGraph {
        GraphBuilder::new()
            .vertices(&[label, label])
            .edge(0, 1)
            .build()
    }

    #[test]
    fn insert_assigns_monotonic_ids() {
        let mut db = GraphDb::new();
        let a = db.insert(tiny(0));
        let b = db.insert(tiny(1));
        assert!(a < b);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn ids_are_never_reused() {
        let mut db = GraphDb::new();
        let a = db.insert(tiny(0));
        db.remove(a);
        let b = db.insert(tiny(1));
        assert_ne!(a, b);
        assert!(!db.contains(a));
        assert!(db.contains(b));
    }

    #[test]
    fn apply_deletes_then_inserts() {
        let mut db = GraphDb::from_graphs([tiny(0), tiny(1)]);
        let ids: Vec<_> = db.ids().collect();
        let update = BatchUpdate {
            insert: vec![tiny(2), tiny(3)],
            delete: vec![ids[0], GraphId(999)],
        };
        let (inserted, deleted) = db.apply(update);
        assert_eq!(inserted.len(), 2);
        assert_eq!(deleted, vec![ids[0]]);
        assert_eq!(db.len(), 3);
        // The phantom id 999 was ignored.
        assert!(!db.contains(GraphId(999)));
    }

    #[test]
    fn iteration_is_in_id_order() {
        let mut db = GraphDb::new();
        for i in 0..5 {
            db.insert(tiny(i));
        }
        let ids: Vec<_> = db.ids().collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn largest_by_edge_count() {
        let mut db = GraphDb::new();
        db.insert(tiny(0));
        let big = GraphBuilder::new()
            .vertices(&[0, 0, 0])
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .build();
        let big_id = db.insert(big);
        assert_eq!(db.largest().unwrap().0, big_id);
        assert_eq!(db.total_edges(), 4);
    }

    /// The CSR map must mirror the graph map exactly: same ids, and each
    /// CSR agreeing with its graph's adjacency.
    fn assert_csr_in_sync(db: &GraphDb) {
        let graph_ids: Vec<GraphId> = db.ids().collect();
        let csr_ids: Vec<GraphId> = db.csrs.keys().copied().collect();
        assert_eq!(graph_ids, csr_ids, "csr map diverged from graph map");
        for (id, g) in db.iter() {
            let csr = db.csr(id).expect("live graph has a csr twin");
            assert_eq!(csr.vertex_count(), g.vertex_count());
            assert_eq!(csr.edge_count(), g.edge_count());
            for v in g.vertices() {
                assert_eq!(csr.label(v), g.label(v));
                let mut want: Vec<_> = g.neighbors(v).to_vec();
                want.sort_unstable();
                let mut got: Vec<_> = csr.neighbors(v).to_vec();
                got.sort_unstable();
                assert_eq!(got, want, "{id}: neighbor set of {v}");
            }
        }
    }

    #[test]
    fn csr_twins_stay_in_sync_through_batches() {
        let mut db = GraphDb::from_graphs([tiny(0), tiny(1), tiny(2)]);
        assert_csr_in_sync(&db);
        // A few insert/delete batches, including deletes of fresh ids.
        let ids: Vec<GraphId> = db.ids().collect();
        db.apply(BatchUpdate {
            insert: vec![tiny(3), tiny(4)],
            delete: vec![ids[1]],
        });
        assert_csr_in_sync(&db);
        let ids: Vec<GraphId> = db.ids().collect();
        db.apply(BatchUpdate::delete_only(vec![ids[0], ids[2], GraphId(999)]));
        assert_csr_in_sync(&db);
        db.apply(BatchUpdate::insert_only(vec![GraphBuilder::new()
            .vertices(&[0, 1, 0])
            .edge(0, 1)
            .edge(1, 2)
            .build()]));
        assert_csr_in_sync(&db);
        // Direct insert/remove too.
        let id = db.insert(tiny(7));
        assert_csr_in_sync(&db);
        db.remove(id);
        assert_csr_in_sync(&db);
    }

    #[test]
    fn batch_update_helpers() {
        let u = BatchUpdate::insert_only(vec![tiny(0)]);
        assert_eq!(u.len(), 1);
        assert!(!u.is_empty());
        let d = BatchUpdate::delete_only(vec![GraphId(0)]);
        assert_eq!(d.len(), 1);
        assert!(BatchUpdate::default().is_empty());
    }
}
