//! Labeled, undirected, simple graphs (§2.1 of the paper).
//!
//! A [`LabeledGraph`] is an undirected simple graph with labeled vertices.
//! The label of an edge `(u, v)` is the unordered pair of its endpoint
//! labels (`l(e) = l(u).l(v)` in the paper). The *size* of a graph is its
//! number of edges, `|G| = |E|`.

use crate::labels::LabelId;

/// Index of a vertex within a single [`LabeledGraph`].
pub type VertexId = u32;

/// The label of an undirected edge: the unordered pair of endpoint labels.
///
/// Stored normalized (`small ≤ large`), so `EdgeLabel::new(a, b) ==
/// EdgeLabel::new(b, a)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeLabel(pub LabelId, pub LabelId);

impl EdgeLabel {
    /// Builds a normalized edge label from two endpoint labels.
    pub fn new(a: LabelId, b: LabelId) -> Self {
        if a <= b {
            EdgeLabel(a, b)
        } else {
            EdgeLabel(b, a)
        }
    }
}

/// An undirected, simple, vertex-labeled graph.
///
/// Vertices are dense indices `0..vertex_count()`; adjacency lists are kept
/// sorted so iteration order (and therefore every algorithm built on top) is
/// deterministic. Self-loops and parallel edges are rejected.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LabeledGraph {
    labels: Vec<LabelId>,
    adj: Vec<Vec<VertexId>>,
    /// Edges stored as `(u, v)` with `u < v`, sorted lexicographically.
    edges: Vec<(VertexId, VertexId)>,
}

impl LabeledGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        LabeledGraph {
            labels: Vec::new(),
            adj: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Builds a graph from vertex labels and an edge list.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints, self-loops or duplicate edges —
    /// data graphs in the paper's model are simple graphs, and silently
    /// repairing malformed input would mask generator bugs.
    pub fn from_parts(labels: Vec<LabelId>, edge_list: &[(VertexId, VertexId)]) -> Self {
        let mut graph = LabeledGraph {
            adj: vec![Vec::new(); labels.len()],
            labels,
            edges: Vec::with_capacity(edge_list.len()),
        };
        for &(u, v) in edge_list {
            graph.add_edge(u, v);
        }
        graph
    }

    /// Adds a vertex with the given label; returns its id.
    pub fn add_vertex(&mut self, label: LabelId) -> VertexId {
        let id = self.labels.len() as VertexId;
        self.labels.push(label);
        self.adj.push(Vec::new());
        id
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, duplicate edges, or out-of-range endpoints.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        assert!(u != v, "self-loop ({u}, {v}) not allowed in a simple graph");
        let n = self.labels.len() as VertexId;
        assert!(u < n && v < n, "edge ({u}, {v}) out of range (n = {n})");
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let pos = self
            .edges
            .binary_search(&(a, b))
            .expect_err("duplicate edge not allowed in a simple graph");
        self.edges.insert(pos, (a, b));
        let pa = self.adj[a as usize].binary_search(&b).unwrap_err();
        self.adj[a as usize].insert(pa, b);
        let pb = self.adj[b as usize].binary_search(&a).unwrap_err();
        self.adj[b as usize].insert(pb, a);
    }

    /// Number of vertices `|V|`.
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges `|E|`. This is the paper's graph *size* `|G|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The label of vertex `v`.
    pub fn label(&self, v: VertexId) -> LabelId {
        self.labels[v as usize]
    }

    /// All vertex labels, indexed by vertex id.
    pub fn labels(&self) -> &[LabelId] {
        &self.labels
    }

    /// Sorted neighbors of `v`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// Whether the undirected edge `(u, v)` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.adj
            .get(u as usize)
            .is_some_and(|ns| ns.binary_search(&v).is_ok())
    }

    /// Edges as `(u, v)` pairs with `u < v`, in lexicographic order.
    pub fn edges(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// The normalized label of edge `(u, v)`.
    pub fn edge_label(&self, u: VertexId, v: VertexId) -> EdgeLabel {
        EdgeLabel::new(self.label(u), self.label(v))
    }

    /// Iterates over the labels of all edges.
    pub fn edge_labels(&self) -> impl Iterator<Item = EdgeLabel> + '_ {
        self.edges.iter().map(|&(u, v)| self.edge_label(u, v))
    }

    /// Vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.vertex_count() as VertexId
    }

    /// Density `ρ = 2|E| / (|V| (|V|−1))`, as used by the cognitive-load
    /// measure `cog(p) = |E_p| · ρ_p` (§2.2). Zero for graphs with < 2
    /// vertices.
    pub fn density(&self) -> f64 {
        let n = self.vertex_count() as f64;
        if n < 2.0 {
            return 0.0;
        }
        2.0 * self.edge_count() as f64 / (n * (n - 1.0))
    }

    /// Cognitive load `cog(G) = |E| · ρ` (§2.2).
    pub fn cognitive_load(&self) -> f64 {
        self.edge_count() as f64 * self.density()
    }

    /// Whether the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        let n = self.vertex_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0 as VertexId];
        seen[0] = true;
        let mut visited = 1;
        while let Some(v) = stack.pop() {
            for &w in self.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    visited += 1;
                    stack.push(w);
                }
            }
        }
        visited == n
    }

    /// The induced subgraph on `keep` (vertex ids of `self`), with vertices
    /// renumbered to `0..keep.len()` in the order given.
    ///
    /// # Panics
    ///
    /// Panics if `keep` contains duplicates or out-of-range ids.
    pub fn induced_subgraph(&self, keep: &[VertexId]) -> LabeledGraph {
        let mut map = vec![u32::MAX; self.vertex_count()];
        for (new, &old) in keep.iter().enumerate() {
            assert!(
                map[old as usize] == u32::MAX,
                "duplicate vertex {old} in induced_subgraph"
            );
            map[old as usize] = new as u32;
        }
        let labels = keep.iter().map(|&v| self.label(v)).collect();
        let mut sub = LabeledGraph::from_parts(labels, &[]);
        for &(u, v) in &self.edges {
            let (mu, mv) = (map[u as usize], map[v as usize]);
            if mu != u32::MAX && mv != u32::MAX {
                sub.add_edge(mu, mv);
            }
        }
        sub
    }

    /// The subgraph consisting of exactly `edge_subset` (pairs must be edges
    /// of `self`), with the incident vertices renumbered compactly.
    pub fn edge_subgraph(&self, edge_subset: &[(VertexId, VertexId)]) -> LabeledGraph {
        let mut map = std::collections::BTreeMap::new();
        for &(u, v) in edge_subset {
            assert!(self.has_edge(u, v), "({u}, {v}) is not an edge");
            map.entry(u).or_insert(0u32);
            map.entry(v).or_insert(0u32);
        }
        for (new, (_, slot)) in map.iter_mut().enumerate() {
            *slot = new as u32;
        }
        let labels = map.keys().map(|&v| self.label(v)).collect();
        let mut sub = LabeledGraph::from_parts(labels, &[]);
        let mut seen = std::collections::BTreeSet::new();
        for &(u, v) in edge_subset {
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            if seen.insert((a, b)) {
                sub.add_edge(map[&a], map[&b]);
            }
        }
        sub
    }

    /// A multiset of vertex labels as a sorted `Vec` — useful for cheap
    /// GED lower bounds and feature comparisons.
    pub fn sorted_labels(&self) -> Vec<LabelId> {
        let mut ls = self.labels.clone();
        ls.sort_unstable();
        ls
    }

    /// A multiset of edge labels as a sorted `Vec`.
    pub fn sorted_edge_labels(&self) -> Vec<EdgeLabel> {
        let mut ls: Vec<EdgeLabel> = self.edge_labels().collect();
        ls.sort_unstable();
        ls
    }
}

impl Default for LabeledGraph {
    fn default() -> Self {
        Self::new()
    }
}

/// Fluent builder for [`LabeledGraph`], convenient in tests and generators.
///
/// ```
/// use midas_graph::GraphBuilder;
/// // A triangle C-O-N.
/// let g = GraphBuilder::new()
///     .vertices(&[0, 1, 2])
///     .edge(0, 1)
///     .edge(1, 2)
///     .edge(0, 2)
///     .build();
/// assert_eq!(g.edge_count(), 3);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    graph: LabeledGraph,
}

impl GraphBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one vertex with `label`.
    #[must_use]
    pub fn vertex(mut self, label: LabelId) -> Self {
        self.graph.add_vertex(label);
        self
    }

    /// Adds a run of vertices with the given labels.
    #[must_use]
    pub fn vertices(mut self, labels: &[LabelId]) -> Self {
        for &l in labels {
            self.graph.add_vertex(l);
        }
        self
    }

    /// Adds the undirected edge `(u, v)`.
    #[must_use]
    pub fn edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.graph.add_edge(u, v);
        self
    }

    /// Adds a path along `vs` (consecutive vertices connected).
    #[must_use]
    pub fn path(mut self, vs: &[VertexId]) -> Self {
        for w in vs.windows(2) {
            self.graph.add_edge(w[0], w[1]);
        }
        self
    }

    /// Finishes the build.
    pub fn build(self) -> LabeledGraph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> LabeledGraph {
        // C - O - C
        GraphBuilder::new()
            .vertices(&[0, 1, 0])
            .path(&[0, 1, 2])
            .build()
    }

    #[test]
    fn construction_and_accessors() {
        let g = path3();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.label(1), 1);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        let mut g = LabeledGraph::new();
        g.add_vertex(0);
        g.add_edge(0, 0);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edges() {
        let mut g = LabeledGraph::new();
        g.add_vertex(0);
        g.add_vertex(1);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
    }

    #[test]
    fn edge_labels_are_normalized() {
        assert_eq!(EdgeLabel::new(3, 1), EdgeLabel::new(1, 3));
        let g = path3();
        let labels: Vec<_> = g.edge_labels().collect();
        assert_eq!(labels, vec![EdgeLabel(0, 1), EdgeLabel(0, 1)]);
    }

    #[test]
    fn density_and_cognitive_load() {
        // Triangle: density 1, cog = 3.
        let tri = GraphBuilder::new()
            .vertices(&[0, 0, 0])
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .build();
        assert!((tri.density() - 1.0).abs() < 1e-12);
        assert!((tri.cognitive_load() - 3.0).abs() < 1e-12);
        // Path of 3: density 2/3, cog = 4/3.
        let p = path3();
        assert!((p.density() - 2.0 / 3.0).abs() < 1e-12);
        assert!((p.cognitive_load() - 4.0 / 3.0).abs() < 1e-12);
        // Degenerate graphs.
        let mut single = LabeledGraph::new();
        single.add_vertex(0);
        assert_eq!(single.density(), 0.0);
    }

    #[test]
    fn connectivity() {
        assert!(path3().is_connected());
        let disconnected = GraphBuilder::new().vertices(&[0, 1]).build();
        assert!(!disconnected.is_connected());
        assert!(LabeledGraph::new().is_connected());
    }

    #[test]
    fn induced_subgraph_renumbers_and_keeps_edges() {
        let tri = GraphBuilder::new()
            .vertices(&[5, 6, 7])
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .build();
        let sub = tri.induced_subgraph(&[2, 0]);
        assert_eq!(sub.vertex_count(), 2);
        assert_eq!(sub.labels(), &[7, 5]);
        assert_eq!(sub.edge_count(), 1);
        assert!(sub.has_edge(0, 1));
    }

    #[test]
    fn edge_subgraph_keeps_only_selected_edges() {
        let tri = GraphBuilder::new()
            .vertices(&[5, 6, 7])
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .build();
        let sub = tri.edge_subgraph(&[(1, 0), (1, 2)]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        // Vertex 1 (label 6) keeps degree 2; the (0,2) edge is dropped.
        let deg2 = sub.vertices().filter(|&v| sub.degree(v) == 2).count();
        assert_eq!(deg2, 1);
    }

    #[test]
    fn sorted_label_multisets() {
        let g = GraphBuilder::new()
            .vertices(&[2, 0, 1, 0])
            .path(&[0, 1, 2, 3])
            .build();
        assert_eq!(g.sorted_labels(), vec![0, 0, 1, 2]);
        let els = g.sorted_edge_labels();
        assert_eq!(els.len(), 3);
        assert!(els.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn builder_path_helper() {
        let g = GraphBuilder::new()
            .vertices(&[0; 5])
            .path(&[0, 1, 2, 3, 4])
            .build();
        assert_eq!(g.edge_count(), 4);
        assert!(g.is_connected());
    }
}
