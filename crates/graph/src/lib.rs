//! # midas-graph
//!
//! Graph substrate for the MIDAS canned-pattern maintenance framework
//! (Huang et al., SIGMOD 2021).
//!
//! This crate provides everything the higher layers need to talk about
//! *labeled, undirected, simple graphs* the way the paper does (§2.1):
//!
//! * [`LabeledGraph`] — vertex-labeled simple graphs with interned labels,
//!   plus [`GraphBuilder`] for ergonomic construction.
//! * [`GraphDb`] — a database `D` of small/medium data graphs with stable
//!   [`GraphId`]s and batch insert/delete ([`BatchUpdate`]), matching the
//!   paper's `D ⊕ ΔD` model (§3.1).
//! * [`isomorphism`] — VF2-style subgraph isomorphism: containment tests,
//!   embedding counting and embedding enumeration (used for coverage,
//!   the TG/TP matrices of §5.1, and the formulation simulator).
//! * [`ged`] — graph edit distance: an exact branch-and-bound solver for
//!   small graphs, the label lower bound `GED_l`, and the paper's tightened
//!   bound `GED'_l` (Lemma 6.1).
//! * [`graphlets`] — exact counting of all connected 3-node and 4-node
//!   graphlets and the graphlet frequency distribution `ψ` whose Euclidean
//!   drift classifies modifications as major/minor (§3.4).
//! * [`mccs`] — maximum connected common subgraph and the `ω_MCCS`
//!   similarity used by fine clustering (§2.3).
//! * [`closure`] — extended graphs and graph closure (Fig. 4), the
//!   building block of cluster summary graphs.
//! * [`canonical`] — canonical codes for small graphs, used to
//!   de-duplicate candidate patterns.
//! * [`csr`] — per-graph compressed-sparse-row views with per-label
//!   adjacency slices, built by [`GraphDb`] at insertion and consumed by
//!   the plan-compiled matcher.
//! * [`plan`] — patterns compiled once into static [`MatchPlan`]s
//!   (vertex order + per-level candidate filters) and interpreted over
//!   CSR label slices; the default matcher (`MIDAS_MATCHER=plan|vf2`),
//!   with VF2 kept as the reference twin.
//! * [`exec`] — scoped-thread `par_map`/`par_chunks` helpers shared by
//!   every parallel `(graph × pattern)` scan in the workspace.
//! * [`cache`] — a sharded [`EmbeddingCache`] memoizing capped embedding
//!   counts per `(pattern canonical key, GraphId)`, invalidated per graph
//!   on batch updates.
//!
//! All stochastic components take explicit seeds; nothing in this crate
//! reads ambient randomness, so every experiment is reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod canonical;
pub mod closure;
pub mod csr;
pub mod db;
pub mod dot;
pub mod exec;
pub mod fasthash;
pub mod ged;
pub mod graph;
pub mod graphlets;
pub mod io;
pub mod isomorphism;
pub mod kernel;
pub mod labels;
pub mod mccs;
pub mod plan;

pub use cache::{CacheStats, CachedPattern, EmbeddingCache};
pub use canonical::CanonicalCode;
pub use closure::ClosureGraph;
pub use csr::Csr;
pub use db::{BatchUpdate, GraphDb, GraphId};
pub use exec::KernelError;
pub use graph::{EdgeLabel, GraphBuilder, LabeledGraph, VertexId};
pub use graphlets::{GraphletCounts, GraphletDistribution, GraphletKind};
pub use kernel::MatchKernel;
pub use labels::{Interner, LabelId};
pub use plan::{MatchPlan, MatcherKind};
