//! The parallel + memoized subgraph-isomorphism kernel.
//!
//! [`MatchKernel`] bundles the two ingredients every hot `(graph × pattern)`
//! scan needs — a thread count for [`crate::exec`] and a shared
//! [`EmbeddingCache`] — behind bulk operations shaped like the scans the
//! MIDAS pipeline actually runs:
//!
//! * [`MatchKernel::count_in_graphs`] — one pattern against many data
//!   graphs (a TG-matrix row, Def. 5.1);
//! * [`MatchKernel::count_grid`] — many patterns against many data graphs
//!   (TG-matrix columns for a batch of inserted graphs);
//! * [`MatchKernel::covered_in`] — coverage verification after the
//!   dominance filter (§6.1);
//! * [`MatchKernel::count_plain_many`] — one pattern against targets that
//!   have no stable [`GraphId`] (e.g. canned-pattern columns of the
//!   TP-matrix), parallel but uncached.
//!
//! Every operation is semantically identical to the serial loop over
//! [`count_embeddings`] / [`crate::isomorphism::is_subgraph_of`]; the
//! property tests in the workspace's `tests` crate pin that equivalence.

use crate::cache::{CachedPattern, EmbeddingCache};
use crate::csr::Csr;
use crate::db::GraphId;
use crate::exec::{self, KernelError};
use crate::graph::LabeledGraph;
use crate::isomorphism::count_embeddings;
use crate::plan::MatcherKind;
use std::sync::Arc;

/// Parallel, memoized bulk isomorphism operations.
#[derive(Debug, Clone)]
pub struct MatchKernel {
    threads: usize,
    matcher: MatcherKind,
    cache: Arc<EmbeddingCache>,
}

impl Default for MatchKernel {
    fn default() -> Self {
        Self::new(0)
    }
}

impl MatchKernel {
    /// A kernel with a fresh cache. `threads = 0` means auto (see
    /// [`exec::thread_count`]; the `MIDAS_THREADS` environment variable is
    /// honoured). The matcher comes from `MIDAS_MATCHER` when set,
    /// defaulting to the plan-compiled path.
    pub fn new(threads: usize) -> Self {
        Self::with_matcher(threads, MatcherKind::from_env_or_default())
    }

    /// A kernel with a fresh cache and an explicit matcher.
    pub fn with_matcher(threads: usize, matcher: MatcherKind) -> Self {
        MatchKernel {
            threads,
            matcher,
            cache: Arc::new(EmbeddingCache::new()),
        }
    }

    /// A kernel sharing an existing cache (matcher from the environment /
    /// default, as in [`MatchKernel::new`]).
    pub fn with_cache(threads: usize, cache: Arc<EmbeddingCache>) -> Self {
        MatchKernel {
            threads,
            matcher: MatcherKind::from_env_or_default(),
            cache,
        }
    }

    /// The configured thread override (0 = auto).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The matcher implementation this kernel drives.
    pub fn matcher(&self) -> MatcherKind {
        self.matcher
    }

    /// The shared embedding memo.
    pub fn cache(&self) -> &Arc<EmbeddingCache> {
        &self.cache
    }

    /// Invalidates every memoized answer about `id` — call for each graph a
    /// batch inserts or deletes, before the indices are refreshed.
    pub fn invalidate_graph(&self, id: GraphId) {
        self.cache.invalidate_graph(id);
    }

    /// Prepares a pattern for repeated cached matching.
    pub fn prepare(&self, pattern: &LabeledGraph) -> CachedPattern {
        CachedPattern::new(pattern)
    }

    /// Counts embeddings of `pattern` in each graph (saturating at `cap`),
    /// in input order — one TG-matrix row.
    pub fn count_in_graphs(
        &self,
        pattern: &LabeledGraph,
        graphs: &[(GraphId, &LabeledGraph)],
        cap: u64,
    ) -> Vec<u64> {
        let prepared = self.prepare(pattern);
        exec::par_map(self.threads, graphs, |&(id, g)| {
            self.cache
                .count_embeddings_with(self.matcher, &prepared, id, g, cap)
        })
    }

    /// Counts embeddings of every pattern in every graph: result `[i][j]`
    /// is the count of `patterns[j]` in `graphs[i]`, saturating at `cap`.
    /// Parallel over graphs (the long axis in matrix maintenance).
    pub fn count_grid(
        &self,
        patterns: &[CachedPattern],
        graphs: &[(GraphId, &LabeledGraph)],
        cap: u64,
    ) -> Vec<Vec<u64>> {
        exec::par_map(self.threads, graphs, |&(id, g)| {
            self.cache
                .count_embeddings_many_with(self.matcher, patterns, id, g, cap)
        })
    }

    /// Whether `pattern` is contained in each graph, in input order —
    /// the VF2 verification step of coverage.
    pub fn covered_in(
        &self,
        pattern: &LabeledGraph,
        graphs: &[(GraphId, &LabeledGraph)],
    ) -> Vec<bool> {
        let prepared = self.prepare(pattern);
        exec::par_map(self.threads, graphs, |&(id, g)| {
            self.cache.is_subgraph_with(self.matcher, &prepared, id, g)
        })
    }

    /// Whether any of `patterns` is contained in each graph — the
    /// `f_scov` set-coverage scan. Patterns must be pre-prepared (they are
    /// matched against every graph).
    pub fn any_covered_in(
        &self,
        patterns: &[CachedPattern],
        graphs: &[(GraphId, &LabeledGraph)],
    ) -> Vec<bool> {
        exec::par_map(self.threads, graphs, |&(id, g)| {
            patterns
                .iter()
                .any(|p| self.cache.is_subgraph_with(self.matcher, p, id, g))
        })
    }

    /// Counts embeddings of `pattern` in targets without stable ids
    /// (canned patterns): parallel, uncached, in input order.
    pub fn count_plain_many(
        &self,
        pattern: &LabeledGraph,
        targets: &[&LabeledGraph],
        cap: u64,
    ) -> Vec<u64> {
        match self.matcher {
            MatcherKind::Vf2 => {
                exec::par_map(self.threads, targets, |t| count_embeddings(pattern, t, cap))
            }
            MatcherKind::Plan => {
                // Compile once (memoized per canonical class); targets
                // have no stable id, so their CSR views are per-call.
                let plan = self.prepare(pattern).plan();
                exec::par_map(self.threads, targets, |t| {
                    plan.count_embeddings(&Csr::from_graph(t), cap)
                })
            }
        }
    }

    /// Fault-isolating twin of [`MatchKernel::count_in_graphs`]: a panic in
    /// any per-graph task (including an injected `MIDAS_FAULT` one) is
    /// contained and surfaced as a [`KernelError`] instead of aborting.
    pub fn try_count_in_graphs(
        &self,
        pattern: &LabeledGraph,
        graphs: &[(GraphId, &LabeledGraph)],
        cap: u64,
    ) -> Result<Vec<u64>, KernelError> {
        let prepared = self.prepare(pattern);
        exec::try_par_map(self.threads, graphs, |&(id, g)| {
            self.cache
                .count_embeddings_with(self.matcher, &prepared, id, g, cap)
        })
    }

    /// Fault-isolating twin of [`MatchKernel::count_grid`].
    pub fn try_count_grid(
        &self,
        patterns: &[CachedPattern],
        graphs: &[(GraphId, &LabeledGraph)],
        cap: u64,
    ) -> Result<Vec<Vec<u64>>, KernelError> {
        exec::try_par_map(self.threads, graphs, |&(id, g)| {
            self.cache
                .count_embeddings_many_with(self.matcher, patterns, id, g, cap)
        })
    }

    /// Fault-isolating twin of [`MatchKernel::covered_in`].
    pub fn try_covered_in(
        &self,
        pattern: &LabeledGraph,
        graphs: &[(GraphId, &LabeledGraph)],
    ) -> Result<Vec<bool>, KernelError> {
        let prepared = self.prepare(pattern);
        exec::try_par_map(self.threads, graphs, |&(id, g)| {
            self.cache.is_subgraph_with(self.matcher, &prepared, id, g)
        })
    }

    /// Fault-isolating twin of [`MatchKernel::any_covered_in`].
    pub fn try_any_covered_in(
        &self,
        patterns: &[CachedPattern],
        graphs: &[(GraphId, &LabeledGraph)],
    ) -> Result<Vec<bool>, KernelError> {
        exec::try_par_map(self.threads, graphs, |&(id, g)| {
            patterns
                .iter()
                .any(|p| self.cache.is_subgraph_with(self.matcher, p, id, g))
        })
    }

    /// Fault-isolating twin of [`MatchKernel::count_plain_many`].
    pub fn try_count_plain_many(
        &self,
        pattern: &LabeledGraph,
        targets: &[&LabeledGraph],
        cap: u64,
    ) -> Result<Vec<u64>, KernelError> {
        match self.matcher {
            MatcherKind::Vf2 => {
                exec::try_par_map(self.threads, targets, |t| count_embeddings(pattern, t, cap))
            }
            MatcherKind::Plan => {
                let plan = self.prepare(pattern).plan();
                exec::try_par_map(self.threads, targets, |t| {
                    plan.count_embeddings(&Csr::from_graph(t), cap)
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::isomorphism::is_subgraph_of;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn mini_db() -> Vec<(GraphId, LabeledGraph)> {
        (0..40u64)
            .map(|i| {
                let g = match i % 4 {
                    0 => path(&[0, 1, 2]),
                    1 => path(&[0, 1, 0, 1]),
                    2 => path(&[2, 2]),
                    _ => GraphBuilder::new()
                        .vertices(&[0, 0, 0])
                        .edge(0, 1)
                        .edge(1, 2)
                        .edge(0, 2)
                        .build(),
                };
                (GraphId(i), g)
            })
            .collect()
    }

    #[test]
    fn bulk_ops_match_serial_loops() {
        let db = mini_db();
        let refs: Vec<(GraphId, &LabeledGraph)> = db.iter().map(|(id, g)| (*id, g)).collect();
        let kernel = MatchKernel::new(4);
        for pattern in [path(&[0, 1]), path(&[0, 0]), path(&[9, 9])] {
            let counts = kernel.count_in_graphs(&pattern, &refs, 64);
            let covered = kernel.covered_in(&pattern, &refs);
            for (i, &(_, g)) in refs.iter().enumerate() {
                assert_eq!(counts[i], count_embeddings(&pattern, g, 64));
                assert_eq!(covered[i], is_subgraph_of(&pattern, g));
            }
        }
    }

    #[test]
    fn grid_matches_nested_loops() {
        let db = mini_db();
        let refs: Vec<(GraphId, &LabeledGraph)> = db.iter().map(|(id, g)| (*id, g)).collect();
        let kernel = MatchKernel::new(3);
        let patterns: Vec<CachedPattern> = [path(&[0, 1]), path(&[0, 0, 0])]
            .iter()
            .map(|p| kernel.prepare(p))
            .collect();
        let grid = kernel.count_grid(&patterns, &refs, 64);
        for (i, &(_, g)) in refs.iter().enumerate() {
            for (j, p) in patterns.iter().enumerate() {
                assert_eq!(grid[i][j], count_embeddings(p.graph(), g, 64));
            }
        }
    }

    #[test]
    fn repeated_scans_hit_the_cache() {
        let db = mini_db();
        let refs: Vec<(GraphId, &LabeledGraph)> = db.iter().map(|(id, g)| (*id, g)).collect();
        let kernel = MatchKernel::new(2);
        let p = path(&[0, 1]);
        kernel.count_in_graphs(&p, &refs, 64);
        let misses_after_first = kernel.cache().stats().misses;
        kernel.count_in_graphs(&p, &refs, 64);
        assert_eq!(kernel.cache().stats().misses, misses_after_first);
        // Invalidation forces exactly the touched graph to recompute.
        kernel.invalidate_graph(GraphId(0));
        kernel.count_in_graphs(&p, &refs, 64);
        assert_eq!(kernel.cache().stats().misses, misses_after_first + 1);
    }
}
