//! Canonical codes for small labeled graphs.
//!
//! Candidate patterns produced by random walks on different CSGs may be
//! isomorphic; the selection and swapping phases must treat them as one.
//! This module computes a canonical byte code via colour refinement plus
//! individualization (a miniature nauty): two graphs get the same code iff
//! they are isomorphic (respecting vertex labels).
//!
//! Intended for pattern-sized graphs (≤ `η_max` = 12 edges); the search is
//! exhaustive over refinement-compatible orderings, which is tiny for sparse
//! labeled graphs.

use crate::graph::{LabeledGraph, VertexId};
use std::sync::Arc;

/// A canonical code: equal codes ⇔ isomorphic graphs.
///
/// The byte buffer is behind an `Arc` so codes can be cloned cheaply into
/// cache keys and cross-thread work items.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonicalCode(pub Arc<[u8]>);

/// Computes the canonical code of `g`.
pub fn canonical_code(g: &LabeledGraph) -> CanonicalCode {
    let n = g.vertex_count();
    if n == 0 {
        return CanonicalCode(Arc::from(Vec::new()));
    }
    // Initial colouring by vertex label (compressed to dense ids).
    let mut colors: Vec<u32> = {
        let mut sorted: Vec<u32> = g.labels().to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        g.labels()
            .iter()
            .map(|l| sorted.binary_search(l).expect("present") as u32)
            .collect()
    };
    refine(g, &mut colors);
    let mut best: Option<Vec<u8>> = None;
    individualize(g, &colors, &mut best);
    CanonicalCode(Arc::from(best.expect("at least one ordering")))
}

/// Tests isomorphism through canonical codes.
pub fn are_isomorphic(a: &LabeledGraph, b: &LabeledGraph) -> bool {
    a.vertex_count() == b.vertex_count()
        && a.edge_count() == b.edge_count()
        && a.sorted_labels() == b.sorted_labels()
        && canonical_code(a) == canonical_code(b)
}

/// Weisfeiler–Leman colour refinement, in place, until stable.
fn refine(g: &LabeledGraph, colors: &mut [u32]) {
    let n = g.vertex_count();
    loop {
        // Signature: (own color, sorted neighbor colors).
        let mut sigs: Vec<(u32, Vec<u32>)> = (0..n)
            .map(|v| {
                let mut ns: Vec<u32> = g
                    .neighbors(v as VertexId)
                    .iter()
                    .map(|&w| colors[w as usize])
                    .collect();
                ns.sort_unstable();
                (colors[v], ns)
            })
            .collect();
        let mut sorted = sigs.clone();
        sorted.sort();
        sorted.dedup();
        let new_colors: Vec<u32> = sigs
            .drain(..)
            .map(|s| sorted.binary_search(&s).expect("present") as u32)
            .collect();
        if new_colors == colors {
            return;
        }
        colors.copy_from_slice(&new_colors);
    }
}

/// Recursive individualization–refinement: at each non-discrete partition,
/// split the first largest-ambiguity cell on each of its members, refine,
/// recurse; at discrete partitions emit the code and keep the minimum.
fn individualize(g: &LabeledGraph, colors: &[u32], best: &mut Option<Vec<u8>>) {
    let n = g.vertex_count();
    // Group vertices by color.
    let mut by_color: std::collections::BTreeMap<u32, Vec<VertexId>> = Default::default();
    for v in 0..n as VertexId {
        by_color.entry(colors[v as usize]).or_default().push(v);
    }
    // Find first non-singleton cell.
    let target = by_color.values().find(|cell| cell.len() > 1).cloned();
    match target {
        None => {
            // Discrete: order = vertices sorted by color.
            let mut order: Vec<VertexId> = (0..n as VertexId).collect();
            order.sort_by_key(|&v| colors[v as usize]);
            let code = encode(g, &order);
            if best.as_ref().is_none_or(|b| code < *b) {
                *best = Some(code);
            }
        }
        Some(cell) => {
            let max_color = *by_color.keys().last().expect("non-empty") + 1;
            for &v in &cell {
                let mut next = colors.to_vec();
                next[v as usize] = max_color;
                refine(g, &mut next);
                individualize(g, &next, best);
            }
        }
    }
}

/// Serializes the graph under a vertex ordering: vertex count, labels in
/// order, then the upper-triangular adjacency bitmap.
fn encode(g: &LabeledGraph, order: &[VertexId]) -> Vec<u8> {
    let n = order.len();
    let mut out = Vec::with_capacity(4 + 4 * n + n * n / 16 + 1);
    out.extend_from_slice(&(n as u32).to_be_bytes());
    for &v in order {
        out.extend_from_slice(&g.label(v).to_be_bytes());
    }
    let mut bitpos = 0u8;
    let mut current = 0u8;
    for i in 0..n {
        for j in i + 1..n {
            current <<= 1;
            if g.has_edge(order[i], order[j]) {
                current |= 1;
            }
            bitpos += 1;
            if bitpos == 8 {
                out.push(current);
                bitpos = 0;
                current = 0;
            }
        }
    }
    if bitpos > 0 {
        out.push(current << (8 - bitpos));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    #[test]
    fn permuted_graphs_share_code() {
        // C-O-N path in two vertex orders.
        let a = path(&[0, 1, 2]);
        let b = GraphBuilder::new()
            .vertices(&[2, 1, 0])
            .edge(0, 1)
            .edge(1, 2)
            .build();
        assert_eq!(canonical_code(&a), canonical_code(&b));
        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    fn different_labels_differ() {
        assert_ne!(
            canonical_code(&path(&[0, 1, 2])),
            canonical_code(&path(&[0, 1, 3]))
        );
    }

    #[test]
    fn different_structure_differs() {
        let p = path(&[0, 0, 0]);
        let t = GraphBuilder::new()
            .vertices(&[0, 0, 0])
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .build();
        assert_ne!(canonical_code(&p), canonical_code(&t));
        assert!(!are_isomorphic(&p, &t));
    }

    #[test]
    fn symmetric_graphs_are_handled() {
        // A same-label 6-cycle in two different orders.
        let mk = |perm: &[u32]| {
            let mut g = LabeledGraph::new();
            for _ in 0..6 {
                g.add_vertex(5);
            }
            for i in 0..6usize {
                let u = perm[i];
                let v = perm[(i + 1) % 6];
                g.add_edge(u, v);
            }
            g
        };
        let a = mk(&[0, 1, 2, 3, 4, 5]);
        let b = mk(&[3, 1, 4, 0, 5, 2]);
        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    fn claw_vs_path_same_degree_sum() {
        let claw = GraphBuilder::new()
            .vertices(&[0, 0, 0, 0])
            .edge(0, 1)
            .edge(0, 2)
            .edge(0, 3)
            .build();
        let p4 = path(&[0, 0, 0, 0]);
        assert!(!are_isomorphic(&claw, &p4));
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(
            canonical_code(&LabeledGraph::new()),
            canonical_code(&LabeledGraph::new())
        );
        let mut a = LabeledGraph::new();
        a.add_vertex(3);
        let mut b = LabeledGraph::new();
        b.add_vertex(3);
        assert!(are_isomorphic(&a, &b));
        let mut c = LabeledGraph::new();
        c.add_vertex(4);
        assert!(!are_isomorphic(&a, &c));
    }

    #[test]
    fn code_is_deterministic() {
        let g = GraphBuilder::new()
            .vertices(&[0, 1, 0, 1, 2])
            .path(&[0, 1, 2, 3])
            .edge(3, 4)
            .edge(4, 0)
            .build();
        assert_eq!(canonical_code(&g), canonical_code(&g.clone()));
    }

    #[test]
    fn label_multiset_shortcut_in_are_isomorphic() {
        // Same structure, shuffled labels -> caught before code computation.
        let a = path(&[0, 0, 1]);
        let b = path(&[1, 1, 0]);
        assert!(!are_isomorphic(&a, &b));
    }
}
