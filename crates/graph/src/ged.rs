//! Graph edit distance (GED) — exact solver and the paper's lower bounds.
//!
//! Diversity of a pattern set is defined through GED (§2.2):
//! `div(p, P\p) = min GED(p, p_i)`. Exact GED is NP-hard, so the paper
//! computes diversity with a *lower bound* `GED_l`, tightened in MIDAS to
//! `GED'_l = GED_l + n` using relaxed-edge counts (Lemma 6.1, §6.1).
//!
//! Cost model: vertex insertion / deletion / relabel cost 1 each; edge
//! insertion / deletion cost 1 each. Edge labels are derived from endpoint
//! labels (§2.1), so there is no independent edge-relabel operation.

use crate::graph::{LabeledGraph, VertexId};

/// Multiset intersection size of two sorted slices.
fn sorted_multiset_intersection<T: Ord>(a: &[T], b: &[T]) -> usize {
    let (mut i, mut j, mut common) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    common
}

/// The label-based lower bound `GED_l` (the `n = 0` case of Lemma 6.1):
///
/// `|V| = ||V_A| − |V_B|| + min(|V_A|, |V_B|) − |L(V_A) ∩ L(V_B)|`
/// (multiset intersection), plus `|E| = ||E_A| − |E_B||`.
///
/// This is a true lower bound on exact GED under the uniform cost model:
/// the vertex term counts unavoidable vertex insertions/deletions plus
/// unavoidable relabels, and the edge term counts the unavoidable edge-count
/// difference; the two cost pools are disjoint.
pub fn ged_label_lower_bound(a: &LabeledGraph, b: &LabeledGraph) -> u32 {
    let (v, e) = ged_label_parts(a, b);
    v + e
}

/// The two disjoint cost pools of `GED_l`, separately: the vertex part
/// (unavoidable vertex insert/delete/relabel operations) and the edge part
/// (the unavoidable edge-count difference). [`ged_tight_lower_bound`]
/// tightens the vertex part only, so it needs them apart.
pub fn ged_label_parts(a: &LabeledGraph, b: &LabeledGraph) -> (u32, u32) {
    let (na, nb) = (a.vertex_count(), b.vertex_count());
    let la = a.sorted_labels();
    let lb = b.sorted_labels();
    let common = sorted_multiset_intersection(&la, &lb);
    let vertex_part = na.abs_diff(nb) + na.min(nb) - common;
    let edge_part = a.edge_count().abs_diff(b.edge_count());
    (vertex_part as u32, edge_part as u32)
}

/// Number of *relaxed edges* `n` between two graphs (§6.1): edges of the
/// smaller-edge-set graph that cannot be matched to an edge of the other
/// graph with the same (endpoint-derived) label.
///
/// The paper derives `n` from PF-matrix feature embeddings; at graph level
/// this is exactly the edge-label multiset deficit: at most
/// `|L(E_i) ∩ L(E_j)|` edges can match, so `n = |E_i| − |L(E_i) ∩ L(E_j)|`.
pub fn relaxed_edge_count(a: &LabeledGraph, b: &LabeledGraph) -> u32 {
    let ea = a.sorted_edge_labels();
    let eb = b.sorted_edge_labels();
    let common = sorted_multiset_intersection(&ea, &eb);
    (ea.len().min(eb.len()) - common.min(ea.len().min(eb.len()))) as u32
}

/// Combines the `GED_l` parts with a relaxed-edge count `n` into the
/// tightened — and still *admissible* — bound used by
/// [`ged_tight_lower_bound`]:
///
/// `GED'_l = max(vertex_part, ⌈n / d_max⌉) + edge_part`.
///
/// Soundness: every relaxed edge of the smaller-edge-set graph `S` must be
/// either deleted (edge cost 1 each, beyond `edge_part`, which only counts
/// the *net* count difference) or have an endpoint relabeled/deleted
/// (vertex cost 1, repairing at most `d_max = max degree of S` incident
/// edges at once). If `k` relaxed edges are deleted, the path pays at least
/// `k` extra edge operations plus `⌈(n−k)/d_max⌉` vertex operations, which
/// is never below `⌈n/d_max⌉`; and the vertex pool independently costs at
/// least `vertex_part`. Taking the max (the two lower bounds share the
/// vertex-operation pool) plus the disjoint `edge_part` stays below exact
/// GED. The paper's additive Lemma 6.1 form (`GED_l + n`) over-counts when
/// one relabel repairs several mismatched edge labels — edge labels are
/// *derived* from endpoint labels here (§2.1) — so it can exceed exact GED;
/// this form cannot.
pub fn ged_tight_from_parts(
    vertex_part: u32,
    edge_part: u32,
    relaxed: u32,
    max_degree: u32,
) -> u32 {
    let d = max_degree.max(1);
    vertex_part.max(relaxed.div_ceil(d)) + edge_part
}

/// Maximum vertex degree of `g` (0 for an edgeless graph).
fn max_degree(g: &LabeledGraph) -> u32 {
    (0..g.vertex_count() as VertexId)
        .map(|v| g.neighbors(v).len() as u32)
        .max()
        .unwrap_or(0)
}

/// MIDAS's tightened lower bound `GED'_l` (Lemma 6.1), made admissible:
/// the relaxed-edge count `n` is folded in through
/// [`ged_tight_from_parts`] instead of the paper's additive `GED_l + n`,
/// so `GED_l ≤ GED'_l ≤ exact GED` always holds (property-tested in the
/// workspace's `tests` crate and cross-checked by the oracle harness).
///
/// This is the quantity MIDAS plugs into diversity computations.
pub fn ged_tight_lower_bound(a: &LabeledGraph, b: &LabeledGraph) -> u32 {
    let (vertex_part, edge_part) = ged_label_parts(a, b);
    let relaxed = relaxed_edge_count(a, b);
    // `n` counts edges of the smaller-edge-set graph; its max degree is the
    // repair fan-out the soundness argument needs.
    let small = if a.edge_count() <= b.edge_count() {
        a
    } else {
        b
    };
    ged_tight_from_parts(vertex_part, edge_part, relaxed, max_degree(small))
}

/// Exact GED by branch-and-bound over vertex assignments.
///
/// Returns `None` if the distance exceeds `limit` (use `u32::MAX` for an
/// unbounded search). Exponential in `|V_A|`; intended for validation and
/// property tests on graphs with ≤ ~8 vertices, exactly the role exact GED
/// plays in the paper (it is never computed at scale there either).
pub fn ged_exact_bounded(a: &LabeledGraph, b: &LabeledGraph, limit: u32) -> Option<u32> {
    // Map vertices of A in order; each maps to an unused B vertex or ε.
    let na = a.vertex_count();
    let nb = b.vertex_count();
    let mut best = limit.saturating_add(1);
    let mut mapping: Vec<u32> = vec![u32::MAX; na]; // u32::MAX - 1 encodes ε
    const EPS: u32 = u32::MAX - 1;
    let mut used = vec![false; nb];

    // Admissible heuristic on remaining vertex costs: label-multiset deficit.
    fn vertex_heuristic(a: &LabeledGraph, b: &LabeledGraph, depth: usize, used: &[bool]) -> u32 {
        let mut ra: Vec<u32> = (depth..a.vertex_count())
            .map(|v| a.label(v as VertexId))
            .collect();
        let mut rb: Vec<u32> = (0..b.vertex_count())
            .filter(|&v| !used[v])
            .map(|v| b.label(v as VertexId))
            .collect();
        ra.sort_unstable();
        rb.sort_unstable();
        let common = sorted_multiset_intersection(&ra, &rb);
        (ra.len().abs_diff(rb.len()) + ra.len().min(rb.len()) - common) as u32
    }

    #[allow(clippy::too_many_arguments)]
    fn rec(
        a: &LabeledGraph,
        b: &LabeledGraph,
        depth: usize,
        cost: u32,
        mapping: &mut [u32],
        used: &mut [bool],
        best: &mut u32,
    ) {
        const EPS: u32 = u32::MAX - 1;
        if cost >= *best {
            return;
        }
        let na = a.vertex_count();
        if depth == na {
            // Remaining B vertices are insertions; B edges not yet accounted
            // for (incident to an unused vertex) are insertions too.
            let mut total = cost;
            total += used.iter().filter(|&&u| !u).count() as u32;
            for &(x, y) in b.edges() {
                if !used[x as usize] || !used[y as usize] {
                    total += 1;
                }
            }
            if total < *best {
                *best = total;
            }
            return;
        }
        if cost + vertex_heuristic(a, b, depth, used) >= *best {
            return;
        }
        let av = depth as VertexId;
        // Try mapping av to each unused B vertex.
        for bv in 0..b.vertex_count() as VertexId {
            if used[bv as usize] {
                continue;
            }
            let mut step = u32::from(a.label(av) != b.label(bv));
            // Edge deletions: A edges (w, av) with w already decided.
            for &w in a.neighbors(av) {
                if (w as usize) < depth {
                    let img = mapping[w as usize];
                    if img == EPS || !b.has_edge(img, bv) {
                        step += 1;
                    }
                }
            }
            // Edge insertions: B edges (x, bv) with x an image of a decided A
            // vertex w such that (w, av) is not an A edge.
            for &x in b.neighbors(bv) {
                if used[x as usize] {
                    let w = mapping[..depth]
                        .iter()
                        .position(|&m| m == x)
                        .expect("used image must have a preimage");
                    if !a.has_edge(w as VertexId, av) {
                        step += 1;
                    }
                }
            }
            mapping[depth] = bv;
            used[bv as usize] = true;
            rec(a, b, depth + 1, cost + step, mapping, used, best);
            used[bv as usize] = false;
            mapping[depth] = u32::MAX;
        }
        // Try deleting av: the vertex plus every edge to a decided vertex.
        let mut step = 1;
        for &w in a.neighbors(av) {
            if (w as usize) < depth {
                step += 1;
            }
        }
        mapping[depth] = EPS;
        rec(a, b, depth + 1, cost + step, mapping, used, best);
        mapping[depth] = u32::MAX;
    }

    let _ = EPS;
    rec(a, b, 0, 0, &mut mapping, &mut used, &mut best);
    (best <= limit).then_some(best)
}

/// Exact GED with no limit. See [`ged_exact_bounded`].
pub fn ged_exact(a: &LabeledGraph, b: &LabeledGraph) -> u32 {
    ged_exact_bounded(a, b, u32::MAX - 2).expect("unbounded search always returns")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn triangle(l: u32) -> LabeledGraph {
        GraphBuilder::new()
            .vertices(&[l, l, l])
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .build()
    }

    #[test]
    fn identical_graphs_have_zero_distance() {
        let g = path(&[0, 1, 2]);
        assert_eq!(ged_exact(&g, &g), 0);
        assert_eq!(ged_label_lower_bound(&g, &g), 0);
        assert_eq!(ged_tight_lower_bound(&g, &g), 0);
    }

    #[test]
    fn single_relabel_costs_one() {
        let a = path(&[0, 1, 0]);
        let b = path(&[0, 2, 0]);
        assert_eq!(ged_exact(&a, &b), 1);
    }

    #[test]
    fn edge_insertion_costs_one() {
        let a = path(&[0, 0, 0]); // 2 edges
        let b = triangle(0); // 3 edges
        assert_eq!(ged_exact(&a, &b), 1);
        assert_eq!(ged_label_lower_bound(&a, &b), 1);
    }

    #[test]
    fn vertex_insertion_with_edge() {
        let a = path(&[0, 0]);
        let b = path(&[0, 0, 0]);
        // Insert one vertex and one edge.
        assert_eq!(ged_exact(&a, &b), 2);
    }

    #[test]
    fn distance_is_symmetric_on_samples() {
        let gs = [
            path(&[0, 1, 0]),
            triangle(0),
            path(&[1, 1]),
            path(&[0, 1, 2, 0]),
        ];
        for x in &gs {
            for y in &gs {
                assert_eq!(ged_exact(x, y), ged_exact(y, x), "x={x:?} y={y:?}");
            }
        }
    }

    #[test]
    fn lower_bounds_never_exceed_exact() {
        let gs = [
            path(&[0, 1, 0]),
            triangle(0),
            triangle(1),
            path(&[1, 1]),
            path(&[0, 1, 2, 0]),
            GraphBuilder::new()
                .vertices(&[0, 1, 1, 2])
                .edge(0, 1)
                .edge(0, 2)
                .edge(0, 3)
                .build(),
        ];
        for x in &gs {
            for y in &gs {
                let exact = ged_exact(x, y);
                assert!(
                    ged_label_lower_bound(x, y) <= exact,
                    "GED_l violated for {x:?} vs {y:?}"
                );
                assert!(ged_tight_lower_bound(x, y) >= ged_label_lower_bound(x, y));
                assert!(
                    ged_tight_lower_bound(x, y) <= exact,
                    "GED'_l inadmissible for {x:?} vs {y:?}"
                );
            }
        }
    }

    #[test]
    fn bounded_search_gives_none_beyond_limit() {
        let a = path(&[0, 0]);
        let b = triangle(1);
        let exact = ged_exact(&a, &b);
        assert!(exact > 1);
        assert_eq!(ged_exact_bounded(&a, &b, 1), None);
        assert_eq!(ged_exact_bounded(&a, &b, exact), Some(exact));
    }

    #[test]
    fn relaxed_edges_count_label_deficit() {
        // a: edges (0,0),(0,0); b: edges (0,1),(0,1) -> no common labels.
        let a = path(&[0, 0, 0]);
        let b = path(&[0, 1, 0]);
        assert_eq!(relaxed_edge_count(&a, &b), 2);
        // Identical edge label multisets -> 0 relaxed edges.
        assert_eq!(relaxed_edge_count(&a, &a), 0);
    }

    #[test]
    fn tight_bound_stays_admissible_under_relaxation() {
        // Regression: the paper's additive `GED_l + n` gave 1 + 2 = 3 here,
        // but one middle-vertex relabel transforms a into b (exact = 1) —
        // the bound was not a lower bound. The repaired form caps the
        // relaxation by the repair fan-out `d_max`.
        let a = path(&[0, 0, 0]);
        let b = path(&[0, 1, 0]);
        assert_eq!(relaxed_edge_count(&a, &b), 2);
        assert_eq!(ged_exact(&a, &b), 1);
        let tight = ged_tight_lower_bound(&a, &b);
        assert!(tight <= ged_exact(&a, &b), "admissible");
        assert!(tight >= ged_label_lower_bound(&a, &b));
        assert_eq!(tight, 1);
    }

    #[test]
    fn tight_bound_improves_on_label_bound() {
        // Equal vertex-label multisets (vertex_part = 0) and equal edge
        // counts (edge_part = 0), but mismatched edge labels: GED_l = 0,
        // while the relaxation proves at least one operation is needed.
        let a = path(&[0, 1, 0, 1]); // edges (0,1) ×3
        let b = path(&[0, 0, 1, 1]); // edges (0,0), (0,1), (1,1)
        assert_eq!(ged_label_lower_bound(&a, &b), 0);
        let tight = ged_tight_lower_bound(&a, &b);
        assert!(tight >= 1, "relaxed edges force work");
        assert!(tight <= ged_exact(&a, &b), "still admissible");
    }

    #[test]
    fn empty_graph_distance_is_build_cost() {
        let e = LabeledGraph::new();
        let t = triangle(0);
        // 3 vertex insertions + 3 edge insertions.
        assert_eq!(ged_exact(&e, &t), 6);
        assert_eq!(ged_label_lower_bound(&e, &t), 6);
    }
}
