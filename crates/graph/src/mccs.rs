//! Maximum connected common subgraph (MCCS) and the `ω_MCCS` similarity
//! used by fine clustering (§2.3, Shang et al. \[35\]).
//!
//! `ω_MCCS(G₁, G₂) = |G_MCCS| / min(|G₁|, |G₂|)` where graph size is edge
//! count. Exact MCCS is NP-hard; we run a complete branch-and-bound search
//! under a node *budget* — with a generous budget the result is exact on
//! molecule-sized graphs, and when the budget trips we return the best
//! connected common subgraph found so far (a lower bound, which biases
//! `ω_MCCS` conservatively; see DESIGN.md §5).

use crate::graph::{LabeledGraph, VertexId};

/// Result of an MCCS search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MccsResult {
    /// Number of edges in the best connected common subgraph found.
    pub edges: usize,
    /// Whether the search ran to completion (result is exact).
    pub exact: bool,
}

struct Search<'a> {
    g1: &'a LabeledGraph,
    g2: &'a LabeledGraph,
    map1: Vec<u32>,
    used2: Vec<bool>,
    matched: usize,
    best: usize,
    budget: u64,
    exhausted: bool,
}

const UNMAPPED: u32 = u32::MAX;

impl Search<'_> {
    /// Upper bound on the total matched edges attainable from this state:
    /// currently matched edges plus every G1 edge with at least one
    /// unmapped endpoint (edges with both endpoints mapped are decided —
    /// either counted in `matched` or lost).
    fn upper_bound(&self) -> usize {
        let mut potential = 0;
        for &(u, v) in self.g1.edges() {
            let (mu, mv) = (self.map1[u as usize], self.map1[v as usize]);
            if mu == UNMAPPED || mv == UNMAPPED {
                potential += 1;
            }
        }
        self.matched + potential
    }

    /// Branches over every `(frontier vertex, image)` pair with positive
    /// edge gain (any label-compatible pair for the seed). Recording at
    /// node entry makes "stop here" implicit, so every connected common
    /// subgraph — which always admits a connected build order — is
    /// reachable; no vertex choice is ever committed permanently.
    fn run(&mut self) {
        if self.budget == 0 {
            self.exhausted = true;
            return;
        }
        self.budget -= 1;
        self.best = self.best.max(self.matched);
        if self.upper_bound() <= self.best {
            return;
        }
        let any_mapped = self.map1.iter().any(|&m| m != UNMAPPED);
        for u in 0..self.g1.vertex_count() as VertexId {
            if self.map1[u as usize] != UNMAPPED {
                continue;
            }
            if any_mapped
                && !self
                    .g1
                    .neighbors(u)
                    .iter()
                    .any(|&w| self.map1[w as usize] != UNMAPPED)
            {
                continue; // not on the frontier
            }
            for v in 0..self.g2.vertex_count() as VertexId {
                if self.used2[v as usize] || self.g2.label(v) != self.g1.label(u) {
                    continue;
                }
                let gain = self
                    .g1
                    .neighbors(u)
                    .iter()
                    .filter(|&&w| {
                        let img = self.map1[w as usize];
                        img != UNMAPPED && self.g2.has_edge(img, v)
                    })
                    .count();
                // Connected growth: after the seed, a new pair must attach
                // by at least one matched edge.
                if any_mapped && gain == 0 {
                    continue;
                }
                self.map1[u as usize] = v;
                self.used2[v as usize] = true;
                self.matched += gain;
                self.run();
                self.matched -= gain;
                self.used2[v as usize] = false;
                self.map1[u as usize] = UNMAPPED;
                if self.exhausted {
                    return;
                }
            }
        }
    }
}

/// Computes (a lower bound of) the MCCS edge count between `a` and `b`.
///
/// `budget` caps branch-and-bound node expansions; `exact` in the result
/// tells whether the search completed.
pub fn mccs_edges(a: &LabeledGraph, b: &LabeledGraph, budget: u64) -> MccsResult {
    if a.edge_count() == 0 || b.edge_count() == 0 {
        return MccsResult {
            edges: 0,
            exact: true,
        };
    }
    // Search from the smaller-vertex-count side for a smaller branching tree.
    let (g1, g2) = if a.vertex_count() <= b.vertex_count() {
        (a, b)
    } else {
        (b, a)
    };
    let mut search = Search {
        g1,
        g2,
        map1: vec![UNMAPPED; g1.vertex_count()],
        used2: vec![false; g2.vertex_count()],
        matched: 0,
        best: 0,
        budget,
        exhausted: false,
    };
    search.run();
    MccsResult {
        edges: search.best,
        exact: !search.exhausted,
    }
}

/// MCCS similarity `ω_MCCS(G₁, G₂) = |G_MCCS| / min(|G₁|, |G₂|)` (§2.3).
///
/// Returns 0 when either graph has no edges.
pub fn mccs_similarity(a: &LabeledGraph, b: &LabeledGraph, budget: u64) -> f64 {
    let denom = a.edge_count().min(b.edge_count());
    if denom == 0 {
        return 0.0;
    }
    mccs_edges(a, b, budget).edges as f64 / denom as f64
}

/// Default node budget: ample for molecule-sized graphs, bounded for
/// adversarial inputs.
pub const DEFAULT_MCCS_BUDGET: u64 = 20_000;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn triangle(l: u32) -> LabeledGraph {
        GraphBuilder::new()
            .vertices(&[l, l, l])
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .build()
    }

    #[test]
    fn identical_graphs_share_everything() {
        let g = path(&[0, 1, 0, 2]);
        let r = mccs_edges(&g, &g, DEFAULT_MCCS_BUDGET);
        assert!(r.exact);
        assert_eq!(r.edges, 3);
        assert!((mccs_similarity(&g, &g, DEFAULT_MCCS_BUDGET) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subgraph_relationship() {
        let small = path(&[0, 0, 0]);
        let big = triangle(0);
        let r = mccs_edges(&small, &big, DEFAULT_MCCS_BUDGET);
        assert_eq!(r.edges, 2);
        assert!((mccs_similarity(&small, &big, DEFAULT_MCCS_BUDGET) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_labels_share_nothing() {
        let a = path(&[0, 0, 0]);
        let b = path(&[1, 1, 1]);
        assert_eq!(mccs_edges(&a, &b, DEFAULT_MCCS_BUDGET).edges, 0);
        assert_eq!(mccs_similarity(&a, &b, DEFAULT_MCCS_BUDGET), 0.0);
    }

    #[test]
    fn common_subgraph_must_be_connected() {
        // a: two C-O edges joined via N; b: two C-O edges joined via S.
        // The shared structure C-O ... O-C is disconnected without the
        // middle vertex, so MCCS is a single connected piece of 2 edges
        // (O-C plus C's other O? no: labels force C-O edges only).
        let a = path(&[0, 1, 2, 1, 0]); // C O N O C
        let b = path(&[0, 1, 3, 1, 0]); // C O S O C
        let r = mccs_edges(&a, &b, DEFAULT_MCCS_BUDGET);
        assert!(r.exact);
        // Connected common pieces: "C-O" (1 edge). Two of them exist but a
        // connected subgraph can only use one side.
        assert_eq!(r.edges, 1);
    }

    #[test]
    fn partial_overlap() {
        // Shared triangle with different tails.
        let a = GraphBuilder::new()
            .vertices(&[0, 0, 0, 1])
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .edge(2, 3)
            .build();
        let b = GraphBuilder::new()
            .vertices(&[0, 0, 0, 2])
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .edge(2, 3)
            .build();
        let r = mccs_edges(&a, &b, DEFAULT_MCCS_BUDGET);
        assert!(r.exact);
        assert_eq!(r.edges, 3); // the triangle
        assert!((mccs_similarity(&a, &b, DEFAULT_MCCS_BUDGET) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_graphs() {
        let e = LabeledGraph::new();
        let g = triangle(0);
        let r = mccs_edges(&e, &g, DEFAULT_MCCS_BUDGET);
        assert_eq!(r.edges, 0);
        assert!(r.exact);
    }

    #[test]
    fn budget_zero_reports_inexact() {
        let g = triangle(0);
        let r = mccs_edges(&g, &g, 0);
        assert!(!r.exact);
        assert_eq!(r.edges, 0);
    }

    #[test]
    fn regression_late_frontier_vertex() {
        // Found by proptest: the optimal mapping requires placing a vertex
        // that is unmatchable when first reached (its only matched edge
        // appears after a later neighbor is mapped). A lowest-id branching
        // with permanent exclusion returns 2 instead of 3 here.
        let a = GraphBuilder::new()
            .vertices(&[0, 0, 1, 1, 0])
            .edge(0, 1)
            .edge(0, 3)
            .edge(1, 2)
            .edge(2, 3)
            .edge(3, 4)
            .build();
        let b = GraphBuilder::new()
            .vertices(&[0, 0, 0, 0, 1])
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .edge(2, 4)
            .edge(3, 4)
            .build();
        let ab = mccs_edges(&a, &b, DEFAULT_MCCS_BUDGET);
        let ba = mccs_edges(&b, &a, DEFAULT_MCCS_BUDGET);
        assert!(ab.exact && ba.exact);
        assert_eq!(ab.edges, 3, "C-C-N-C path is common");
        assert_eq!(ba.edges, 3);
    }

    #[test]
    fn symmetric() {
        let a = path(&[0, 1, 0, 1]);
        let b = triangle(0);
        assert_eq!(
            mccs_edges(&a, &b, DEFAULT_MCCS_BUDGET).edges,
            mccs_edges(&b, &a, DEFAULT_MCCS_BUDGET).edges
        );
    }
}
