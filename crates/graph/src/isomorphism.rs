//! Subgraph isomorphism (VF2-style backtracking, Cordella et al. \[17\]).
//!
//! The paper uses subgraph isomorphism in three places:
//!
//! * coverage — "a pattern `p` covers `G` if `G` contains a subgraph
//!   isomorphic to `p`" (§2.2), i.e. a *monomorphism* from `p` into `G`;
//! * embedding counts for the TG/TP/EG/EP matrices (§5.1);
//! * the formulation simulator, which needs the actual embeddings.
//!
//! This module implements label- and degree-pruned backtracking with a
//! connectivity-aware matching order. Pattern graphs here are small
//! (≤ `η_max` = 12 edges), so worst-case exponential behaviour never
//! materializes in practice — exactly the observation the paper makes after
//! Lemma 5.3.

use crate::graph::{EdgeLabel, LabeledGraph, VertexId};
use crate::labels::LabelId;
use std::collections::BTreeMap;

/// A cheap necessary-condition summary of a graph for subgraph-isomorphism
/// quick rejection.
///
/// For `pattern ⊆ target` (non-induced) to hold, all of the following must:
///
/// * **label multiset** — the target has at least as many vertices of every
///   label as the pattern;
/// * **degree sequences** — within each label class, the descending degree
///   sequences are pairwise dominated (`p_i ≤ t_i`). Any embedding maps a
///   pattern vertex of degree `d` to a same-labeled target vertex of degree
///   `≥ d`, injectively, and a greedy/Hall argument shows such an injection
///   exists only under pairwise dominance of the sorted sequences;
/// * **edge-label multiset** — every pattern edge label occurs in the target
///   at least as often.
///
/// These checks are sound (they never reject a true embedding) and run in
/// `O(V + E)` after construction, skipping the VF2 search entirely for most
/// incompatible `(pattern, graph)` pairs in a matrix scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphSignature {
    /// Per vertex label: degrees of that label class, sorted descending.
    label_degrees: BTreeMap<LabelId, Vec<u32>>,
    /// Edge-label multiset as counts.
    edge_labels: BTreeMap<EdgeLabel, u32>,
}

impl GraphSignature {
    /// Builds the signature of `g`.
    pub fn of(g: &LabeledGraph) -> Self {
        let mut label_degrees: BTreeMap<LabelId, Vec<u32>> = BTreeMap::new();
        for v in g.vertices() {
            label_degrees
                .entry(g.label(v))
                .or_default()
                .push(g.degree(v) as u32);
        }
        for degs in label_degrees.values_mut() {
            degs.sort_unstable_by(|a, b| b.cmp(a));
        }
        let mut edge_labels: BTreeMap<EdgeLabel, u32> = BTreeMap::new();
        for el in g.edge_labels() {
            *edge_labels.entry(el).or_insert(0) += 1;
        }
        GraphSignature {
            label_degrees,
            edge_labels,
        }
    }

    /// Whether a graph with signature `self` **may** embed into one with
    /// signature `target` — `false` guarantees there is no embedding; `true`
    /// is inconclusive.
    pub fn may_embed_in(&self, target: &GraphSignature) -> bool {
        for (label, pdegs) in &self.label_degrees {
            let Some(tdegs) = target.label_degrees.get(label) else {
                return false;
            };
            if pdegs.len() > tdegs.len() {
                return false;
            }
            // Both sorted descending: pairwise dominance.
            if pdegs.iter().zip(tdegs).any(|(p, t)| p > t) {
                return false;
            }
        }
        for (el, pcount) in &self.edge_labels {
            if target.edge_labels.get(el).copied().unwrap_or(0) < *pcount {
                return false;
            }
        }
        true
    }
}

/// Returns `true` if `pattern` is subgraph-isomorphic to `target`
/// (`pattern ⊆ target` in the paper's notation).
///
/// Matching is *non-induced*: every pattern edge must be present between the
/// mapped images, but extra target edges are allowed.
pub fn is_subgraph_of(pattern: &LabeledGraph, target: &LabeledGraph) -> bool {
    let mut found = false;
    search(pattern, target, &mut |_| {
        found = true;
        Control::Stop
    });
    found
}

/// Counts embeddings (distinct injective mappings) of `pattern` in `target`,
/// saturating at `cap`.
///
/// Embeddings are counted per *mapping*, so a pattern with automorphisms is
/// counted once per automorphic image — this matches the "number of
/// embeddings" stored in the paper's TG/TP matrices (Def. 5.1).
pub fn count_embeddings(pattern: &LabeledGraph, target: &LabeledGraph, cap: u64) -> u64 {
    if cap == 0 {
        return 0;
    }
    let mut count = 0;
    search(pattern, target, &mut |_| {
        count += 1;
        if count >= cap {
            Control::Stop
        } else {
            Control::Continue
        }
    });
    count
}

/// Returns one embedding of `pattern` in `target` as a map
/// `pattern vertex -> target vertex`, if any exists.
pub fn find_embedding(pattern: &LabeledGraph, target: &LabeledGraph) -> Option<Vec<VertexId>> {
    let mut result = None;
    search(pattern, target, &mut |mapping| {
        result = Some(mapping.to_vec());
        Control::Stop
    });
    result
}

/// Collects up to `limit` embeddings of `pattern` in `target`.
pub fn find_embeddings(
    pattern: &LabeledGraph,
    target: &LabeledGraph,
    limit: usize,
) -> Vec<Vec<VertexId>> {
    let mut result = Vec::new();
    if limit == 0 {
        return result;
    }
    search(pattern, target, &mut |mapping| {
        result.push(mapping.to_vec());
        if result.len() >= limit {
            Control::Stop
        } else {
            Control::Continue
        }
    });
    result
}

/// Visitor control for [`for_each_embedding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep enumerating embeddings.
    Continue,
    /// Stop the search immediately.
    Stop,
}

/// Invokes `visit` with each embedding (`pattern vertex -> target vertex`)
/// until exhaustion or until the visitor returns [`Control::Stop`].
pub fn for_each_embedding<F>(pattern: &LabeledGraph, target: &LabeledGraph, visit: &mut F)
where
    F: FnMut(&[VertexId]) -> Control,
{
    search(pattern, target, visit);
}

/// Computes a matching order over the pattern vertices: each vertex (after
/// the first of its connected component) is adjacent to at least one earlier
/// vertex, and high-degree vertices come first. Returns, for each position,
/// the vertex and its already-ordered neighbors.
fn matching_order(pattern: &LabeledGraph) -> Vec<(VertexId, Vec<VertexId>)> {
    let n = pattern.vertex_count();
    let mut order: Vec<(VertexId, Vec<VertexId>)> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let mut placed_count = 0;
    while placed_count < n {
        // Pick the best next vertex: prefer most already-placed neighbors
        // (never start a fresh component while an anchored vertex exists),
        // then highest degree, then lowest id (determinism).
        let v = (0..n as VertexId)
            .filter(|&v| !placed[v as usize])
            .max_by_key(|&v| {
                let anchored = pattern
                    .neighbors(v)
                    .iter()
                    .filter(|&&w| placed[w as usize])
                    .count();
                (anchored, pattern.degree(v), std::cmp::Reverse(v))
            })
            .expect("unplaced vertex must exist");
        let anchors: Vec<VertexId> = pattern
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| placed[w as usize])
            .collect();
        placed[v as usize] = true;
        placed_count += 1;
        order.push((v, anchors));
    }
    order
}

fn search<F>(pattern: &LabeledGraph, target: &LabeledGraph, visit: &mut F)
where
    F: FnMut(&[VertexId]) -> Control,
{
    let pn = pattern.vertex_count();
    if pn == 0 {
        // The empty pattern has exactly one (empty) embedding everywhere.
        visit(&[]);
        return;
    }
    if pn > target.vertex_count() || pattern.edge_count() > target.edge_count() {
        midas_obs::counter_add!("vf2.size_rejects", 1);
        return;
    }
    if !GraphSignature::of(pattern).may_embed_in(&GraphSignature::of(target)) {
        midas_obs::counter_add!("vf2.prefilter_rejects", 1);
        return;
    }
    let order = matching_order(pattern);
    let mut mapping = vec![u32::MAX; pn]; // pattern -> target
    let mut used = vec![false; target.vertex_count()];
    let mut nodes = 0u64;
    // Wall-clock probe for the latency percentiles; the `Instant` reads
    // only happen when telemetry is on, so the disabled path stays at one
    // relaxed atomic load per probe.
    let timed = midas_obs::enabled();
    let start = timed.then(std::time::Instant::now);
    backtrack(
        pattern,
        target,
        &order,
        0,
        &mut mapping,
        &mut used,
        &mut nodes,
        visit,
    );
    if let Some(start) = start {
        let elapsed_ns = start.elapsed().as_nanos() as u64;
        midas_obs::histogram_record!("vf2.search_ns", elapsed_ns);
        // Tail attribution: the exemplar reservoir keeps the slowest
        // searches tagged with the (pattern, graph) context set by the
        // embedding cache. Handle cached; sub-threshold offers are one
        // relaxed load.
        static SLOW: std::sync::OnceLock<&'static midas_obs::exemplar::Series> =
            std::sync::OnceLock::new();
        SLOW.get_or_init(|| midas_obs::exemplar::series("vf2.search_ns", "ns"))
            .offer(elapsed_ns);
    }
    midas_obs::counter_add!("vf2.searches", 1);
    midas_obs::counter_add!("vf2.nodes", nodes);
    midas_obs::histogram_record!("vf2.nodes_per_search", nodes);
}

#[allow(clippy::too_many_arguments)]
fn backtrack<F>(
    pattern: &LabeledGraph,
    target: &LabeledGraph,
    order: &[(VertexId, Vec<VertexId>)],
    depth: usize,
    mapping: &mut [u32],
    used: &mut [bool],
    nodes: &mut u64,
    visit: &mut F,
) -> Control
where
    F: FnMut(&[VertexId]) -> Control,
{
    *nodes += 1;
    if depth == order.len() {
        return visit(mapping);
    }
    let (pv, anchors) = &order[depth];
    let plabel = pattern.label(*pv);
    let pdeg = pattern.degree(*pv);

    // Candidate targets: neighbors of an anchor image if anchored, else all.
    let run = |cand: VertexId,
               mapping: &mut [u32],
               used: &mut [bool],
               nodes: &mut u64,
               visit: &mut F|
     -> Control {
        if used[cand as usize] || target.label(cand) != plabel || target.degree(cand) < pdeg {
            return Control::Continue;
        }
        // Every already-mapped pattern neighbor must be a target neighbor.
        for &a in anchors {
            let image = mapping[a as usize];
            if !target.has_edge(image, cand) {
                return Control::Continue;
            }
        }
        mapping[*pv as usize] = cand;
        used[cand as usize] = true;
        let ctl = backtrack(
            pattern,
            target,
            order,
            depth + 1,
            mapping,
            used,
            nodes,
            visit,
        );
        mapping[*pv as usize] = u32::MAX;
        used[cand as usize] = false;
        ctl
    };

    if let Some(&first_anchor) = anchors.first() {
        let image = mapping[first_anchor as usize];
        // Clone-free iteration: neighbors() borrows target immutably only.
        for i in 0..target.neighbors(image).len() {
            let cand = target.neighbors(image)[i];
            if run(cand, mapping, used, nodes, visit) == Control::Stop {
                return Control::Stop;
            }
        }
    } else {
        for cand in 0..target.vertex_count() as VertexId {
            if run(cand, mapping, used, nodes, visit) == Control::Stop {
                return Control::Stop;
            }
        }
    }
    Control::Continue
}

/// Brute-force embedding count for testing: tries every injective mapping.
///
/// Exponential; only usable on graphs with ≤ ~8 vertices. Exposed (not
/// `cfg(test)`) so property tests in other crates can cross-check VF2.
pub fn count_embeddings_brute_force(pattern: &LabeledGraph, target: &LabeledGraph) -> u64 {
    let pn = pattern.vertex_count();
    let tn = target.vertex_count();
    if pn > tn {
        return 0;
    }
    let mut count = 0;
    let mut mapping = vec![u32::MAX; pn];
    let mut used = vec![false; tn];
    fn rec(
        pattern: &LabeledGraph,
        target: &LabeledGraph,
        depth: usize,
        mapping: &mut [u32],
        used: &mut [bool],
        count: &mut u64,
    ) {
        let pn = pattern.vertex_count();
        if depth == pn {
            *count += 1;
            return;
        }
        let pv = depth as VertexId;
        for tv in 0..target.vertex_count() as VertexId {
            if used[tv as usize] || target.label(tv) != pattern.label(pv) {
                continue;
            }
            let ok = pattern.neighbors(pv).iter().all(|&w| {
                let wi = mapping[w as usize];
                wi == u32::MAX || target.has_edge(wi, tv)
            });
            if !ok {
                continue;
            }
            mapping[pv as usize] = tv;
            used[tv as usize] = true;
            rec(pattern, target, depth + 1, mapping, used, count);
            mapping[pv as usize] = u32::MAX;
            used[tv as usize] = false;
        }
    }
    rec(pattern, target, 0, &mut mapping, &mut used, &mut count);
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn triangle(l: u32) -> LabeledGraph {
        GraphBuilder::new()
            .vertices(&[l, l, l])
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .build()
    }

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    #[test]
    fn path_in_triangle() {
        let p = path(&[0, 0, 0]);
        let t = triangle(0);
        assert!(is_subgraph_of(&p, &t));
        // 3 choices of middle vertex × 2 orientations.
        assert_eq!(count_embeddings(&p, &t, u64::MAX), 6);
    }

    #[test]
    fn triangle_not_in_path() {
        assert!(!is_subgraph_of(&triangle(0), &path(&[0, 0, 0, 0])));
    }

    #[test]
    fn labels_must_match() {
        let p = path(&[0, 1]);
        let t = path(&[0, 0]);
        assert!(!is_subgraph_of(&p, &t));
        assert!(is_subgraph_of(&p, &path(&[1, 0])));
    }

    #[test]
    fn non_induced_matching_allows_extra_edges() {
        // A 3-path embeds in a triangle even though the triangle has a chord
        // (the closing edge) the path lacks.
        assert!(is_subgraph_of(&path(&[0, 0, 0]), &triangle(0)));
    }

    #[test]
    fn empty_pattern_has_one_embedding() {
        let t = triangle(0);
        assert_eq!(count_embeddings(&LabeledGraph::new(), &t, u64::MAX), 1);
        assert!(is_subgraph_of(&LabeledGraph::new(), &t));
    }

    #[test]
    fn count_saturates_at_cap() {
        let p = path(&[0, 0]);
        let t = triangle(0);
        assert_eq!(count_embeddings(&p, &t, 4), 4);
        assert_eq!(count_embeddings(&p, &t, u64::MAX), 6);
        assert_eq!(count_embeddings(&p, &t, 0), 0);
    }

    #[test]
    fn find_embedding_returns_valid_mapping() {
        let p = path(&[0, 1, 0]);
        let t = GraphBuilder::new()
            .vertices(&[0, 1, 0, 2])
            .path(&[0, 1, 2, 3])
            .build();
        let m = find_embedding(&p, &t).expect("embedding exists");
        for &(u, v) in p.edges() {
            assert!(t.has_edge(m[u as usize], m[v as usize]));
        }
        for (pv, &tv) in m.iter().enumerate() {
            assert_eq!(p.label(pv as u32), t.label(tv));
        }
    }

    #[test]
    fn find_embeddings_respects_limit() {
        let p = path(&[0, 0]);
        let t = triangle(0);
        assert_eq!(find_embeddings(&p, &t, 3).len(), 3);
        assert_eq!(find_embeddings(&p, &t, 100).len(), 6);
        assert!(find_embeddings(&p, &t, 0).is_empty());
    }

    #[test]
    fn disconnected_pattern() {
        // Two isolated labeled vertices must map to distinct target vertices.
        let p = GraphBuilder::new().vertices(&[0, 0]).build();
        let t = path(&[0, 1, 0]);
        assert_eq!(count_embeddings(&p, &t, u64::MAX), 2); // (0,2) and (2,0)
        let one = GraphBuilder::new().vertices(&[0, 0, 0]).build();
        let t2 = path(&[0, 0]);
        assert!(!is_subgraph_of(&one, &t2)); // needs 3 distinct vertices
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        let patterns = vec![
            path(&[0, 0]),
            path(&[0, 1, 0]),
            triangle(0),
            GraphBuilder::new()
                .vertices(&[0, 0, 1, 1])
                .edge(0, 1)
                .edge(1, 2)
                .edge(2, 3)
                .edge(3, 0)
                .build(),
        ];
        let targets = vec![
            triangle(0),
            GraphBuilder::new()
                .vertices(&[0, 0, 1, 1, 0])
                .edge(0, 1)
                .edge(1, 2)
                .edge(2, 3)
                .edge(3, 0)
                .edge(3, 4)
                .build(),
            path(&[0, 1, 0, 1, 0]),
        ];
        for p in &patterns {
            for t in &targets {
                assert_eq!(
                    count_embeddings(p, t, u64::MAX),
                    count_embeddings_brute_force(p, t),
                    "mismatch for pattern {p:?} in target {t:?}"
                );
            }
        }
    }

    #[test]
    fn signature_rejects_obvious_mismatches() {
        let sig = |g: &LabeledGraph| GraphSignature::of(g);
        // Label missing in target.
        assert!(!sig(&path(&[0, 7])).may_embed_in(&sig(&path(&[0, 1, 0]))));
        // Too many vertices of one label.
        assert!(!sig(&path(&[0, 0, 0])).may_embed_in(&sig(&path(&[0, 0]))));
        // Degree sequence not dominated: star hub needs degree 3.
        let star = GraphBuilder::new()
            .vertices(&[0, 0, 0, 0])
            .edge(0, 1)
            .edge(0, 2)
            .edge(0, 3)
            .build();
        assert!(!sig(&star).may_embed_in(&sig(&path(&[0, 0, 0, 0]))));
        // Edge label absent from target (labels and degrees all compatible:
        // the target has a 0- and a 1-labeled vertex of degree ≥ 1, but its
        // edges are 0-2 and 1-2, never 0-1).
        assert!(!sig(&path(&[0, 1])).may_embed_in(&sig(&path(&[0, 2, 1]))));
    }

    #[test]
    fn signature_never_rejects_true_embeddings() {
        // Exhaustive mini-check: whenever VF2 finds an embedding, the
        // signature prefilter must say "maybe".
        let graphs = vec![
            path(&[0, 0]),
            path(&[0, 1, 0]),
            path(&[0, 1, 0, 1]),
            triangle(0),
            GraphBuilder::new()
                .vertices(&[0, 0, 1, 1, 0])
                .edge(0, 1)
                .edge(1, 2)
                .edge(2, 3)
                .edge(3, 0)
                .edge(3, 4)
                .build(),
        ];
        for p in &graphs {
            for t in &graphs {
                if is_subgraph_of(p, t) {
                    assert!(
                        GraphSignature::of(p).may_embed_in(&GraphSignature::of(t)),
                        "prefilter rejected a true embedding: {p:?} ⊆ {t:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn star_pattern_degree_pruning() {
        // A 4-star needs a degree-4 hub.
        let star = GraphBuilder::new()
            .vertices(&[0, 1, 1, 1, 1])
            .edge(0, 1)
            .edge(0, 2)
            .edge(0, 3)
            .edge(0, 4)
            .build();
        let small_hub = GraphBuilder::new()
            .vertices(&[0, 1, 1, 1])
            .edge(0, 1)
            .edge(0, 2)
            .edge(0, 3)
            .build();
        assert!(!is_subgraph_of(&star, &small_hub));
    }
}
