//! Graphviz DOT rendering for labeled graphs and pattern panels.
//!
//! The systems in this workspace exist to serve a *visual* interface; being
//! able to look at a pattern matters. [`to_dot`] renders one graph,
//! [`panel_to_dot`] renders a whole canned-pattern panel as a single DOT
//! document with one subgraph cluster per pattern — pipe it through
//! `dot -Tsvg` to see the GUI panel (Fig. 1 / Fig. 2 style).

use crate::graph::LabeledGraph;
use crate::labels::Interner;
use std::fmt::Write as _;

/// Options for DOT rendering.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name (DOT identifier).
    pub name: String,
    /// Layout engine hint recorded in the output (`layout=` attribute).
    pub layout: &'static str,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "pattern".to_owned(),
            layout: "neato",
        }
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}

/// Renders one labeled graph as an undirected DOT graph.
pub fn to_dot(graph: &LabeledGraph, interner: &Interner, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {} {{", sanitize(&options.name));
    let _ = writeln!(out, "  layout={};", options.layout);
    let _ = writeln!(out, "  node [shape=circle fontsize=10];");
    for v in graph.vertices() {
        let _ = writeln!(
            out,
            "  v{} [label=\"{}\"];",
            v,
            interner.name_or_placeholder(graph.label(v))
        );
    }
    for &(u, v) in graph.edges() {
        let _ = writeln!(out, "  v{u} -- v{v};");
    }
    out.push_str("}\n");
    out
}

/// Renders a pattern panel: every pattern becomes a `cluster_i` subgraph
/// with its index as the title, inside one top-level graph.
pub fn panel_to_dot(patterns: &[LabeledGraph], interner: &Interner, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {} {{", sanitize(title));
    let _ = writeln!(out, "  layout=fdp;");
    let _ = writeln!(out, "  node [shape=circle fontsize=10];");
    for (i, pattern) in patterns.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{i} {{");
        let _ = writeln!(out, "    label=\"p{}\";", i + 1);
        for v in pattern.vertices() {
            let _ = writeln!(
                out,
                "    p{i}v{v} [label=\"{}\"];",
                interner.name_or_placeholder(pattern.label(v))
            );
        }
        for &(u, v) in pattern.edges() {
            let _ = writeln!(out, "    p{i}v{u} -- p{i}v{v};");
        }
        let _ = writeln!(out, "  }}");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn co_path() -> LabeledGraph {
        GraphBuilder::new().vertices(&[0, 1]).edge(0, 1).build()
    }

    #[test]
    fn renders_vertices_edges_and_labels() {
        let interner = Interner::with_labels(["C", "O"]);
        let dot = to_dot(&co_path(), &interner, &DotOptions::default());
        assert!(dot.starts_with("graph pattern {"));
        assert!(dot.contains("v0 [label=\"C\"];"));
        assert!(dot.contains("v1 [label=\"O\"];"));
        assert!(dot.contains("v0 -- v1;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn unknown_labels_get_placeholders() {
        let interner = Interner::new();
        let dot = to_dot(&co_path(), &interner, &DotOptions::default());
        assert!(dot.contains("label=\"?0\""));
    }

    #[test]
    fn names_are_sanitized() {
        let interner = Interner::with_labels(["C", "O"]);
        let dot = to_dot(
            &co_path(),
            &interner,
            &DotOptions {
                name: "my pattern #3".into(),
                ..DotOptions::default()
            },
        );
        assert!(dot.starts_with("graph my_pattern__3 {"));
    }

    #[test]
    fn panel_nests_one_cluster_per_pattern() {
        let interner = Interner::with_labels(["C", "O"]);
        let panel = panel_to_dot(&[co_path(), co_path()], &interner, "gui");
        assert_eq!(panel.matches("subgraph cluster_").count(), 2);
        assert!(panel.contains("label=\"p1\";"));
        assert!(panel.contains("label=\"p2\";"));
        // Vertex ids are namespaced per pattern.
        assert!(panel.contains("p0v0 -- p0v1;"));
        assert!(panel.contains("p1v0 -- p1v1;"));
    }

    #[test]
    fn empty_panel_is_valid_dot() {
        let interner = Interner::new();
        let panel = panel_to_dot(&[], &interner, "empty");
        assert!(panel.starts_with("graph empty {"));
        assert!(panel.trim_end().ends_with('}'));
    }
}
