//! Plan-compiled subgraph matching over [`Csr`] graphs.
//!
//! The VF2 path ([`crate::isomorphism`]) re-derives everything per call:
//! both graph signatures, the matching order, and per-node feasibility by
//! scanning whole neighbor lists. That is the right reference semantics,
//! but MIDAS matches the *same* small patterns against thousands of data
//! graphs per batch (§5.1, Algorithm 1), so almost all of that work is
//! amortizable. Following the GraphMini direction, this module compiles a
//! pattern once into a [`MatchPlan`] — a static vertex order plus
//! per-level candidate filters — and interprets it over the [`Csr`] label
//! slices:
//!
//! * **root level** — candidates come from [`Csr::vertices_with_label`],
//!   not a scan over all vertices;
//! * **anchored levels** — candidates are the sorted-merge intersection of
//!   the already-bound neighbors' per-label adjacency slices
//!   ([`Csr::neighbors_with_label`]), so connectivity *is* the candidate
//!   generator instead of a post-hoc feasibility check;
//! * **early exit** — the embedding visitor returns [`Control`], so
//!   boolean coverage queries stop at the first embedding.
//!
//! Plans are memoized globally by [`CanonicalCode`] ([`cached_plan`]):
//! isomorphic patterns — common, since candidates come from random walks
//! on many CSGs — compile once per process. Counts and containment are
//! isomorphism-invariant, so a cached plan compiled from a different
//! representative of the same class is sound for those queries; callers
//! that need embeddings *in their own vertex numbering* compile privately
//! ([`MatchPlan::compile`]).
//!
//! Semantics are pinned to the VF2 reference: same non-induced
//! monomorphism definition, same saturating caps, same embedding sets
//! (enumeration order may differ). The differential oracle's
//! `plan_vs_vf2` check and the workspace property tests enforce this.

use crate::canonical::CanonicalCode;
use crate::csr::Csr;
use crate::fasthash::FxHashMap;
use crate::graph::{LabeledGraph, VertexId};
use crate::isomorphism::Control;
use crate::labels::LabelId;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

/// Which matcher implementation the kernel and cache drive.
///
/// `MIDAS_MATCHER=plan|vf2` selects one at runtime; the compiled plan path
/// is the default, VF2 stays available as the reference twin the
/// differential oracle pins against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatcherKind {
    /// Plan-compiled matching over CSR label slices (this module).
    #[default]
    Plan,
    /// VF2-style backtracking ([`crate::isomorphism`]), the reference.
    Vf2,
}

impl MatcherKind {
    /// Parses the `MIDAS_MATCHER` environment variable (`plan` / `vf2`,
    /// case-insensitive); `None` when unset or unrecognized.
    pub fn from_env() -> Option<Self> {
        match std::env::var("MIDAS_MATCHER")
            .ok()?
            .trim()
            .to_ascii_lowercase()
            .as_str()
        {
            "plan" => Some(MatcherKind::Plan),
            "vf2" => Some(MatcherKind::Vf2),
            _ => None,
        }
    }

    /// The environment override when set, otherwise the default
    /// ([`MatcherKind::Plan`]).
    pub fn from_env_or_default() -> Self {
        Self::from_env().unwrap_or_default()
    }
}

/// One level of a compiled plan: the pattern vertex bound at this depth
/// and the static filters its candidates must pass.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PlanLevel {
    /// The pattern vertex this level binds.
    vertex: VertexId,
    /// Required candidate label.
    label: LabelId,
    /// Required minimum candidate degree (the pattern vertex's degree).
    min_degree: u32,
    /// Pattern neighbors of `vertex` bound at earlier levels; candidate
    /// generation intersects their images' per-label adjacency slices.
    anchors: Vec<VertexId>,
}

/// A pattern shape whose embedding count has a closed form over CSR
/// label-range sizes — no enumeration. Detected once at compile time.
///
/// Both forms count *ordered* injective mappings, exactly like the
/// interpreter and the VF2 reference, and both rely on data graphs being
/// simple (no self-loops — [`LabeledGraph::add_edge`] enforces this), so
/// a vertex never appears in its own neighbor slice.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ClosedForm {
    /// A star `K_{1,m}` (this includes the single edge, `m = 1`): count
    /// `Σ_v Π_ℓ ff(|N_ℓ(v)|, need_ℓ)` over center candidates `v`, where
    /// `ff` is the falling factorial — leaves of one label are assigned
    /// injectively within that label's neighbor slice, and slices of
    /// different labels are disjoint by construction.
    Star {
        /// Center label.
        center: LabelId,
        /// Per-leaf-label demand `(label, count)`, ascending by label.
        leaf_needs: Vec<(LabelId, u32)>,
    },
    /// A double star — two adjacent centers `b – c`, each carrying leaves
    /// (every tree of diameter 3: 4-paths, brooms, spiders). For each
    /// ordered adjacent pair `(x, y)` with labels `(b, c)`, leaves of one
    /// label assign injectively into `A_ℓ = N_ℓ(x) \ {y}` on the `b` side
    /// and `B_ℓ = N_ℓ(y) \ {x}` on the `c` side; cross-side collisions in
    /// `A_ℓ ∩ B_ℓ` are removed by inclusion–exclusion over the number of
    /// shared vertices (see `double_star_ways`).
    DoubleStar {
        /// Center labels `[b, c]`.
        mids: [LabelId; 2],
        /// Per-leaf-label demand `(label, b-side count, c-side count)`,
        /// ascending by label.
        needs: Vec<(LabelId, u32, u32)>,
    },
    /// The 5-vertex path `a – b – c – d – e` (the one 5-vertex tree that
    /// is neither a star nor a double star): enumerate the middle triple
    /// `(x, z, w)` over adjacency, then count end pairs
    /// `|A|·|E| − |A ∩ E|` with `A = N_a(x) \ {z, w}`,
    /// `E = N_e(w) \ {z, x}`.
    Path5 {
        /// Path labels `[a, b, c, d, e]`.
        labels: [LabelId; 5],
    },
}

/// A pattern compiled for repeated matching: static vertex order plus
/// per-level candidate filters. Immutable and cheap to share.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchPlan {
    levels: Vec<PlanLevel>,
    /// Pattern vertex count (== `levels.len()`, kept for clarity).
    vertex_count: usize,
    /// Pattern edge count, for the size quick-reject.
    edge_count: usize,
    /// Per-label vertex demand `(label, count)`, ascending by label — the
    /// cheap prefilter against [`Csr::label_counts`].
    label_needs: Vec<(LabelId, u32)>,
    /// Closed-form counting shape, when the pattern has one.
    closed_form: Option<ClosedForm>,
}

impl MatchPlan {
    /// Compiles `pattern` into a plan.
    ///
    /// The order is chosen greedily per level: most already-bound pattern
    /// neighbors first (connectivity ⇒ smallest candidate sets and never a
    /// fresh component while an anchored vertex exists), then highest
    /// degree, then rarest label within the pattern (a static proxy for
    /// selectivity), then lowest id for determinism.
    pub fn compile(pattern: &LabeledGraph) -> Self {
        let timed = midas_obs::enabled();
        let start = timed.then(std::time::Instant::now);

        let n = pattern.vertex_count();
        let mut label_freq: HashMap<LabelId, u32> = HashMap::new();
        for v in pattern.vertices() {
            *label_freq.entry(pattern.label(v)).or_insert(0) += 1;
        }
        let mut levels: Vec<PlanLevel> = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        for _ in 0..n {
            let v = (0..n as VertexId)
                .filter(|&v| !placed[v as usize])
                .max_by_key(|&v| {
                    let anchored = pattern
                        .neighbors(v)
                        .iter()
                        .filter(|&&w| placed[w as usize])
                        .count();
                    let rarity = std::cmp::Reverse(label_freq[&pattern.label(v)]);
                    (anchored, pattern.degree(v), rarity, std::cmp::Reverse(v))
                })
                .expect("unplaced vertex must exist");
            let anchors: Vec<VertexId> = pattern
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&w| placed[w as usize])
                .collect();
            placed[v as usize] = true;
            // An anchored candidate is some vertex's neighbor, so its
            // degree is at least 1 for free — a floor of 1 never prunes
            // there. Storing 0 lets the interpreter skip the degree load.
            let min_degree = match pattern.degree(v) as u32 {
                1 if !anchors.is_empty() => 0,
                d => d,
            };
            levels.push(PlanLevel {
                vertex: v,
                label: pattern.label(v),
                min_degree,
                anchors,
            });
        }
        let mut label_needs: Vec<(LabelId, u32)> = label_freq.into_iter().collect();
        label_needs.sort_unstable();

        if let Some(start) = start {
            midas_obs::histogram_record!("plan.compile_ns", start.elapsed().as_nanos() as u64);
        }
        midas_obs::counter_add!("plan.compiles", 1);
        MatchPlan {
            levels,
            vertex_count: n,
            edge_count: pattern.edge_count(),
            label_needs,
            closed_form: detect_closed_form(pattern),
        }
    }

    /// Number of pattern vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Number of pattern edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Invokes `visit` with each embedding (`pattern vertex → target
    /// vertex`) until exhaustion or [`Control::Stop`]. Semantically equal
    /// to [`crate::isomorphism::for_each_embedding`] up to enumeration
    /// order.
    pub fn for_each_embedding<F>(&self, target: &Csr, visit: &mut F)
    where
        F: FnMut(&[VertexId]) -> Control,
    {
        self.search::<false, F>(target, visit);
    }

    /// The shared search body. With `COUNTING` the last level is scanned
    /// in bulk — candidates are filtered but never bound, and `visit` is
    /// invoked with the leaf vertex still unmapped — so `COUNTING` callers
    /// must ignore the mapping argument (the public counting entry points
    /// do; [`Self::for_each_embedding`] always passes `false`).
    fn search<const COUNTING: bool, F>(&self, target: &Csr, visit: &mut F)
    where
        F: FnMut(&[VertexId]) -> Control,
    {
        if self.vertex_count == 0 {
            // The empty pattern has exactly one (empty) embedding.
            visit(&[]);
            return;
        }
        if self.vertex_count > target.vertex_count() || self.edge_count > target.edge_count() {
            midas_obs::counter_add!("plan.size_rejects", 1);
            return;
        }
        // Label-demand prefilter: every pattern label must be stocked.
        for &(label, need) in &self.label_needs {
            if (target.vertices_with_label(label).len() as u32) < need {
                midas_obs::counter_add!("plan.prefilter_rejects", 1);
                return;
            }
        }
        let timed = midas_obs::enabled();
        let start = timed.then(std::time::Instant::now);
        // Per-thread scratch: the hot loop runs one search per
        // (pattern, graph) pair, so allocating the mapping, the used
        // bitset and the intersection buffers per call would dominate
        // small searches. `Cell::take` leaves a default in the slot, so a
        // re-entrant search (a visit callback that itself matches) simply
        // allocates fresh scratch instead of aliasing.
        let mut scratch = SCRATCH.with(std::cell::Cell::take);
        scratch.mapping.clear();
        scratch.mapping.resize(self.vertex_count, u32::MAX);
        scratch.used.clear();
        scratch.used.resize(target.vertex_count().div_ceil(64), 0);
        if scratch.bufs.len() < self.levels.len() {
            scratch.bufs.resize_with(self.levels.len(), Vec::new);
        }
        let (nodes, intersections, pruned) = {
            let mut search = Search {
                plan: self,
                target,
                visit,
                mapping: &mut scratch.mapping,
                used: &mut scratch.used,
                bufs: &mut scratch.bufs,
                nodes: 0,
                intersections: 0,
                pruned: 0,
            };
            search.recurse::<COUNTING>(0);
            (search.nodes, search.intersections, search.pruned)
        };
        SCRATCH.with(|cell| cell.set(scratch));
        if let Some(start) = start {
            let elapsed_ns = start.elapsed().as_nanos() as u64;
            midas_obs::histogram_record!("plan.search_ns", elapsed_ns);
            static SLOW: OnceLock<&'static midas_obs::exemplar::Series> = OnceLock::new();
            SLOW.get_or_init(|| midas_obs::exemplar::series("plan.search_ns", "ns"))
                .offer(elapsed_ns);
        }
        midas_obs::counter_add!("plan.searches", 1);
        midas_obs::counter_add!("plan.nodes", nodes);
        midas_obs::counter_add!("plan.intersections", intersections);
        midas_obs::counter_add!("plan.candidates_pruned", pruned);
    }

    /// Counts embeddings in `target`, saturating at `cap`. Equal to
    /// [`crate::isomorphism::count_embeddings`] on the same pair.
    pub fn count_embeddings(&self, target: &Csr, cap: u64) -> u64 {
        if cap == 0 {
            return 0;
        }
        // Stars and 4-paths — together the bulk of the FCT tree-feature
        // set — count in closed form over label-range sizes instead of
        // enumerating embeddings.
        if let Some(form) = &self.closed_form {
            return self.count_closed_form(form, target, cap);
        }
        let mut count = 0;
        self.search::<true, _>(target, &mut |_| {
            count += 1;
            if count >= cap {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        count
    }

    /// Evaluates a [`ClosedForm`] count, saturating at `cap`, behind the
    /// same size and label-demand prefilters as the interpreter.
    fn count_closed_form(&self, form: &ClosedForm, target: &Csr, cap: u64) -> u64 {
        if self.vertex_count > target.vertex_count() || self.edge_count > target.edge_count() {
            midas_obs::counter_add!("plan.size_rejects", 1);
            return 0;
        }
        for &(label, need) in &self.label_needs {
            if (target.vertices_with_label(label).len() as u32) < need {
                midas_obs::counter_add!("plan.prefilter_rejects", 1);
                return 0;
            }
        }
        let timed = midas_obs::enabled();
        let start = timed.then(std::time::Instant::now);
        let count = match form {
            ClosedForm::Star { center, leaf_needs } => {
                let mut count = 0u64;
                for &v in target.vertices_with_label(*center) {
                    let mut ways = 1u64;
                    for &(label, need) in leaf_needs {
                        let k = target.neighbors_with_label(v, label).len() as u64;
                        if k < need as u64 {
                            ways = 0;
                            break;
                        }
                        for taken in 0..need as u64 {
                            ways = ways.saturating_mul(k - taken);
                        }
                    }
                    count = count.saturating_add(ways);
                    if count >= cap {
                        break;
                    }
                }
                count
            }
            ClosedForm::DoubleStar {
                mids: [b, c],
                needs,
            } => {
                let mut count = 0u64;
                'outer: for &x in target.vertices_with_label(*b) {
                    for &y in target.neighbors_with_label(x, *c) {
                        let mut pair_ways = 1i128;
                        for &(label, pb, pc) in needs {
                            // `y` sits in `N_ℓ(x)` iff it carries label ℓ
                            // (it is adjacent to `x` by construction);
                            // symmetrically for `x` on the other side.
                            let slice_x = target.neighbors_with_label(x, label);
                            let slice_y = target.neighbors_with_label(y, label);
                            let alpha = slice_x.len() as i128 - i128::from(label == *c);
                            let beta = slice_y.len() as i128 - i128::from(label == *b);
                            if alpha < pb as i128 || beta < pc as i128 {
                                pair_ways = 0;
                                break;
                            }
                            let ways = if pc == 0 {
                                falling(alpha, pb)
                            } else if pb == 0 {
                                falling(beta, pc)
                            } else {
                                // Neither `x` nor `y` is in the common
                                // slice (simple graph), so it equals
                                // `A_ℓ ∩ B_ℓ` with no further exclusions.
                                let common = sorted_common(slice_x, slice_y) as i128;
                                if pb == 1 && pc == 1 {
                                    alpha * beta - common
                                } else {
                                    double_star_ways(alpha, beta, common, pb, pc)
                                }
                            };
                            if ways <= 0 {
                                pair_ways = 0;
                                break;
                            }
                            pair_ways = pair_ways.saturating_mul(ways);
                        }
                        count = count.saturating_add(u64::try_from(pair_ways).unwrap_or(u64::MAX));
                        if count >= cap {
                            break 'outer;
                        }
                    }
                }
                count
            }
            ClosedForm::Path5 {
                labels: [a, b, c, d, e],
            } => {
                let mut count = 0u64;
                'outer: for &z in target.vertices_with_label(*c) {
                    for &x in target.neighbors_with_label(z, *b) {
                        for &w in target.neighbors_with_label(z, *d) {
                            if w == x {
                                continue;
                            }
                            // `A = N_a(x) \ {z, w}`: `z` is adjacent to
                            // `x` by construction, `w` only sometimes.
                            let in_a = (target.neighbors_with_label(x, *a).len() as u64)
                                - u64::from(a == c)
                                - u64::from(a == d && target.has_edge(x, w));
                            let in_e = (target.neighbors_with_label(w, *e).len() as u64)
                                - u64::from(e == c)
                                - u64::from(e == b && target.has_edge(w, x));
                            let mut ways = in_a.saturating_mul(in_e);
                            if a == e && ways != 0 {
                                // Common end candidates collide; `z` is in
                                // both slices iff it carries the end label,
                                // `x` and `w` are in neither (simple graph).
                                ways -= sorted_common(
                                    target.neighbors_with_label(x, *a),
                                    target.neighbors_with_label(w, *a),
                                ) - u64::from(a == c);
                            }
                            count = count.saturating_add(ways);
                            if count >= cap {
                                break 'outer;
                            }
                        }
                    }
                }
                count
            }
        };
        if let Some(start) = start {
            let elapsed_ns = start.elapsed().as_nanos() as u64;
            midas_obs::histogram_record!("plan.search_ns", elapsed_ns);
            static SLOW: OnceLock<&'static midas_obs::exemplar::Series> = OnceLock::new();
            SLOW.get_or_init(|| midas_obs::exemplar::series("plan.search_ns", "ns"))
                .offer(elapsed_ns);
        }
        midas_obs::counter_add!("plan.searches", 1);
        midas_obs::counter_add!("plan.closed_forms", 1);
        count.min(cap)
    }

    /// Whether the pattern embeds in `target` — the early-exit boolean
    /// coverage query (a saturating cap-1 count, so single-edge patterns
    /// take the closed form).
    pub fn is_subgraph_of(&self, target: &Csr) -> bool {
        self.count_embeddings(target, 1) > 0
    }

    /// Collects up to `limit` embeddings, each indexed by pattern vertex.
    pub fn find_embeddings(&self, target: &Csr, limit: usize) -> Vec<Vec<VertexId>> {
        let mut result = Vec::new();
        if limit == 0 {
            return result;
        }
        self.for_each_embedding(target, &mut |mapping| {
            result.push(mapping.to_vec());
            if result.len() >= limit {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        result
    }
}

/// Detects a [`ClosedForm`] counting shape in `pattern`, if any.
///
/// Stars are recognized by a vertex adjacent to every other one (with a
/// tree's edge count, that forces all others to be leaves); double stars
/// by exactly two adjacent vertices of degree ≥ 2 (with a tree's edge
/// count that rules out cycles, so everything else is a leaf on one of
/// them); 5-paths by walking a 5-vertex shape end to end. Everything
/// else — including disconnected shapes like a triangle plus an isolated
/// vertex, which share the tree edge count — falls through to the
/// interpreter.
fn detect_closed_form(pattern: &LabeledGraph) -> Option<ClosedForm> {
    let n = pattern.vertex_count();
    if n < 2 || pattern.edge_count() != n - 1 {
        return None;
    }
    if let Some(center) = pattern.vertices().find(|&v| pattern.degree(v) == n - 1) {
        let mut leaf_needs: Vec<(LabelId, u32)> = Vec::new();
        for v in pattern.vertices().filter(|&v| v != center) {
            let label = pattern.label(v);
            match leaf_needs.iter_mut().find(|(l, _)| *l == label) {
                Some((_, need)) => *need += 1,
                None => leaf_needs.push((label, 1)),
            }
        }
        leaf_needs.sort_unstable();
        return Some(ClosedForm::Star {
            center: pattern.label(center),
            leaf_needs,
        });
    }
    let internal: Vec<VertexId> = pattern
        .vertices()
        .filter(|&v| pattern.degree(v) >= 2)
        .collect();
    if let [b, c] = internal[..] {
        if pattern.neighbors(b).contains(&c) {
            let mut needs: Vec<(LabelId, u32, u32)> = Vec::new();
            for (center, other, b_side) in [(b, c, true), (c, b, false)] {
                for &v in pattern.neighbors(center).iter().filter(|&&v| v != other) {
                    let label = pattern.label(v);
                    let slot = match needs.iter_mut().find(|(l, _, _)| *l == label) {
                        Some(slot) => slot,
                        None => {
                            needs.push((label, 0, 0));
                            needs.last_mut().expect("just pushed")
                        }
                    };
                    if b_side {
                        slot.1 += 1;
                    } else {
                        slot.2 += 1;
                    }
                }
            }
            needs.sort_unstable();
            return Some(ClosedForm::DoubleStar {
                mids: [pattern.label(b), pattern.label(c)],
                needs,
            });
        }
    }
    if n == 5 {
        let a = pattern.vertices().find(|&v| pattern.degree(v) == 1)?;
        let mut seq = vec![a];
        while seq.len() < 5 {
            let cur = *seq.last().expect("non-empty");
            match pattern
                .neighbors(cur)
                .iter()
                .copied()
                .find(|w| !seq.contains(w))
            {
                Some(next) => seq.push(next),
                None => return None,
            }
        }
        // Five distinct vertices reached over four walk edges — with the
        // tree edge count, that is the whole pattern, so it is the 5-path.
        let labels: [LabelId; 5] = std::array::from_fn(|i| pattern.label(seq[i]));
        return Some(ClosedForm::Path5 { labels });
    }
    None
}

/// Reusable per-thread search buffers (see `SCRATCH`).
#[derive(Default)]
struct Scratch {
    mapping: Vec<VertexId>,
    used: Vec<u64>,
    bufs: Vec<Vec<VertexId>>,
}

thread_local! {
    static SCRATCH: std::cell::Cell<Scratch> = std::cell::Cell::new(Scratch::default());
}

/// Recursive interpreter state for one search.
struct Search<'a, F> {
    plan: &'a MatchPlan,
    target: &'a Csr,
    visit: &'a mut F,
    /// `pattern vertex → target vertex` (u32::MAX = unbound).
    mapping: &'a mut Vec<VertexId>,
    /// Bitset over target vertices already used by the partial embedding.
    used: &'a mut Vec<u64>,
    /// One intersection buffer per level, reused across candidates.
    bufs: &'a mut Vec<Vec<VertexId>>,
    nodes: u64,
    intersections: u64,
    pruned: u64,
}

impl<F> Search<'_, F>
where
    F: FnMut(&[VertexId]) -> Control,
{
    fn recurse<const COUNTING: bool>(&mut self, depth: usize) -> Control {
        self.nodes += 1;
        if depth == self.plan.levels.len() {
            return (self.visit)(self.mapping);
        }
        let level = &self.plan.levels[depth];
        let target = self.target;
        match level.anchors.len() {
            0 => {
                // Root of a (possibly disconnected) component: all
                // same-labeled vertices.
                let slice = target.vertices_with_label(level.label);
                self.run_slice::<COUNTING>(depth, slice)
            }
            1 => {
                let image = self.mapping[level.anchors[0] as usize];
                let slice = target.neighbors_with_label(image, level.label);
                self.run_slice::<COUNTING>(depth, slice)
            }
            _ => {
                // Sorted-merge intersection of every anchor image's
                // per-label slice, smallest first.
                let mut slices: Vec<&[VertexId]> = level
                    .anchors
                    .iter()
                    .map(|&a| target.neighbors_with_label(self.mapping[a as usize], level.label))
                    .collect();
                slices.sort_unstable_by_key(|s| s.len());
                let mut buf = std::mem::take(&mut self.bufs[depth]);
                buf.clear();
                buf.extend_from_slice(slices[0]);
                let before = buf.len();
                for other in &slices[1..] {
                    intersect_in_place(&mut buf, other);
                    self.intersections += 1;
                    if buf.is_empty() {
                        break;
                    }
                }
                self.pruned += (before - buf.len()) as u64;
                let ctl = self.run_buf::<COUNTING>(depth, &buf);
                self.bufs[depth] = buf;
                ctl
            }
        }
    }

    /// Tries every candidate in a CSR-owned slice.
    fn run_slice<const COUNTING: bool>(&mut self, depth: usize, slice: &[VertexId]) -> Control {
        if COUNTING && depth + 1 == self.plan.levels.len() {
            return self.leaf_scan(depth, slice);
        }
        for &cand in slice {
            if self.try_candidate::<COUNTING>(depth, cand) == Control::Stop {
                return Control::Stop;
            }
        }
        Control::Continue
    }

    /// Tries every candidate in an intersection buffer (not borrowed from
    /// `self` — the caller took it out of `bufs`).
    fn run_buf<const COUNTING: bool>(&mut self, depth: usize, buf: &[VertexId]) -> Control {
        if COUNTING && depth + 1 == self.plan.levels.len() {
            return self.leaf_scan(depth, buf);
        }
        for &cand in buf {
            if self.try_candidate::<COUNTING>(depth, cand) == Control::Stop {
                return Control::Stop;
            }
        }
        Control::Continue
    }

    /// Counting-mode fast path for the last level: each surviving
    /// candidate completes exactly one embedding, so filter and visit
    /// without binding or recursing. The leaf stays unmapped — counting
    /// visitors ignore the mapping (see [`MatchPlan::search`]).
    fn leaf_scan(&mut self, depth: usize, slice: &[VertexId]) -> Control {
        let level = &self.plan.levels[depth];
        for &cand in slice {
            let (word, bit) = (cand as usize / 64, 1u64 << (cand as usize % 64));
            if self.used[word] & bit != 0
                || (level.min_degree != 0 && (self.target.degree(cand) as u32) < level.min_degree)
            {
                self.pruned += 1;
                continue;
            }
            self.nodes += 1;
            if (self.visit)(self.mapping) == Control::Stop {
                return Control::Stop;
            }
        }
        Control::Continue
    }

    fn try_candidate<const COUNTING: bool>(&mut self, depth: usize, cand: VertexId) -> Control {
        let level = &self.plan.levels[depth];
        let (word, bit) = (cand as usize / 64, 1u64 << (cand as usize % 64));
        if self.used[word] & bit != 0
            || (level.min_degree != 0 && (self.target.degree(cand) as u32) < level.min_degree)
        {
            self.pruned += 1;
            return Control::Continue;
        }
        let vertex = level.vertex as usize;
        self.mapping[vertex] = cand;
        self.used[word] |= bit;
        let ctl = self.recurse::<COUNTING>(depth + 1);
        self.mapping[vertex] = u32::MAX;
        self.used[word] &= !bit;
        ctl
    }
}

/// Falling factorial `k · (k−1) · … · (k−m+1)` — the number of injective
/// assignments of `m` distinguishable leaves into `k` candidates; 0 when
/// `k < m`. Saturating: exactness past `i128::MAX` would need a target
/// with ≳2³² same-label vertices, unreachable with `u32` vertex ids.
#[inline]
fn falling(k: i128, m: u32) -> i128 {
    let m = m as i128;
    if k < m {
        return 0;
    }
    let mut product = 1i128;
    for taken in 0..m {
        product = product.saturating_mul(k - taken);
    }
    product
}

/// Inclusion–exclusion for one leaf label of a double star: the number of
/// ways to assign `pb` leaves into an `alpha`-sized pool and `pc` leaves
/// into a `beta`-sized pool, injectively and disjointly, where the pools
/// share `common` vertices:
///
/// `Σ_j (−1)^j C(pb,j) · C(pc,j) · j! · ff(common,j) · ff(alpha−j, pb−j)
///  · ff(beta−j, pc−j)`
///
/// (choose the `j` colliding leaves on each side, pair them up, place the
/// pairs on shared vertices, assign the rest freely).
fn double_star_ways(alpha: i128, beta: i128, common: i128, pb: u32, pc: u32) -> i128 {
    let mut ways = 0i128;
    for j in 0..=pb.min(pc).min(common.max(0).min(u32::MAX as i128) as u32) {
        let mut term = falling(common, j)
            .saturating_mul(falling(alpha - j as i128, pb - j))
            .saturating_mul(falling(beta - j as i128, pc - j));
        // C(pb,j) · C(pc,j) · j!  =  ff(pb,j) · ff(pc,j) / j!
        term = term
            .saturating_mul(falling(pb as i128, j))
            .saturating_mul(falling(pc as i128, j))
            / falling(j as i128, j).max(1);
        if j % 2 == 0 {
            ways = ways.saturating_add(term);
        } else {
            ways = ways.saturating_sub(term);
        }
    }
    ways
}

/// Counts elements common to two sorted slices (two-pointer merge).
#[inline]
fn sorted_common(a: &[VertexId], b: &[VertexId]) -> u64 {
    let (mut i, mut j, mut common) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    common
}

/// Intersects sorted `buf` with sorted `other` in place (two-pointer
/// merge), keeping only common elements.
fn intersect_in_place(buf: &mut Vec<VertexId>, other: &[VertexId]) {
    let mut write = 0;
    let mut j = 0;
    for i in 0..buf.len() {
        let x = buf[i];
        while j < other.len() && other[j] < x {
            j += 1;
        }
        if j == other.len() {
            break;
        }
        if other[j] == x {
            buf[write] = x;
            write += 1;
            j += 1;
        }
    }
    buf.truncate(write);
}

/// The global plan memo, keyed by canonical pattern code.
fn plan_cache() -> &'static RwLock<FxHashMap<CanonicalCode, Arc<MatchPlan>>> {
    static CACHE: OnceLock<RwLock<FxHashMap<CanonicalCode, Arc<MatchPlan>>>> = OnceLock::new();
    CACHE.get_or_init(|| RwLock::new(FxHashMap::default()))
}

/// Returns the memoized plan for `key`, compiling from `pattern` on first
/// sight. A batch that matches the same (or an isomorphic) pattern against
/// thousands of graphs compiles exactly once per process.
///
/// The returned plan may have been compiled from a *different* isomorphic
/// representative, so its embeddings are numbered in that representative's
/// vertex ids — counts and containment are isomorphism-invariant and
/// always sound; callers needing embeddings in their own numbering should
/// use [`MatchPlan::compile`] directly.
pub fn cached_plan(key: &CanonicalCode, pattern: &LabeledGraph) -> Arc<MatchPlan> {
    if let Some(plan) = plan_cache()
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .get(key)
    {
        midas_obs::counter_add!("plan.cache_hits", 1);
        return Arc::clone(plan);
    }
    let plan = Arc::new(MatchPlan::compile(pattern));
    let mut cache = plan_cache().write().unwrap_or_else(PoisonError::into_inner);
    // First compile wins a compile race; both are equivalent.
    Arc::clone(cache.entry(key.clone()).or_insert(plan))
}

/// Number of memoized plans (tests, telemetry snapshots).
pub fn plan_cache_len() -> usize {
    plan_cache()
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .len()
}

/// Counts embeddings of `pattern` in `target` through a freshly compiled
/// plan — the uncached convenience twin of
/// [`crate::isomorphism::count_embeddings`].
pub fn count_embeddings_plan(pattern: &LabeledGraph, target: &LabeledGraph, cap: u64) -> u64 {
    MatchPlan::compile(pattern).count_embeddings(&Csr::from_graph(target), cap)
}

/// Whether `pattern ⊆ target` through a freshly compiled plan.
pub fn is_subgraph_plan(pattern: &LabeledGraph, target: &LabeledGraph) -> bool {
    MatchPlan::compile(pattern).is_subgraph_of(&Csr::from_graph(target))
}

/// Collects up to `limit` embeddings through a freshly compiled plan, in
/// `pattern`'s own vertex numbering.
pub fn find_embeddings_plan(
    pattern: &LabeledGraph,
    target: &LabeledGraph,
    limit: usize,
) -> Vec<Vec<VertexId>> {
    MatchPlan::compile(pattern).find_embeddings(&Csr::from_graph(target), limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::canonical_code;
    use crate::graph::GraphBuilder;
    use crate::isomorphism::{count_embeddings, find_embeddings, is_subgraph_of};

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn triangle(l: u32) -> LabeledGraph {
        GraphBuilder::new()
            .vertices(&[l, l, l])
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .build()
    }

    fn suite() -> (Vec<LabeledGraph>, Vec<LabeledGraph>) {
        let patterns = vec![
            path(&[0, 0]),
            path(&[0, 1, 0]),
            triangle(0),
            // Square with alternating labels — two anchors at the closing
            // vertex exercise the intersection path.
            GraphBuilder::new()
                .vertices(&[0, 1, 0, 1])
                .edge(0, 1)
                .edge(1, 2)
                .edge(2, 3)
                .edge(3, 0)
                .build(),
            // Disconnected pattern: two components.
            GraphBuilder::new().vertices(&[0, 0]).build(),
            // Star: degree pruning.
            GraphBuilder::new()
                .vertices(&[0, 1, 1, 1])
                .edge(0, 1)
                .edge(0, 2)
                .edge(0, 3)
                .build(),
            // Star with mixed leaf labels (falling-factorial grouping).
            GraphBuilder::new()
                .vertices(&[1, 0, 0, 1])
                .edge(0, 1)
                .edge(0, 2)
                .edge(0, 3)
                .build(),
            // 4-paths: every end/mid label coincidence the double-star
            // closed form special-cases (a = d, c = a, b = d, all equal).
            path(&[0, 1, 0, 1]),
            path(&[0, 1, 1, 0]),
            path(&[0, 0, 0, 0]),
            path(&[0, 1, 1, 2]),
            path(&[1, 0, 1, 0]),
            // Double stars with multi-leaf sides: cross-side collisions
            // within one label exercise the inclusion–exclusion.
            GraphBuilder::new()
                .vertices(&[1, 0, 0, 1, 0])
                .edge(0, 1)
                .edge(0, 2)
                .edge(0, 3)
                .edge(3, 4)
                .build(),
            GraphBuilder::new()
                .vertices(&[0, 0, 0, 0, 0])
                .edge(0, 1)
                .edge(0, 2)
                .edge(0, 3)
                .edge(3, 4)
                .build(),
            GraphBuilder::new()
                .vertices(&[0, 1, 1, 0, 1, 1])
                .edge(0, 1)
                .edge(0, 2)
                .edge(0, 3)
                .edge(3, 4)
                .edge(3, 5)
                .build(),
            // 5-paths: uniform labels maximize end-collision corrections.
            path(&[0, 0, 0, 0, 0]),
            path(&[0, 1, 2, 1, 0]),
            path(&[0, 0, 1, 0, 0]),
            path(&[1, 0, 0, 0, 2]),
            // Triangle + isolated vertex: tree edge count but NOT a tree —
            // must fall through to the interpreter.
            GraphBuilder::new()
                .vertices(&[0, 0, 0, 0])
                .edge(0, 1)
                .edge(1, 2)
                .edge(0, 2)
                .build(),
        ];
        let targets = vec![
            triangle(0),
            path(&[0, 1, 0, 1, 0]),
            GraphBuilder::new()
                .vertices(&[0, 1, 0, 1, 0])
                .edge(0, 1)
                .edge(1, 2)
                .edge(2, 3)
                .edge(3, 0)
                .edge(3, 4)
                .build(),
            GraphBuilder::new()
                .vertices(&[0, 1, 1, 1, 1])
                .edge(0, 1)
                .edge(0, 2)
                .edge(0, 3)
                .edge(0, 4)
                .edge(1, 2)
                .build(),
            // K4, uniform labels: every pair of adjacent vertices shares
            // two common neighbors — the worst case for the closed forms'
            // collision corrections.
            GraphBuilder::new()
                .vertices(&[0, 0, 0, 0])
                .edge(0, 1)
                .edge(0, 2)
                .edge(0, 3)
                .edge(1, 2)
                .edge(1, 3)
                .edge(2, 3)
                .build(),
            // Butterfly (two triangles sharing vertex 2) with a pendant
            // path: mixed degrees, shared neighborhoods, a 2-label split.
            GraphBuilder::new()
                .vertices(&[0, 0, 0, 0, 0, 1, 0])
                .edge(0, 1)
                .edge(0, 2)
                .edge(1, 2)
                .edge(2, 3)
                .edge(2, 4)
                .edge(3, 4)
                .edge(2, 5)
                .edge(5, 6)
                .build(),
            LabeledGraph::new(),
        ];
        (patterns, targets)
    }

    #[test]
    fn counts_match_vf2_reference() {
        let (patterns, targets) = suite();
        for p in &patterns {
            let plan = MatchPlan::compile(p);
            for t in &targets {
                let csr = Csr::from_graph(t);
                for cap in [1, 3, u64::MAX] {
                    assert_eq!(
                        plan.count_embeddings(&csr, cap),
                        count_embeddings(p, t, cap),
                        "count mismatch for {p:?} in {t:?} at cap {cap}"
                    );
                }
                assert_eq!(plan.is_subgraph_of(&csr), is_subgraph_of(p, t));
            }
        }
    }

    #[test]
    fn embedding_sets_match_vf2_reference() {
        use std::collections::BTreeSet;
        let (patterns, targets) = suite();
        for p in &patterns {
            let plan = MatchPlan::compile(p);
            for t in &targets {
                let csr = Csr::from_graph(t);
                let ours: BTreeSet<Vec<VertexId>> =
                    plan.find_embeddings(&csr, usize::MAX).into_iter().collect();
                let reference: BTreeSet<Vec<VertexId>> =
                    find_embeddings(p, t, usize::MAX).into_iter().collect();
                assert_eq!(ours, reference, "embedding sets differ for {p:?} in {t:?}");
            }
        }
    }

    /// Spider / broom on 5 vertices: center 0 with leaves 1, 2 and the
    /// 2-path 0–3–4 — a double star on centers (0, 3).
    fn spider(labels: &[u32; 5]) -> LabeledGraph {
        GraphBuilder::new()
            .vertices(labels)
            .edge(0, 1)
            .edge(0, 2)
            .edge(0, 3)
            .edge(3, 4)
            .build()
    }

    #[test]
    fn closed_form_detection() {
        let form = |p: &LabeledGraph| MatchPlan::compile(p).closed_form;
        let star = |p: &LabeledGraph| matches!(form(p), Some(ClosedForm::Star { .. }));
        let double = |p: &LabeledGraph| matches!(form(p), Some(ClosedForm::DoubleStar { .. }));
        assert!(star(&path(&[0, 1])), "single edge is a star");
        assert!(star(&path(&[0, 1, 2])), "2-edge path is a star");
        assert!(star(
            &GraphBuilder::new()
                .vertices(&[0, 1, 1, 2])
                .edge(0, 1)
                .edge(0, 2)
                .edge(0, 3)
                .build()
        ));
        assert!(double(&path(&[0, 1, 2, 3])), "4-path is a double star");
        assert!(double(&spider(&[0, 1, 1, 2, 3])));
        assert!(matches!(
            form(&path(&[0, 1, 2, 3, 4])),
            Some(ClosedForm::Path5 { .. })
        ));
        assert!(form(&triangle(0)).is_none());
        assert!(
            form(&GraphBuilder::new().vertices(&[0, 0]).build()).is_none(),
            "edgeless pattern is not a tree"
        );
        // Tree edge counts without being trees: no closed form.
        let triangle_plus = GraphBuilder::new()
            .vertices(&[0, 0, 0, 0])
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .build();
        assert!(form(&triangle_plus).is_none());
        let triangle_plus_edge = GraphBuilder::new()
            .vertices(&[0, 0, 0, 0, 0])
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .edge(3, 4)
            .build();
        assert!(form(&triangle_plus_edge).is_none());
    }

    #[test]
    fn empty_pattern_has_one_embedding() {
        let plan = MatchPlan::compile(&LabeledGraph::new());
        let t = Csr::from_graph(&triangle(0));
        assert_eq!(plan.count_embeddings(&t, u64::MAX), 1);
        assert!(plan.is_subgraph_of(&t));
        assert_eq!(plan.find_embeddings(&t, 10), vec![Vec::<VertexId>::new()]);
    }

    #[test]
    fn cap_saturates_and_limit_respected() {
        let plan = MatchPlan::compile(&path(&[0, 0]));
        let t = Csr::from_graph(&triangle(0));
        assert_eq!(plan.count_embeddings(&t, 0), 0);
        assert_eq!(plan.count_embeddings(&t, 4), 4);
        assert_eq!(plan.count_embeddings(&t, u64::MAX), 6);
        assert_eq!(plan.find_embeddings(&t, 3).len(), 3);
        assert!(plan.find_embeddings(&t, 0).is_empty());
    }

    #[test]
    fn cached_plan_compiles_once_per_canonical_class() {
        // Two isomorphic paths under different vertex numberings share one
        // cached plan.
        let a = path(&[0, 1, 0]);
        let b = GraphBuilder::new()
            .vertices(&[0, 0, 1])
            .edge(0, 2)
            .edge(1, 2)
            .build();
        let (ka, kb) = (canonical_code(&a), canonical_code(&b));
        assert_eq!(ka, kb);
        let pa = cached_plan(&ka, &a);
        let pb = cached_plan(&kb, &b);
        assert!(Arc::ptr_eq(&pa, &pb), "isomorphic patterns share a plan");
        let t = Csr::from_graph(&path(&[0, 1, 0, 1, 0]));
        assert_eq!(
            pb.count_embeddings(&t, u64::MAX),
            count_embeddings(&b, &path(&[0, 1, 0, 1, 0]), u64::MAX)
        );
    }

    #[test]
    fn convenience_twins_match_reference() {
        let p = path(&[0, 1, 0]);
        let t = path(&[0, 1, 0, 1, 0]);
        assert_eq!(
            count_embeddings_plan(&p, &t, u64::MAX),
            count_embeddings(&p, &t, u64::MAX)
        );
        assert_eq!(is_subgraph_plan(&p, &t), is_subgraph_of(&p, &t));
        use std::collections::BTreeSet;
        let ours: BTreeSet<_> = find_embeddings_plan(&p, &t, usize::MAX)
            .into_iter()
            .collect();
        let reference: BTreeSet<_> = find_embeddings(&p, &t, usize::MAX).into_iter().collect();
        assert_eq!(ours, reference);
    }
}
