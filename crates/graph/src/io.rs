//! JSON persistence for graph databases and pattern sets.
//!
//! Experiments need reproducible inputs and auditable outputs; this module
//! serializes a [`GraphDb`] (with its stable ids) and pattern sets as a
//! single JSON document — fine for the laptop-scale databases this
//! workspace targets. The encoder/decoder are hand-rolled for exactly the
//! shapes these types produce (the build environment has no crates.io
//! access, so a `serde_json` dependency is not an option).
//!
//! Format:
//!
//! ```json
//! {"graphs": [[0, {"labels": [0, 1], "edges": [[0, 1]]}], ...]}
//! ```

use crate::db::{BatchUpdate, GraphDb, GraphId};
use crate::graph::LabeledGraph;

/// Serialization/deserialization errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}
impl std::error::Error for Error {}

/// Result alias for this module.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializable snapshot of a database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbSnapshot {
    /// `(id, graph)` pairs in id order.
    pub graphs: Vec<(u64, LabeledGraph)>,
}

/// Captures a database into a snapshot.
pub fn snapshot(db: &GraphDb) -> DbSnapshot {
    DbSnapshot {
        graphs: db
            .iter()
            .map(|(id, g)| (id.0, g.as_ref().clone()))
            .collect(),
    }
}

/// Restores a database from a snapshot, **preserving the original ids**
/// (and placing the id counter past the largest restored id).
pub fn restore(snapshot: &DbSnapshot) -> GraphDb {
    let mut db = GraphDb::new();
    // GraphDb only hands out fresh ids; reconstruct by inserting in id
    // order and verifying density, falling back to remapping gaps.
    let mut expected_next = 0u64;
    let dense = snapshot.graphs.iter().all(|&(id, _)| {
        let ok = id == expected_next;
        expected_next += 1;
        ok
    });
    if dense {
        for (_, g) in &snapshot.graphs {
            db.insert(g.clone());
        }
        return db;
    }
    // Sparse ids (the source db saw deletions): pad with placeholders that
    // are immediately removed, keeping surviving ids identical.
    let mut next = 0u64;
    for &(id, ref g) in &snapshot.graphs {
        while next < id {
            let filler = db.insert(LabeledGraph::new());
            db.remove(filler);
            next += 1;
        }
        let got = db.insert(g.clone());
        debug_assert_eq!(got, GraphId(id));
        next = id + 1;
    }
    db
}

/// Serializes a database to a JSON string.
pub fn db_to_json(db: &GraphDb) -> Result<String> {
    let snap = snapshot(db);
    let mut out = String::new();
    out.push_str("{\"graphs\":[");
    for (i, (id, g)) in snap.graphs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        out.push_str(&id.to_string());
        out.push(',');
        write_graph(&mut out, g);
        out.push(']');
    }
    out.push_str("]}");
    Ok(out)
}

/// Deserializes a database from a JSON string.
pub fn db_from_json(json: &str) -> Result<GraphDb> {
    let mut p = Parser::new(json);
    p.expect('{')?;
    p.expect_key("graphs")?;
    let mut graphs = Vec::new();
    p.expect('[')?;
    if !p.peek_is(']') {
        loop {
            p.expect('[')?;
            let id = p.parse_u64()?;
            p.expect(',')?;
            let graph = p.parse_graph()?;
            p.expect(']')?;
            graphs.push((id, graph));
            if !p.eat(',') {
                break;
            }
        }
    }
    p.expect(']')?;
    p.expect('}')?;
    p.expect_end()?;
    Ok(restore(&DbSnapshot { graphs }))
}

/// Serializes a pattern set to JSON.
pub fn patterns_to_json(patterns: &[LabeledGraph]) -> Result<String> {
    let mut out = String::new();
    out.push('[');
    for (i, g) in patterns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_graph(&mut out, g);
    }
    out.push(']');
    Ok(out)
}

/// Deserializes a pattern set from JSON.
pub fn patterns_from_json(json: &str) -> Result<Vec<LabeledGraph>> {
    let mut p = Parser::new(json);
    let mut patterns = Vec::new();
    p.expect('[')?;
    if !p.peek_is(']') {
        loop {
            patterns.push(p.parse_graph()?);
            if !p.eat(',') {
                break;
            }
        }
    }
    p.expect(']')?;
    p.expect_end()?;
    Ok(patterns)
}

/// Serializes a batch update to JSON:
/// `{"insert": [graph, ...], "delete": [id, ...]}` — the wire format of
/// the serving daemon's `POST /v1/{tenant}/updates` endpoint.
pub fn batch_to_json(batch: &BatchUpdate) -> Result<String> {
    let mut out = String::new();
    out.push_str("{\"insert\":[");
    for (i, g) in batch.insert.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_graph(&mut out, g);
    }
    out.push_str("],\"delete\":[");
    for (i, id) in batch.delete.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&id.0.to_string());
    }
    out.push_str("]}");
    Ok(out)
}

/// Deserializes a batch update from JSON (graphs validated exactly like
/// [`patterns_from_json`]: edge endpoints in range, no self-loops, no
/// duplicate edges).
pub fn batch_from_json(json: &str) -> Result<BatchUpdate> {
    let mut p = Parser::new(json);
    p.expect('{')?;
    p.expect_key("insert")?;
    let mut insert = Vec::new();
    p.expect('[')?;
    if !p.peek_is(']') {
        loop {
            insert.push(p.parse_graph()?);
            if !p.eat(',') {
                break;
            }
        }
    }
    p.expect(']')?;
    p.expect(',')?;
    p.expect_key("delete")?;
    let mut delete = Vec::new();
    p.expect('[')?;
    if !p.peek_is(']') {
        loop {
            delete.push(GraphId(p.parse_u64()?));
            if !p.eat(',') {
                break;
            }
        }
    }
    p.expect(']')?;
    p.expect('}')?;
    p.expect_end()?;
    Ok(BatchUpdate { insert, delete })
}

fn write_graph(out: &mut String, g: &LabeledGraph) {
    out.push_str("{\"labels\":[");
    for (i, l) in g.labels().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&l.to_string());
    }
    out.push_str("],\"edges\":[");
    for (i, &(u, v)) in g.edges().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        out.push_str(&u.to_string());
        out.push(',');
        out.push_str(&v.to_string());
        out.push(']');
    }
    out.push_str("]}");
}

/// Recursive-descent parser over the exact grammar this module emits
/// (whitespace-tolerant).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn peek_is(&mut self, c: char) -> bool {
        self.peek() == Some(c as u8)
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek_is(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<()> {
        if self.eat(c) {
            Ok(())
        } else {
            let found = self.peek().map(|b| b as char);
            Err(Error(format!(
                "expected '{c}' at byte {}, found {found:?}",
                self.pos
            )))
        }
    }

    fn expect_key(&mut self, key: &str) -> Result<()> {
        self.skip_ws();
        let quoted = format!("\"{key}\"");
        if self.bytes[self.pos..].starts_with(quoted.as_bytes()) {
            self.pos += quoted.len();
            self.expect(':')
        } else {
            Err(Error(format!("expected key {quoted} at byte {}", self.pos)))
        }
    }

    fn expect_end(&mut self) -> Result<()> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(Error(format!("trailing input at byte {}", self.pos)))
        }
    }

    fn parse_u64(&mut self) -> Result<u64> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(Error(format!("expected integer at byte {start}")));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are utf8")
            .parse()
            .map_err(|e| Error(format!("bad integer at byte {start}: {e}")))
    }

    fn parse_u32(&mut self) -> Result<u32> {
        let v = self.parse_u64()?;
        u32::try_from(v).map_err(|_| Error(format!("integer {v} out of u32 range")))
    }

    fn parse_graph(&mut self) -> Result<LabeledGraph> {
        self.expect('{')?;
        self.expect_key("labels")?;
        let mut labels = Vec::new();
        self.expect('[')?;
        if !self.peek_is(']') {
            loop {
                labels.push(self.parse_u32()?);
                if !self.eat(',') {
                    break;
                }
            }
        }
        self.expect(']')?;
        self.expect(',')?;
        self.expect_key("edges")?;
        let mut edges = Vec::new();
        self.expect('[')?;
        if !self.peek_is(']') {
            loop {
                self.expect('[')?;
                let u = self.parse_u32()?;
                self.expect(',')?;
                let v = self.parse_u32()?;
                self.expect(']')?;
                edges.push((u, v));
                if !self.eat(',') {
                    break;
                }
            }
        }
        self.expect(']')?;
        self.expect('}')?;
        let n = labels.len() as u32;
        for &(u, v) in &edges {
            if u >= n || v >= n || u == v {
                return Err(Error(format!("invalid edge ({u}, {v}) for {n} vertices")));
            }
        }
        let mut g = LabeledGraph::from_parts(labels, &[]);
        for &(u, v) in &edges {
            if g.has_edge(u, v) {
                return Err(Error(format!("duplicate edge ({u}, {v})")));
            }
            g.add_edge(u, v);
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    #[test]
    fn db_roundtrips_through_json() {
        let db = GraphDb::from_graphs([path(&[0, 1, 2]), path(&[3, 3])]);
        let json = db_to_json(&db).expect("serialize");
        let back = db_from_json(&json).expect("deserialize");
        assert_eq!(back.len(), db.len());
        for ((ia, ga), (ib, gb)) in db.iter().zip(back.iter()) {
            assert_eq!(ia, ib);
            assert_eq!(ga.as_ref(), gb.as_ref());
        }
    }

    #[test]
    fn sparse_ids_survive_roundtrip() {
        let mut db = GraphDb::from_graphs([path(&[0, 1]), path(&[1, 2]), path(&[2, 3])]);
        let victim = db.ids().nth(1).unwrap();
        db.remove(victim);
        let json = db_to_json(&db).expect("serialize");
        let back = db_from_json(&json).expect("deserialize");
        let want: Vec<GraphId> = db.ids().collect();
        let got: Vec<GraphId> = back.ids().collect();
        assert_eq!(want, got, "ids must be preserved across gaps");
    }

    #[test]
    fn patterns_roundtrip() {
        let patterns = vec![path(&[0, 1, 2]), path(&[4, 4])];
        let json = patterns_to_json(&patterns).expect("serialize");
        let back = patterns_from_json(&json).expect("deserialize");
        assert_eq!(patterns, back);
    }

    #[test]
    fn batch_roundtrips_through_json() {
        let batch = BatchUpdate {
            insert: vec![path(&[0, 1, 2]), path(&[7])],
            delete: vec![GraphId(3), GraphId(11)],
        };
        let json = batch_to_json(&batch).expect("serialize");
        let back = batch_from_json(&json).expect("deserialize");
        assert_eq!(back.insert, batch.insert);
        assert_eq!(back.delete, batch.delete);

        let empty = BatchUpdate::default();
        let back = batch_from_json(&batch_to_json(&empty).unwrap()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn malformed_batch_json_is_an_error() {
        assert!(batch_from_json("{}").is_err());
        assert!(batch_from_json("{\"insert\":[],\"delete\":[]} x").is_err());
        assert!(
            batch_from_json("{\"insert\":[{\"labels\":[0],\"edges\":[[0,1]]}],\"delete\":[]}")
                .is_err()
        );
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(db_from_json("{").is_err());
        assert!(db_from_json("").is_err());
        assert!(patterns_from_json("[{}").is_err());
        assert!(db_from_json("{\"graphs\":[]} trailing").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let json = "[ { \"labels\" : [ 0 , 1 ] , \"edges\" : [ [ 0 , 1 ] ] } ]";
        let back = patterns_from_json(json).expect("deserialize");
        assert_eq!(back, vec![path(&[0, 1])]);
    }

    #[test]
    fn invalid_edges_are_rejected() {
        // Out of range endpoint.
        assert!(patterns_from_json("[{\"labels\":[0],\"edges\":[[0,1]]}]").is_err());
        // Self loop.
        assert!(patterns_from_json("[{\"labels\":[0,0],\"edges\":[[1,1]]}]").is_err());
        // Duplicate edge.
        assert!(patterns_from_json("[{\"labels\":[0,0],\"edges\":[[0,1],[1,0]]}]").is_err());
    }

    #[test]
    fn empty_db_and_empty_patterns() {
        let db = GraphDb::new();
        let back = db_from_json(&db_to_json(&db).unwrap()).unwrap();
        assert!(back.is_empty());
        let ps = patterns_from_json(&patterns_to_json(&[]).unwrap()).unwrap();
        assert!(ps.is_empty());
    }
}
