//! JSON persistence for graph databases and pattern sets.
//!
//! Experiments need reproducible inputs and auditable outputs; this module
//! serializes a [`GraphDb`] (with its stable ids) and pattern sets through
//! serde. The format is a single JSON document — fine for the
//! laptop-scale databases this workspace targets.

use crate::db::{GraphDb, GraphId};
use crate::graph::LabeledGraph;
use serde::{Deserialize, Serialize};

/// Serializable snapshot of a database.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DbSnapshot {
    /// `(id, graph)` pairs in id order.
    pub graphs: Vec<(u64, LabeledGraph)>,
}

/// Captures a database into a snapshot.
pub fn snapshot(db: &GraphDb) -> DbSnapshot {
    DbSnapshot {
        graphs: db
            .iter()
            .map(|(id, g)| (id.0, g.as_ref().clone()))
            .collect(),
    }
}

/// Restores a database from a snapshot, **preserving the original ids**
/// (and placing the id counter past the largest restored id).
pub fn restore(snapshot: &DbSnapshot) -> GraphDb {
    let mut db = GraphDb::new();
    // GraphDb only hands out fresh ids; reconstruct by inserting in id
    // order and verifying density, falling back to remapping gaps.
    let mut expected_next = 0u64;
    let dense = snapshot
        .graphs
        .iter()
        .all(|&(id, _)| {
            let ok = id == expected_next;
            expected_next += 1;
            ok
        });
    if dense {
        for (_, g) in &snapshot.graphs {
            db.insert(g.clone());
        }
        return db;
    }
    // Sparse ids (the source db saw deletions): pad with placeholders that
    // are immediately removed, keeping surviving ids identical.
    let mut next = 0u64;
    for &(id, ref g) in &snapshot.graphs {
        while next < id {
            let filler = db.insert(LabeledGraph::new());
            db.remove(filler);
            next += 1;
        }
        let got = db.insert(g.clone());
        debug_assert_eq!(got, GraphId(id));
        next = id + 1;
    }
    db
}

/// Serializes a database to a JSON string.
pub fn db_to_json(db: &GraphDb) -> serde_json_like::Result<String> {
    serde_json_like::to_string(&snapshot(db))
}

/// Deserializes a database from a JSON string.
pub fn db_from_json(json: &str) -> serde_json_like::Result<GraphDb> {
    Ok(restore(&serde_json_like::from_str(json)?))
}

/// Serializes a pattern set to JSON.
pub fn patterns_to_json(patterns: &[LabeledGraph]) -> serde_json_like::Result<String> {
    serde_json_like::to_string(&patterns.to_vec())
}

/// Deserializes a pattern set from JSON.
pub fn patterns_from_json(json: &str) -> serde_json_like::Result<Vec<LabeledGraph>> {
    serde_json_like::from_str(json)
}

/// A minimal JSON (de)serializer over serde, avoiding a `serde_json`
/// dependency (not in the approved offline crate set). Supports exactly
/// the shapes our types produce: structs, sequences, tuples, integers and
/// strings.
pub mod serde_json_like {
    use serde::de::DeserializeOwned;
    use serde::Serialize;

    /// Serialization/deserialization errors.
    #[derive(Debug)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "json error: {}", self.0)
        }
    }
    impl std::error::Error for Error {}

    /// Result alias.
    pub type Result<T> = std::result::Result<T, Error>;

    /// Serializes any serde value to JSON text.
    pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
        let mut out = Vec::new();
        let mut ser = json_ser::Serializer { out: &mut out };
        value
            .serialize(&mut ser)
            .map_err(|e| Error(e.to_string()))?;
        String::from_utf8(out).map_err(|e| Error(e.to_string()))
    }

    /// Deserializes JSON text into any serde value.
    pub fn from_str<T: DeserializeOwned>(json: &str) -> Result<T> {
        let mut de = json_de::Deserializer::new(json);
        let value = T::deserialize(&mut de).map_err(|e| Error(e.to_string()))?;
        de.skip_ws();
        if !de.is_done() {
            return Err(Error("trailing input".into()));
        }
        Ok(value)
    }

    mod json_ser {
        use serde::ser::{self, Serialize};

        #[derive(Debug)]
        pub struct SerError(pub String);
        impl std::fmt::Display for SerError {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
        impl std::error::Error for SerError {}
        impl ser::Error for SerError {
            fn custom<T: std::fmt::Display>(msg: T) -> Self {
                SerError(msg.to_string())
            }
        }

        pub struct Serializer<'a> {
            pub out: &'a mut Vec<u8>,
        }

        impl Serializer<'_> {
            fn push(&mut self, s: &str) {
                self.out.extend_from_slice(s.as_bytes());
            }
        }

        pub struct Seq<'a, 'b> {
            ser: &'a mut Serializer<'b>,
            first: bool,
            close: char,
        }

        impl<'a, 'b> Seq<'a, 'b> {
            fn element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), SerError> {
                if !self.first {
                    self.ser.push(",");
                }
                self.first = false;
                value.serialize(&mut *self.ser)
            }
            fn finish(self) -> Result<(), SerError> {
                let mut buf = [0u8; 4];
                self.ser.push(self.close.encode_utf8(&mut buf));
                Ok(())
            }
        }

        pub struct Map<'a, 'b> {
            ser: &'a mut Serializer<'b>,
            first: bool,
        }

        impl Map<'_, '_> {
            fn field<T: ?Sized + Serialize>(
                &mut self,
                key: &'static str,
                value: &T,
            ) -> Result<(), SerError> {
                if !self.first {
                    self.ser.push(",");
                }
                self.first = false;
                self.ser.push("\"");
                self.ser.push(key);
                self.ser.push("\":");
                value.serialize(&mut *self.ser)
            }
        }

        macro_rules! ser_int {
            ($($method:ident : $ty:ty),*) => {$(
                fn $method(self, v: $ty) -> Result<(), SerError> {
                    self.push(&v.to_string());
                    Ok(())
                }
            )*};
        }

        impl<'a, 'b> ser::Serializer for &'a mut Serializer<'b> {
            type Ok = ();
            type Error = SerError;
            type SerializeSeq = Seq<'a, 'b>;
            type SerializeTuple = Seq<'a, 'b>;
            type SerializeTupleStruct = Seq<'a, 'b>;
            type SerializeTupleVariant = Seq<'a, 'b>;
            type SerializeMap = Map<'a, 'b>;
            type SerializeStruct = Map<'a, 'b>;
            type SerializeStructVariant = Map<'a, 'b>;

            ser_int!(serialize_i8: i8, serialize_i16: i16, serialize_i32: i32,
                     serialize_i64: i64, serialize_u8: u8, serialize_u16: u16,
                     serialize_u32: u32, serialize_u64: u64);

            fn serialize_bool(self, v: bool) -> Result<(), SerError> {
                self.push(if v { "true" } else { "false" });
                Ok(())
            }
            fn serialize_f32(self, v: f32) -> Result<(), SerError> {
                self.push(&format!("{v}"));
                Ok(())
            }
            fn serialize_f64(self, v: f64) -> Result<(), SerError> {
                self.push(&format!("{v}"));
                Ok(())
            }
            fn serialize_char(self, v: char) -> Result<(), SerError> {
                self.serialize_str(&v.to_string())
            }
            fn serialize_str(self, v: &str) -> Result<(), SerError> {
                self.push("\"");
                for c in v.chars() {
                    match c {
                        '"' => self.push("\\\""),
                        '\\' => self.push("\\\\"),
                        '\n' => self.push("\\n"),
                        '\t' => self.push("\\t"),
                        '\r' => self.push("\\r"),
                        c if (c as u32) < 0x20 => {
                            self.push(&format!("\\u{:04x}", c as u32));
                        }
                        c => {
                            let mut buf = [0u8; 4];
                            self.push(c.encode_utf8(&mut buf));
                        }
                    }
                }
                self.push("\"");
                Ok(())
            }
            fn serialize_bytes(self, v: &[u8]) -> Result<(), SerError> {
                use serde::ser::SerializeSeq;
                let mut seq = self.serialize_seq(Some(v.len()))?;
                for b in v {
                    seq.serialize_element(b)?;
                }
                seq.end()
            }
            fn serialize_none(self) -> Result<(), SerError> {
                self.push("null");
                Ok(())
            }
            fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), SerError> {
                value.serialize(self)
            }
            fn serialize_unit(self) -> Result<(), SerError> {
                self.push("null");
                Ok(())
            }
            fn serialize_unit_struct(self, _: &'static str) -> Result<(), SerError> {
                self.serialize_unit()
            }
            fn serialize_unit_variant(
                self,
                _: &'static str,
                _: u32,
                variant: &'static str,
            ) -> Result<(), SerError> {
                self.serialize_str(variant)
            }
            fn serialize_newtype_struct<T: ?Sized + Serialize>(
                self,
                _: &'static str,
                value: &T,
            ) -> Result<(), SerError> {
                value.serialize(self)
            }
            fn serialize_newtype_variant<T: ?Sized + Serialize>(
                self,
                _: &'static str,
                _: u32,
                variant: &'static str,
                value: &T,
            ) -> Result<(), SerError> {
                self.push("{");
                self.serialize_str(variant)?;
                self.push(":");
                value.serialize(&mut *self)?;
                self.push("}");
                Ok(())
            }
            fn serialize_seq(self, _: Option<usize>) -> Result<Seq<'a, 'b>, SerError> {
                self.push("[");
                Ok(Seq {
                    ser: self,
                    first: true,
                    close: ']',
                })
            }
            fn serialize_tuple(self, len: usize) -> Result<Seq<'a, 'b>, SerError> {
                let _ = len;
                self.serialize_seq(None)
            }
            fn serialize_tuple_struct(
                self,
                _: &'static str,
                len: usize,
            ) -> Result<Seq<'a, 'b>, SerError> {
                self.serialize_tuple(len)
            }
            fn serialize_tuple_variant(
                self,
                _: &'static str,
                _: u32,
                _: &'static str,
                len: usize,
            ) -> Result<Seq<'a, 'b>, SerError> {
                self.serialize_tuple(len)
            }
            fn serialize_map(self, _: Option<usize>) -> Result<Map<'a, 'b>, SerError> {
                self.push("{");
                Ok(Map {
                    ser: self,
                    first: true,
                })
            }
            fn serialize_struct(
                self,
                _: &'static str,
                _: usize,
            ) -> Result<Map<'a, 'b>, SerError> {
                self.serialize_map(None)
            }
            fn serialize_struct_variant(
                self,
                _: &'static str,
                _: u32,
                _: &'static str,
                _: usize,
            ) -> Result<Map<'a, 'b>, SerError> {
                self.serialize_map(None)
            }
        }

        impl ser::SerializeSeq for Seq<'_, '_> {
            type Ok = ();
            type Error = SerError;
            fn serialize_element<T: ?Sized + Serialize>(
                &mut self,
                value: &T,
            ) -> Result<(), SerError> {
                self.element(value)
            }
            fn end(self) -> Result<(), SerError> {
                self.finish()
            }
        }
        impl ser::SerializeTuple for Seq<'_, '_> {
            type Ok = ();
            type Error = SerError;
            fn serialize_element<T: ?Sized + Serialize>(
                &mut self,
                value: &T,
            ) -> Result<(), SerError> {
                self.element(value)
            }
            fn end(self) -> Result<(), SerError> {
                self.finish()
            }
        }
        impl ser::SerializeTupleStruct for Seq<'_, '_> {
            type Ok = ();
            type Error = SerError;
            fn serialize_field<T: ?Sized + Serialize>(
                &mut self,
                value: &T,
            ) -> Result<(), SerError> {
                self.element(value)
            }
            fn end(self) -> Result<(), SerError> {
                self.finish()
            }
        }
        impl ser::SerializeTupleVariant for Seq<'_, '_> {
            type Ok = ();
            type Error = SerError;
            fn serialize_field<T: ?Sized + Serialize>(
                &mut self,
                value: &T,
            ) -> Result<(), SerError> {
                self.element(value)
            }
            fn end(self) -> Result<(), SerError> {
                self.finish()
            }
        }
        impl ser::SerializeMap for Map<'_, '_> {
            type Ok = ();
            type Error = SerError;
            fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), SerError> {
                if !self.first {
                    self.ser.push(",");
                }
                self.first = false;
                key.serialize(&mut *self.ser)
            }
            fn serialize_value<T: ?Sized + Serialize>(
                &mut self,
                value: &T,
            ) -> Result<(), SerError> {
                self.ser.push(":");
                value.serialize(&mut *self.ser)
            }
            fn end(self) -> Result<(), SerError> {
                self.ser.push("}");
                Ok(())
            }
        }
        impl ser::SerializeStruct for Map<'_, '_> {
            type Ok = ();
            type Error = SerError;
            fn serialize_field<T: ?Sized + Serialize>(
                &mut self,
                key: &'static str,
                value: &T,
            ) -> Result<(), SerError> {
                self.field(key, value)
            }
            fn end(self) -> Result<(), SerError> {
                self.ser.push("}");
                Ok(())
            }
        }
        impl ser::SerializeStructVariant for Map<'_, '_> {
            type Ok = ();
            type Error = SerError;
            fn serialize_field<T: ?Sized + Serialize>(
                &mut self,
                key: &'static str,
                value: &T,
            ) -> Result<(), SerError> {
                self.field(key, value)
            }
            fn end(self) -> Result<(), SerError> {
                self.ser.push("}");
                Ok(())
            }
        }
    }

    mod json_de {
        use serde::de::{self, DeserializeSeed, MapAccess, SeqAccess, Visitor};

        #[derive(Debug)]
        pub struct DeError(pub String);
        impl std::fmt::Display for DeError {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
        impl std::error::Error for DeError {}
        impl de::Error for DeError {
            fn custom<T: std::fmt::Display>(msg: T) -> Self {
                DeError(msg.to_string())
            }
        }

        pub struct Deserializer<'de> {
            input: &'de str,
            pos: usize,
        }

        impl<'de> Deserializer<'de> {
            pub fn new(input: &'de str) -> Self {
                Deserializer { input, pos: 0 }
            }
            pub fn is_done(&self) -> bool {
                self.pos >= self.input.len()
            }
            fn rest(&self) -> &'de str {
                &self.input[self.pos..]
            }
            pub fn skip_ws(&mut self) {
                let trimmed = self.rest().trim_start();
                self.pos = self.input.len() - trimmed.len();
            }
            fn peek(&mut self) -> Option<char> {
                self.skip_ws();
                self.rest().chars().next()
            }
            fn expect(&mut self, c: char) -> Result<(), DeError> {
                self.skip_ws();
                if self.rest().starts_with(c) {
                    self.pos += c.len_utf8();
                    Ok(())
                } else {
                    Err(DeError(format!(
                        "expected '{c}' at offset {}: ...{}",
                        self.pos,
                        &self.rest()[..self.rest().len().min(20)]
                    )))
                }
            }
            fn parse_number(&mut self) -> Result<f64, DeError> {
                self.skip_ws();
                let rest = self.rest();
                let end = rest
                    .char_indices()
                    .find(|&(_, c)| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
                    .map_or(rest.len(), |(i, _)| i);
                let token = &rest[..end];
                let value: f64 = token
                    .parse()
                    .map_err(|_| DeError(format!("bad number '{token}'")))?;
                self.pos += end;
                Ok(value)
            }
            fn parse_string(&mut self) -> Result<String, DeError> {
                self.expect('"')?;
                let mut out = String::new();
                let mut chars = self.rest().char_indices();
                loop {
                    let Some((i, c)) = chars.next() else {
                        return Err(DeError("unterminated string".into()));
                    };
                    match c {
                        '"' => {
                            self.pos += i + 1;
                            return Ok(out);
                        }
                        '\\' => {
                            let Some((_, esc)) = chars.next() else {
                                return Err(DeError("bad escape".into()));
                            };
                            match esc {
                                '"' => out.push('"'),
                                '\\' => out.push('\\'),
                                'n' => out.push('\n'),
                                't' => out.push('\t'),
                                'r' => out.push('\r'),
                                'u' => {
                                    let mut code = 0u32;
                                    for _ in 0..4 {
                                        let Some((_, h)) = chars.next() else {
                                            return Err(DeError("bad \\u".into()));
                                        };
                                        code = code * 16
                                            + h.to_digit(16)
                                                .ok_or_else(|| DeError("bad hex".into()))?;
                                    }
                                    out.push(
                                        char::from_u32(code)
                                            .ok_or_else(|| DeError("bad codepoint".into()))?,
                                    );
                                }
                                other => {
                                    return Err(DeError(format!("bad escape '\\{other}'")));
                                }
                            }
                        }
                        c => out.push(c),
                    }
                }
            }
        }

        impl<'de> de::Deserializer<'de> for &mut Deserializer<'de> {
            type Error = DeError;

            fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, DeError> {
                match self.peek() {
                    Some('"') => visitor.visit_string(self.parse_string()?),
                    Some('[') => self.deserialize_seq(visitor),
                    Some('{') => self.deserialize_map(visitor),
                    Some('t') | Some('f') => self.deserialize_bool(visitor),
                    Some('n') => {
                        self.pos += 4;
                        visitor.visit_unit()
                    }
                    Some(_) => {
                        let n = self.parse_number()?;
                        if n.fract() == 0.0 && n >= 0.0 {
                            visitor.visit_u64(n as u64)
                        } else if n.fract() == 0.0 {
                            visitor.visit_i64(n as i64)
                        } else {
                            visitor.visit_f64(n)
                        }
                    }
                    None => Err(DeError("unexpected end of input".into())),
                }
            }

            serde::forward_to_deserialize_any! {
                i8 i16 i32 i64 i128 u8 u16 u32 u64 u128 f32 f64 char str string
                bytes byte_buf unit unit_struct ignored_any identifier
            }

            fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, DeError> {
                self.skip_ws();
                if self.rest().starts_with("true") {
                    self.pos += 4;
                    visitor.visit_bool(true)
                } else if self.rest().starts_with("false") {
                    self.pos += 5;
                    visitor.visit_bool(false)
                } else {
                    Err(DeError("expected bool".into()))
                }
            }

            fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, DeError> {
                if self.peek() == Some('n') {
                    self.pos += 4;
                    visitor.visit_none()
                } else {
                    visitor.visit_some(self)
                }
            }

            fn deserialize_newtype_struct<V: Visitor<'de>>(
                self,
                _: &'static str,
                visitor: V,
            ) -> Result<V::Value, DeError> {
                visitor.visit_newtype_struct(self)
            }

            fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, DeError> {
                self.expect('[')?;
                let value = visitor.visit_seq(CommaSeparated {
                    de: self,
                    first: true,
                    terminator: ']',
                })?;
                self.expect(']')?;
                Ok(value)
            }

            fn deserialize_tuple<V: Visitor<'de>>(
                self,
                _: usize,
                visitor: V,
            ) -> Result<V::Value, DeError> {
                self.deserialize_seq(visitor)
            }

            fn deserialize_tuple_struct<V: Visitor<'de>>(
                self,
                _: &'static str,
                _: usize,
                visitor: V,
            ) -> Result<V::Value, DeError> {
                self.deserialize_seq(visitor)
            }

            fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, DeError> {
                self.expect('{')?;
                let value = visitor.visit_map(CommaSeparated {
                    de: self,
                    first: true,
                    terminator: '}',
                })?;
                self.expect('}')?;
                Ok(value)
            }

            fn deserialize_struct<V: Visitor<'de>>(
                self,
                _: &'static str,
                _: &'static [&'static str],
                visitor: V,
            ) -> Result<V::Value, DeError> {
                self.deserialize_map(visitor)
            }

            fn deserialize_enum<V: Visitor<'de>>(
                self,
                _: &'static str,
                _: &'static [&'static str],
                visitor: V,
            ) -> Result<V::Value, DeError> {
                visitor.visit_enum(EnumAccess { de: self })
            }
        }

        struct CommaSeparated<'a, 'de> {
            de: &'a mut Deserializer<'de>,
            first: bool,
            terminator: char,
        }

        impl<'a, 'de> CommaSeparated<'a, 'de> {
            fn at_end(&mut self) -> bool {
                self.de.peek() == Some(self.terminator)
            }
            fn advance(&mut self) -> Result<bool, DeError> {
                if self.at_end() {
                    return Ok(false);
                }
                if !self.first {
                    self.de.expect(',')?;
                }
                self.first = false;
                Ok(true)
            }
        }

        impl<'de> SeqAccess<'de> for CommaSeparated<'_, 'de> {
            type Error = DeError;
            fn next_element_seed<T: DeserializeSeed<'de>>(
                &mut self,
                seed: T,
            ) -> Result<Option<T::Value>, DeError> {
                if !self.advance()? {
                    return Ok(None);
                }
                seed.deserialize(&mut *self.de).map(Some)
            }
        }

        impl<'de> MapAccess<'de> for CommaSeparated<'_, 'de> {
            type Error = DeError;
            fn next_key_seed<K: DeserializeSeed<'de>>(
                &mut self,
                seed: K,
            ) -> Result<Option<K::Value>, DeError> {
                if !self.advance()? {
                    return Ok(None);
                }
                seed.deserialize(&mut *self.de).map(Some)
            }
            fn next_value_seed<V: DeserializeSeed<'de>>(
                &mut self,
                seed: V,
            ) -> Result<V::Value, DeError> {
                self.de.expect(':')?;
                seed.deserialize(&mut *self.de)
            }
        }

        struct EnumAccess<'a, 'de> {
            de: &'a mut Deserializer<'de>,
        }

        impl<'de> de::EnumAccess<'de> for EnumAccess<'_, 'de> {
            type Error = DeError;
            type Variant = UnitVariant;
            fn variant_seed<V: DeserializeSeed<'de>>(
                self,
                seed: V,
            ) -> Result<(V::Value, UnitVariant), DeError> {
                // Only unit variants are produced by our types.
                let value = seed.deserialize(&mut *self.de)?;
                Ok((value, UnitVariant))
            }
        }

        pub struct UnitVariant;
        impl<'de> de::VariantAccess<'de> for UnitVariant {
            type Error = DeError;
            fn unit_variant(self) -> Result<(), DeError> {
                Ok(())
            }
            fn newtype_variant_seed<T: DeserializeSeed<'de>>(
                self,
                _: T,
            ) -> Result<T::Value, DeError> {
                Err(DeError("newtype variants unsupported".into()))
            }
            fn tuple_variant<V: Visitor<'de>>(self, _: usize, _: V) -> Result<V::Value, DeError> {
                Err(DeError("tuple variants unsupported".into()))
            }
            fn struct_variant<V: Visitor<'de>>(
                self,
                _: &'static [&'static str],
                _: V,
            ) -> Result<V::Value, DeError> {
                Err(DeError("struct variants unsupported".into()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    #[test]
    fn db_roundtrips_through_json() {
        let db = GraphDb::from_graphs([path(&[0, 1, 2]), path(&[3, 3])]);
        let json = db_to_json(&db).expect("serialize");
        let back = db_from_json(&json).expect("deserialize");
        assert_eq!(back.len(), db.len());
        for ((ia, ga), (ib, gb)) in db.iter().zip(back.iter()) {
            assert_eq!(ia, ib);
            assert_eq!(ga.as_ref(), gb.as_ref());
        }
    }

    #[test]
    fn sparse_ids_survive_roundtrip() {
        let mut db = GraphDb::from_graphs([path(&[0, 1]), path(&[1, 2]), path(&[2, 3])]);
        let victim = db.ids().nth(1).unwrap();
        db.remove(victim);
        let json = db_to_json(&db).expect("serialize");
        let back = db_from_json(&json).expect("deserialize");
        let want: Vec<GraphId> = db.ids().collect();
        let got: Vec<GraphId> = back.ids().collect();
        assert_eq!(want, got, "ids must be preserved across gaps");
    }

    #[test]
    fn patterns_roundtrip() {
        let patterns = vec![path(&[0, 1, 2]), path(&[4, 4])];
        let json = patterns_to_json(&patterns).expect("serialize");
        let back = patterns_from_json(&json).expect("deserialize");
        assert_eq!(patterns, back);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(db_from_json("{").is_err());
        assert!(db_from_json("").is_err());
        assert!(patterns_from_json("[{}").is_err());
        assert!(db_from_json("[] trailing").is_err());
    }

    #[test]
    fn strings_with_escapes_roundtrip() {
        use serde::{Deserialize, Serialize};
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct S {
            text: String,
        }
        let original = S {
            text: "a\"b\\c\nd\te".to_owned(),
        };
        let json = serde_json_like::to_string(&original).unwrap();
        let back: S = serde_json_like::from_str(&json).unwrap();
        assert_eq!(original, back);
    }
}
