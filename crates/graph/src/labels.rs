//! Vertex-label interning.
//!
//! Data graphs in the paper's target domains (PubChem, AIDS, eMolecules)
//! carry short string labels such as atom symbols (`"C"`, `"O"`, `"N"`).
//! Graphs store compact [`LabelId`]s; an [`Interner`] maps between the two.

use std::collections::HashMap;

/// A compact, interned vertex label.
///
/// `LabelId`s are plain `u32` indices into an [`Interner`]. Graphs compare
/// labels by id only, so two graphs are label-compatible exactly when they
/// were built against the same interner (or with the same raw ids).
pub type LabelId = u32;

/// Bidirectional map between string labels and [`LabelId`]s.
///
/// Interning is append-only: ids are dense, stable and assigned in first-seen
/// order, which keeps every downstream computation deterministic.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<String>,
    ids: HashMap<String, LabelId>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner pre-populated with `names`, in order.
    ///
    /// Duplicate names are collapsed to their first occurrence.
    pub fn with_labels<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut interner = Self::new();
        for name in names {
            interner.intern(name.as_ref());
        }
        interner
    }

    /// Returns the id for `name`, interning it if new.
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as LabelId;
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Returns the id for `name` if it has been interned.
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.ids.get(name).copied()
    }

    /// Returns the string for `id`, or `None` if out of range.
    pub fn name(&self, id: LabelId) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Returns the string for `id`, or `"?<id>"` if unknown.
    ///
    /// Convenient for diagnostics where a missing label should not panic.
    pub fn name_or_placeholder(&self, id: LabelId) -> String {
        match self.name(id) {
            Some(name) => name.to_owned(),
            None => format!("?{id}"),
        }
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no labels have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as LabelId, n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_ids_in_first_seen_order() {
        let mut interner = Interner::new();
        assert_eq!(interner.intern("C"), 0);
        assert_eq!(interner.intern("O"), 1);
        assert_eq!(interner.intern("C"), 0);
        assert_eq!(interner.intern("N"), 2);
        assert_eq!(interner.len(), 3);
    }

    #[test]
    fn lookup_roundtrips() {
        let mut interner = Interner::new();
        let c = interner.intern("C");
        assert_eq!(interner.get("C"), Some(c));
        assert_eq!(interner.name(c), Some("C"));
        assert_eq!(interner.get("Xe"), None);
        assert_eq!(interner.name(42), None);
    }

    #[test]
    fn with_labels_collapses_duplicates() {
        let interner = Interner::with_labels(["C", "O", "C", "N"]);
        assert_eq!(interner.len(), 3);
        assert_eq!(interner.get("N"), Some(2));
    }

    #[test]
    fn placeholder_for_unknown_ids() {
        let interner = Interner::new();
        assert_eq!(interner.name_or_placeholder(7), "?7");
    }

    #[test]
    fn iter_yields_in_id_order() {
        let interner = Interner::with_labels(["C", "O", "N"]);
        let pairs: Vec<_> = interner.iter().collect();
        assert_eq!(pairs, vec![(0, "C"), (1, "O"), (2, "N")]);
    }
}
