//! Tenants and the shared maintenance worker pool.
//!
//! One [`Tenant`] = one embedded [`Midas`] instance serving one dataset.
//! The two sides of a tenant touch disjoint synchronization:
//!
//! * **Reads** (`GET /v1/{tenant}/patterns`) go through the tenant's
//!   [`Published<PatternSnapshot>`] handle — an `Arc` clone under a
//!   nanosecond-scale pointer lock, never the `Midas` mutex — so a
//!   tenant's (or any other tenant's) in-flight `apply_batch` cannot
//!   block them.
//! * **Maintenance** (`POST /v1/{tenant}/updates`) enqueues an
//!   [`Ingest`] job on the tenant's FIFO and wakes the shared
//!   [maintenance pool](crate::ServeDaemon); a worker claims the tenant
//!   (busy CAS), drains its queue in order under the `Midas` mutex, and
//!   publishes a fresh snapshot per batch. One worker per tenant at a
//!   time keeps batch application serial per tenant — the final pattern
//!   set is a pure function of the batch sequence, which is what the
//!   oracle's serve-vs-library parity check pins — while different
//!   tenants apply on different workers concurrently.

use midas_core::{Midas, MidasConfig, PatternSnapshot, Published};
use midas_datagen::{DatasetKind, MotifKind};
use midas_graph::{BatchUpdate, GraphDb, LabeledGraph};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Server-side batch generator spec: `POST /v1/{tenant}/updates` may ship
/// either an explicit insert/delete batch or one of these, in which case
/// the batch is synthesized against the tenant's *current* database at
/// apply time (so queued generator jobs compose deterministically).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenSpec {
    /// What to generate.
    pub op: GenOp,
    /// Percent of the current database size (growth / deletion ops).
    pub percent: f64,
    /// Number of novel-family graphs (novel op).
    pub count: usize,
    /// Motif for the novel op (defaults to [`MotifKind::BoronicEster`]).
    pub motif: Option<MotifKind>,
    /// Generator seed.
    pub seed: u64,
}

/// The operation a [`GenSpec`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenOp {
    /// Insert `percent`% new molecules drawn from the tenant's dataset
    /// parameters.
    Growth,
    /// Delete `percent`% of the current graphs.
    Deletion,
    /// Insert `count` graphs of a novel motif family.
    Novel,
}

/// One queued maintenance job.
#[derive(Debug, Clone)]
pub enum Ingest {
    /// An explicit insert/delete batch.
    Batch(BatchUpdate),
    /// A server-side generated batch.
    Generate(GenSpec),
}

/// A named serving tenant: one embedded `Midas`, its lock-free snapshot
/// handle, a frozen epoch-0 baseline pattern set (for SLI reduction
/// math), and a FIFO of pending maintenance jobs.
pub struct Tenant {
    /// The tenant name (validated by [`crate::api::valid_name`]).
    pub name: String,
    /// Dataset family — parameterizes server-side growth generation.
    pub kind: DatasetKind,
    midas: Mutex<Midas>,
    handle: Published<PatternSnapshot>,
    baseline: Vec<LabeledGraph>,
    pending: Mutex<VecDeque<Ingest>>,
    busy: AtomicBool,
    queued: AtomicU64,
    created_unix_ms: u64,
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("pending", &self.pending_len())
            .finish()
    }
}

impl Tenant {
    /// Bootstraps a tenant on `db`. Blocking (mining + clustering +
    /// selection happen here); runs on the HTTP worker that took the
    /// `POST /v1/tenants`.
    pub fn bootstrap(
        name: String,
        kind: DatasetKind,
        db: GraphDb,
        config: MidasConfig,
    ) -> Result<Tenant, String> {
        let midas = Midas::bootstrap_embedded(db, config)?;
        let handle = midas.snapshot_handle();
        let baseline = handle.read().patterns.clone();
        let tenant = Tenant {
            name,
            kind,
            midas: Mutex::new(midas),
            handle,
            baseline,
            pending: Mutex::new(VecDeque::new()),
            busy: AtomicBool::new(false),
            queued: AtomicU64::new(0),
            created_unix_ms: midas_obs::flight::unix_ms(),
        };
        tenant.export_gauges();
        Ok(tenant)
    }

    /// The latest published pattern snapshot — lock-free with respect to
    /// maintenance (only the `Published` pointer lock is touched).
    pub fn snapshot(&self) -> Arc<PatternSnapshot> {
        self.handle.read()
    }

    /// The frozen epoch-0 pattern set (the "no maintenance" baseline the
    /// querylog endpoint formulates against).
    pub fn baseline(&self) -> &[LabeledGraph] {
        &self.baseline
    }

    /// Tenant creation time, unix milliseconds.
    pub fn created_unix_ms(&self) -> u64 {
        self.created_unix_ms
    }

    /// Jobs enqueued but not yet applied.
    pub fn pending_len(&self) -> u64 {
        self.queued.load(Ordering::Acquire)
    }

    /// Enqueues one maintenance job; returns the new queue depth. The
    /// caller is responsible for waking the maintenance pool.
    pub fn enqueue(&self, job: Ingest) -> u64 {
        let mut q = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(job);
        self.queued.store(q.len() as u64, Ordering::Release);
        q.len() as u64
    }

    fn pop_job(&self) -> Option<Ingest> {
        let mut q = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        let job = q.pop_front();
        self.queued.store(q.len() as u64, Ordering::Release);
        job
    }

    /// Runs a read-only closure against the tenant's `Midas` under its
    /// maintenance mutex (query-workload generation needs the live db).
    pub fn with_midas<R>(&self, f: impl FnOnce(&Midas) -> R) -> R {
        let midas = self.midas.lock().unwrap_or_else(|e| e.into_inner());
        f(&midas)
    }

    /// Applies every pending job in FIFO order, publishing one snapshot
    /// per batch. At most one thread drains a tenant at a time (busy
    /// CAS); a loser returns immediately — the winner re-checks the
    /// queue after releasing the claim, so no enqueued job is stranded.
    pub fn drain(&self) {
        loop {
            if self.busy.swap(true, Ordering::AcqRel) {
                return; // someone else is draining and will re-check
            }
            while let Some(job) = self.pop_job() {
                let mut midas = self.midas.lock().unwrap_or_else(|e| e.into_inner());
                let batch = match job {
                    Ingest::Batch(b) => b,
                    Ingest::Generate(spec) => spec.build(&midas, self.kind),
                };
                if !batch.is_empty() {
                    let _report = midas.apply_batch(batch);
                    if midas_obs::enabled() {
                        midas_obs::registry::registry()
                            .counter(&crate::metric(&self.name, "serve.batches"))
                            .add(1);
                    }
                }
                self.export_gauges_from(&midas);
            }
            self.busy.store(false, Ordering::Release);
            if self
                .pending
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
            {
                return;
            }
            // A job raced in between the last pop and the release: loop
            // and try to claim the tenant again.
        }
    }

    /// True while a worker is applying this tenant's batches.
    pub fn busy(&self) -> bool {
        self.busy.load(Ordering::Acquire)
    }

    fn export_gauges(&self) {
        let midas = self.midas.lock().unwrap_or_else(|e| e.into_inner());
        self.export_gauges_from(&midas);
    }

    fn export_gauges_from(&self, _midas: &Midas) {
        if !midas_obs::enabled() {
            return;
        }
        let snap = self.handle.read();
        let reg = midas_obs::registry::registry();
        reg.gauge(&crate::metric(&self.name, "serve.epoch"))
            .set(snap.epoch as f64);
        reg.gauge(&crate::metric(&self.name, "serve.db_len"))
            .set(snap.db_len as f64);
    }
}

impl GenSpec {
    /// Synthesizes the batch against the tenant's current database.
    pub fn build(&self, midas: &Midas, kind: DatasetKind) -> BatchUpdate {
        match self.op {
            GenOp::Growth => midas_datagen::updates::growth_percent(
                &kind.params(),
                midas.db(),
                self.percent,
                self.seed,
            ),
            GenOp::Deletion => {
                midas_datagen::updates::deletion_percent(midas.db(), self.percent, self.seed)
            }
            GenOp::Novel => midas_datagen::novel_family_batch(
                self.motif.unwrap_or(MotifKind::BoronicEster),
                self.count,
                self.seed,
            ),
        }
    }
}
