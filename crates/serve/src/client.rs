//! A minimal blocking HTTP client for the serving API.
//!
//! Built on `std::net::TcpStream` only (the build is offline — no HTTP
//! crates), speaking `Connection: close` HTTP/1.1: one TCP connection
//! per request, status line + headers + `Content-Length`-delimited body.
//! The typed helpers cover every `/v1` endpoint; the oracle's parity
//! check and the HTTP load harness are both built on this.

use crate::json::{self, Value};
use crate::tenant::{GenOp, GenSpec};
use midas_datagen::MotifKind;
use midas_graph::{io, BatchUpdate, LabeledGraph};
use midas_obs::json as js;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed HTTP reply.
#[derive(Debug, Clone)]
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
}

impl Reply {
    /// Parses the body as JSON, failing on non-2xx statuses.
    pub fn json(&self) -> Result<Value, String> {
        if !(200..300).contains(&self.status) {
            return Err(format!("HTTP {}: {}", self.status, self.body.trim()));
        }
        Value::parse(&self.body)
    }
}

/// A pattern snapshot as observed over HTTP.
#[derive(Debug, Clone)]
pub struct PatternsPayload {
    /// Publication epoch (0 = bootstrap).
    pub epoch: u64,
    /// Database size at publish time.
    pub db_len: u64,
    /// Publish wall-clock time, unix milliseconds.
    pub published_unix_ms: u64,
    /// Maintenance jobs queued behind this snapshot.
    pub pending_batches: u64,
    /// Graphlet frequency vector at publish time (drift math client-side
    /// via [`midas_graph::graphlets::GraphletDistribution::from_freqs`]).
    pub graphlets: [f64; 8],
    /// The canned pattern set.
    pub patterns: Vec<LabeledGraph>,
}

/// An epoch probe (no pattern payload).
#[derive(Debug, Clone, Copy)]
pub struct EpochPayload {
    /// Publication epoch.
    pub epoch: u64,
    /// Database size at publish time.
    pub db_len: u64,
    /// Maintenance jobs queued behind this snapshot.
    pub pending_batches: u64,
    /// Graphlet frequency vector at publish time.
    pub graphlets: [f64; 8],
}

/// A blocking client bound to one daemon address.
#[derive(Debug, Clone)]
pub struct ServeClient {
    addr: String,
    timeout: Duration,
}

impl ServeClient {
    /// A client for `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> ServeClient {
        ServeClient {
            addr: addr.into(),
            timeout: Duration::from_secs(300),
        }
    }

    /// Sends one request; `body` implies a JSON `Content-Type`.
    pub fn request(&self, method: &str, path: &str, body: Option<&str>) -> Result<Reply, String> {
        let mut stream =
            TcpStream::connect(&self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| e.to_string())?;
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n{}Content-Length: {}\r\n\r\n",
            self.addr,
            if body.is_empty() { "" } else { "Content-Type: application/json\r\n" },
            body.len()
        );
        stream
            .write_all(head.as_bytes())
            .map_err(|e| e.to_string())?;
        stream
            .write_all(body.as_bytes())
            .map_err(|e| e.to_string())?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).map_err(|e| e.to_string())?;
        parse_reply(&raw)
    }

    /// `POST /v1/tenants` with a generated dataset.
    pub fn create_tenant(
        &self,
        name: &str,
        kind: &str,
        size: usize,
        seed: u64,
        config: &str,
    ) -> Result<Reply, String> {
        let body = format!(
            "{{\"name\": {}, \"dataset\": {{\"kind\": {}, \"size\": {size}, \"seed\": {seed}}}, \"config\": {}}}",
            js::quote(name),
            js::quote(kind),
            js::quote(config)
        );
        self.request("POST", "/v1/tenants", Some(&body))
    }

    /// `POST /v1/tenants` with explicit data graphs.
    pub fn create_tenant_with_graphs(
        &self,
        name: &str,
        graphs: &[LabeledGraph],
        config: &str,
    ) -> Result<Reply, String> {
        let body = format!(
            "{{\"name\": {}, \"graphs\": {}, \"config\": {}}}",
            js::quote(name),
            io::patterns_to_json(graphs).map_err(|e| e.to_string())?,
            js::quote(config)
        );
        self.request("POST", "/v1/tenants", Some(&body))
    }

    /// `GET /v1/{tenant}/patterns`, parsed.
    pub fn patterns(&self, tenant: &str) -> Result<PatternsPayload, String> {
        let doc = self
            .request("GET", &format!("/v1/{tenant}/patterns"), None)?
            .json()?;
        Ok(PatternsPayload {
            epoch: field_u64(&doc, "epoch")?,
            db_len: field_u64(&doc, "db_len")?,
            published_unix_ms: field_u64(&doc, "published_unix_ms")?,
            pending_batches: field_u64(&doc, "pending_batches")?,
            graphlets: graphlets_of(&doc)?,
            patterns: doc
                .get("patterns")
                .map(json::graphs_from_value)
                .ok_or("missing \"patterns\"")??,
        })
    }

    /// `GET /v1/{tenant}/epoch`, parsed.
    pub fn epoch(&self, tenant: &str) -> Result<EpochPayload, String> {
        let doc = self
            .request("GET", &format!("/v1/{tenant}/epoch"), None)?
            .json()?;
        Ok(EpochPayload {
            epoch: field_u64(&doc, "epoch")?,
            db_len: field_u64(&doc, "db_len")?,
            pending_batches: field_u64(&doc, "pending_batches")?,
            graphlets: graphlets_of(&doc)?,
        })
    }

    /// `POST /v1/{tenant}/updates` with an explicit batch.
    pub fn post_batch(
        &self,
        tenant: &str,
        batch: &BatchUpdate,
        sync: bool,
    ) -> Result<Reply, String> {
        let body = io::batch_to_json(batch).map_err(|e| e.to_string())?;
        self.request("POST", &updates_path(tenant, sync), Some(&body))
    }

    /// `POST /v1/{tenant}/updates` with a server-side generator spec.
    pub fn post_generate(&self, tenant: &str, spec: &GenSpec, sync: bool) -> Result<Reply, String> {
        let op = match spec.op {
            GenOp::Growth => "growth",
            GenOp::Deletion => "deletion",
            GenOp::Novel => "novel",
        };
        let motif = match spec.motif {
            Some(m) => format!(", \"motif\": {}", js::quote(motif_name(m))),
            None => String::new(),
        };
        let body = format!(
            "{{\"generate\": {{\"op\": {}, \"percent\": {}, \"count\": {}, \"seed\": {}{motif}}}}}",
            js::quote(op),
            js::number(spec.percent),
            spec.count,
            spec.seed
        );
        self.request("POST", &updates_path(tenant, sync), Some(&body))
    }

    /// `POST /v1/{tenant}/querylog`; returns `(steps_live, steps_baseline)`.
    pub fn querylog(&self, tenant: &str, queries: &[LabeledGraph]) -> Result<(u64, u64), String> {
        let body = format!(
            "{{\"queries\": {}}}",
            io::patterns_to_json(queries).map_err(|e| e.to_string())?
        );
        let doc = self
            .request("POST", &format!("/v1/{tenant}/querylog"), Some(&body))?
            .json()?;
        Ok((
            field_u64(&doc, "steps_live")?,
            field_u64(&doc, "steps_baseline")?,
        ))
    }

    /// `GET /v1/{tenant}/queries` — sample a query workload.
    pub fn queries(
        &self,
        tenant: &str,
        n: usize,
        size_range: (usize, usize),
        seed: u64,
    ) -> Result<Vec<LabeledGraph>, String> {
        let path = format!(
            "/v1/{tenant}/queries?n={n}&min={}&max={}&seed={seed}",
            size_range.0, size_range.1
        );
        let doc = self.request("GET", &path, None)?.json()?;
        doc.get("queries")
            .map(json::graphs_from_value)
            .ok_or("missing \"queries\"")?
    }

    /// `GET /v1/tenants` — names of every ready tenant.
    pub fn list_tenants(&self) -> Result<Vec<String>, String> {
        let doc = self.request("GET", "/v1/tenants", None)?.json()?;
        doc.get("tenants")
            .and_then(Value::as_arr)
            .ok_or("missing \"tenants\"")?
            .iter()
            .map(|t| {
                t.get("tenant")
                    .and_then(Value::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| "tenant entry missing name".to_owned())
            })
            .collect()
    }

    /// `DELETE /v1/{tenant}`.
    pub fn delete_tenant(&self, tenant: &str) -> Result<Reply, String> {
        self.request("DELETE", &format!("/v1/{tenant}"), None)
    }
}

fn updates_path(tenant: &str, sync: bool) -> String {
    if sync {
        format!("/v1/{tenant}/updates?mode=sync")
    } else {
        format!("/v1/{tenant}/updates")
    }
}

fn field_u64(doc: &Value, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn graphlets_of(doc: &Value) -> Result<[f64; 8], String> {
    let arr = doc
        .get("graphlets")
        .and_then(Value::as_arr)
        .ok_or("missing \"graphlets\"")?;
    if arr.len() != 8 {
        return Err(format!("graphlets has {} entries, want 8", arr.len()));
    }
    let mut out = [0.0; 8];
    for (slot, v) in out.iter_mut().zip(arr) {
        *slot = v.as_f64().ok_or("non-numeric graphlet frequency")?;
    }
    Ok(out)
}

/// The wire name of a motif (inverse of the updates endpoint's parser).
pub fn motif_name(kind: MotifKind) -> &'static str {
    match kind {
        MotifKind::BenzeneRing => "benzene_ring",
        MotifKind::FiveRing => "five_ring",
        MotifKind::PyridineRing => "pyridine_ring",
        MotifKind::ThiopheneRing => "thiophene_ring",
        MotifKind::Carboxyl => "carboxyl",
        MotifKind::Amine => "amine",
        MotifKind::Amide => "amide",
        MotifKind::Hydroxyl => "hydroxyl",
        MotifKind::Thiol => "thiol",
        MotifKind::Phosphate => "phosphate",
        MotifKind::Chloride => "chloride",
        MotifKind::Fluoride => "fluoride",
        MotifKind::BoronicAcid => "boronic_acid",
        MotifKind::BoronicEster => "boronic_ester",
        MotifKind::Chain => "chain",
        MotifKind::Cyclopropane => "cyclopropane",
        MotifKind::FusedBicycle => "fused_bicycle",
    }
}

fn parse_reply(raw: &[u8]) -> Result<Reply, String> {
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or("no header/body separator in reply")?;
    let mut lines = head.lines();
    let status_line = lines.next().ok_or("empty reply")?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    // Connection: close — the body is everything after the separator, but
    // honor Content-Length if present (trailing bytes would be a bug).
    let body = match head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
                .map(str::to_owned)
        })
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(len) if len <= body.len() => body[..len].to_owned(),
        _ => body.to_owned(),
    };
    Ok(Reply { status, body })
}
