//! A minimal JSON document parser for the serving API.
//!
//! The wire format of `midas-serve` mixes free-shape envelopes (tenant
//! creation options, generator specs) with the fixed graph shapes of
//! [`midas_graph::io`]; the envelope needs a real document model rather
//! than another single-shape recursive-descent pass. [`Value`] is that
//! model: the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null) into an owned tree, plus the typed accessors
//! the API handlers and the HTTP client both use. No serde — the build
//! environment is offline, and the payloads here are small.

use midas_graph::LabeledGraph;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers included), as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses a complete JSON document (trailing input is an error).
    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = P {
            b: input.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing input at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object member lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (must be whole).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct P<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn ws(&mut self) {
        while self.b.get(self.i).is_some_and(u8::is_ascii_whitespace) {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        if !self.eat(b'}') {
            loop {
                self.ws();
                let key = self.string()?;
                self.expect(b':')?;
                members.push((key, self.value()?));
                if !self.eat(b',') {
                    break;
                }
            }
            self.expect(b'}')?;
        }
        Ok(Value::Obj(members))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if !self.eat(b']') {
            loop {
                items.push(self.value()?);
                if !self.eat(b',') {
                    break;
                }
            }
            self.expect(b']')?;
        }
        Ok(Value::Arr(items))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.b.get(self.i).copied().ok_or("dangling escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            self.i += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (may be multi-byte).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid utf-8".to_owned())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .expect("ascii")
            .parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

/// Converts a `{"labels": [...], "edges": [[u, v], ...]}` object into a
/// validated [`LabeledGraph`] (same rules as [`midas_graph::io`]: edge
/// endpoints in range, no self-loops, no duplicates).
pub fn graph_from_value(v: &Value) -> Result<LabeledGraph, String> {
    let labels: Vec<u32> = v
        .get("labels")
        .and_then(Value::as_arr)
        .ok_or("graph missing \"labels\" array")?
        .iter()
        .map(|l| {
            l.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| "label out of u32 range".to_owned())
        })
        .collect::<Result<_, _>>()?;
    let n = labels.len() as u32;
    let mut g = LabeledGraph::from_parts(labels, &[]);
    for pair in v
        .get("edges")
        .and_then(Value::as_arr)
        .ok_or("graph missing \"edges\" array")?
    {
        let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or("bad edge")?;
        let (u, w) = match (pair[0].as_u64(), pair[1].as_u64()) {
            (Some(u), Some(w)) => (u as u32, w as u32),
            _ => return Err("bad edge endpoint".into()),
        };
        if u >= n || w >= n || u == w {
            return Err(format!("invalid edge ({u}, {w}) for {n} vertices"));
        }
        if g.has_edge(u, w) {
            return Err(format!("duplicate edge ({u}, {w})"));
        }
        g.add_edge(u, w);
    }
    Ok(g)
}

/// Converts an array of graph objects.
pub fn graphs_from_value(v: &Value) -> Result<Vec<LabeledGraph>, String> {
    v.as_arr()
        .ok_or("expected an array of graphs")?
        .iter()
        .map(graph_from_value)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_grammar() {
        let v = Value::parse(
            "{\"a\": [1, 2.5, -3], \"b\": \"x\\ny\", \"c\": true, \"d\": null, \"e\": {}}",
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Obj(vec![])));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "\"unterminated", "1 2", ""] {
            assert!(Value::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_and_utf8_pass_through() {
        let v = Value::parse("\"caf\\u00e9 ☕\"").unwrap();
        assert_eq!(v.as_str(), Some("café ☕"));
    }

    #[test]
    fn graph_conversion_validates() {
        let ok = Value::parse("{\"labels\": [0, 1], \"edges\": [[0, 1]]}").unwrap();
        let g = graph_from_value(&ok).unwrap();
        assert_eq!(g.vertex_count(), 2);
        for bad in [
            "{\"labels\": [0], \"edges\": [[0, 1]]}",
            "{\"labels\": [0, 0], \"edges\": [[1, 1]]}",
            "{\"labels\": [0, 0], \"edges\": [[0, 1], [1, 0]]}",
            "{\"edges\": []}",
        ] {
            let v = Value::parse(bad).unwrap();
            assert!(graph_from_value(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn graph_roundtrips_through_io_format() {
        use midas_graph::GraphBuilder;
        let g = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .path(&[0, 1, 2])
            .build();
        let json = midas_graph::io::patterns_to_json(std::slice::from_ref(&g)).unwrap();
        let v = Value::parse(&json).unwrap();
        let back = graphs_from_value(&v).unwrap();
        assert_eq!(back, vec![g]);
    }
}
