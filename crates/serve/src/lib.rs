//! Multi-tenant pattern-serving daemon.
//!
//! `midas-serve` turns the in-process MIDAS maintenance framework into a
//! long-running network service: one daemon hosts many named tenants,
//! each an embedded [`midas_core::Midas`] instance over its own graph
//! database, behind the zero-dependency HTTP core of
//! [`midas_obs::httpd`].
//!
//! The whole design rides on the paper's read/maintain split:
//!
//! * **Reads are lock-free.** `GET /v1/{tenant}/patterns` clones an
//!   `Arc` off the tenant's [`midas_core::Published`] snapshot cell —
//!   it never touches the tenant's `Midas` mutex, so one tenant's
//!   multi-second `apply_batch` cannot delay another tenant's (or its
//!   own) pattern reads.
//! * **Maintenance is pooled.** `POST /v1/{tenant}/updates` enqueues on
//!   the tenant's FIFO and wakes a shared pool of maintenance workers.
//!   A busy-CAS in [`tenant::Tenant::drain`] guarantees at most one
//!   worker applies a given tenant's batches at a time (keeping the
//!   batch order — and therefore the resulting pattern set — a pure
//!   function of the request sequence), while distinct tenants apply
//!   concurrently on distinct workers.
//!
//! See `DESIGN.md` §14 for the architecture and the API table in
//! [`api`].

#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod json;
pub mod tenant;

pub use api::{config_preset, valid_name};
pub use client::ServeClient;
pub use tenant::{GenOp, GenSpec, Ingest, Tenant};

use midas_obs::httpd::HttpServer;
use std::collections::BTreeMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The per-tenant registry name for a serve metric: dotted base plus a
/// `tenant` label block, e.g. `serve.reads{tenant="acme"}`. The prom
/// exposition splits the block back out so every tenant shares one
/// `midas_serve_reads` family.
pub fn metric(tenant: &str, base: &str) -> String {
    midas_obs::prom::labeled(base, &[("tenant", tenant)])
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// HTTP worker threads (concurrent in-flight requests).
    pub http_workers: usize,
    /// Maintenance worker threads (concurrent tenant batch applies).
    pub maintenance_workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            http_workers: 8,
            maintenance_workers: 2,
        }
    }
}

impl ServeConfig {
    /// Applies `MIDAS_SERVE_ADDR`, `MIDAS_SERVE_HTTP_WORKERS` and
    /// `MIDAS_SERVE_MAINT_WORKERS` on top of the current values.
    pub fn from_env(mut self) -> Self {
        if let Ok(addr) = std::env::var("MIDAS_SERVE_ADDR") {
            if !addr.is_empty() {
                self.addr = addr;
            }
        }
        if let Some(n) = env_usize("MIDAS_SERVE_HTTP_WORKERS") {
            self.http_workers = n.max(1);
        }
        if let Some(n) = env_usize("MIDAS_SERVE_MAINT_WORKERS") {
            self.maintenance_workers = n.max(1);
        }
        self
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// A tenant-table slot. `Reserved` exists so concurrent creates of the
/// same name collide on the cheap table insert, not after both have run
/// a multi-second bootstrap.
enum Slot {
    Reserved,
    Ready(Arc<Tenant>),
}

/// Shared daemon state: the tenant table and the maintenance work
/// channel. Handlers receive `&ServeState`; the daemon owns the worker
/// threads.
pub struct ServeState {
    tenants: RwLock<BTreeMap<String, Slot>>,
    work: Mutex<Option<Sender<Arc<Tenant>>>>,
    started: Instant,
    maintenance_workers: usize,
}

impl std::fmt::Debug for ServeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeState")
            .field("tenants", &self.tenant_count())
            .field("maintenance_workers", &self.maintenance_workers)
            .finish()
    }
}

impl ServeState {
    fn new(maintenance_workers: usize, work: Sender<Arc<Tenant>>) -> ServeState {
        ServeState {
            tenants: RwLock::new(BTreeMap::new()),
            work: Mutex::new(Some(work)),
            started: Instant::now(),
            maintenance_workers,
        }
    }

    /// Looks up a ready tenant by name.
    pub fn tenant(&self, name: &str) -> Option<Arc<Tenant>> {
        match self
            .tenants
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            Some(Slot::Ready(t)) => Some(Arc::clone(t)),
            _ => None,
        }
    }

    /// Every ready tenant, in name order.
    pub fn tenants(&self) -> Vec<Arc<Tenant>> {
        self.tenants
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .filter_map(|s| match s {
                Slot::Ready(t) => Some(Arc::clone(t)),
                Slot::Reserved => None,
            })
            .collect()
    }

    /// Number of table entries (ready + mid-bootstrap reservations).
    pub fn tenant_count(&self) -> usize {
        self.tenants.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Time since the daemon started.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Size of the maintenance pool.
    pub fn maintenance_workers(&self) -> usize {
        self.maintenance_workers
    }

    /// Claims `name` for an in-flight bootstrap. Returns false if the
    /// name is already taken (reserved or ready).
    pub fn reserve(&self, name: &str) -> bool {
        let mut map = self.tenants.write().unwrap_or_else(|e| e.into_inner());
        if map.contains_key(name) {
            return false;
        }
        map.insert(name.to_owned(), Slot::Reserved);
        true
    }

    /// Replaces a reservation with the bootstrapped tenant.
    pub fn install(&self, tenant: Arc<Tenant>) {
        let mut map = self.tenants.write().unwrap_or_else(|e| e.into_inner());
        map.insert(tenant.name.clone(), Slot::Ready(tenant));
    }

    /// Releases a reservation after a failed bootstrap.
    pub fn unreserve(&self, name: &str) {
        let mut map = self.tenants.write().unwrap_or_else(|e| e.into_inner());
        if let Some(Slot::Reserved) = map.get(name) {
            map.remove(name);
        }
    }

    /// Removes a ready tenant. Queued jobs for it are dropped once the
    /// pool's in-flight `Arc`s resolve; held snapshots stay valid.
    pub fn remove(&self, name: &str) -> bool {
        let mut map = self.tenants.write().unwrap_or_else(|e| e.into_inner());
        matches!(map.remove(name), Some(Slot::Ready(_)))
    }

    /// Hands a tenant with pending work to the maintenance pool. If the
    /// pool is already gone (shutdown race), drains on the calling
    /// thread so no accepted job is silently dropped.
    pub fn wake(&self, tenant: &Arc<Tenant>) {
        let sent = {
            let guard = self.work.lock().unwrap_or_else(|e| e.into_inner());
            match guard.as_ref() {
                Some(tx) => tx.send(Arc::clone(tenant)).is_ok(),
                None => false,
            }
        };
        if !sent {
            tenant.drain();
        }
    }

    fn close_work_channel(&self) {
        self.work.lock().unwrap_or_else(|e| e.into_inner()).take();
    }
}

/// The running daemon: an HTTP front end over a [`ServeState`] plus the
/// maintenance worker pool. Shuts down (and joins every thread) on drop.
pub struct ServeDaemon {
    http: Option<HttpServer>,
    state: Arc<ServeState>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServeDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeDaemon")
            .field("addr", &self.addr())
            .field("state", &self.state)
            .finish()
    }
}

impl ServeDaemon {
    /// Binds the listener, spawns the HTTP and maintenance pools, and
    /// returns the running daemon.
    pub fn start(config: ServeConfig) -> std::io::Result<ServeDaemon> {
        let (tx, rx) = mpsc::channel::<Arc<Tenant>>();
        let state = Arc::new(ServeState::new(config.maintenance_workers.max(1), tx));

        // Maintenance pool: same shared-receiver discipline as the HTTP
        // pool in `midas_obs::httpd` — take the guard, take one token,
        // drop the guard *before* the (long) drain.
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<JoinHandle<()>> = (0..config.maintenance_workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("serve-maint-{i}"))
                    .spawn(move || maintenance_worker(&rx))
                    .expect("spawn maintenance worker")
            })
            .collect();

        let handler_state = Arc::clone(&state);
        let http = HttpServer::start(
            &config.addr,
            "serve",
            config.http_workers.max(1),
            Arc::new(move |req| api::route(&handler_state, req)),
        )?;
        Ok(ServeDaemon {
            http: Some(http),
            state,
            workers,
        })
    }

    /// The bound listen address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.http.as_ref().expect("daemon running").addr()
    }

    /// The shared state (tests reach tenants directly through this).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Stops the HTTP listener, closes the work channel, and joins every
    /// worker. Idempotent via drop.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(http) = self.http.take() {
            http.shutdown();
        }
        self.state.close_work_channel();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServeDaemon {
    fn drop(&mut self) {
        self.stop();
    }
}

fn maintenance_worker(rx: &Mutex<Receiver<Arc<Tenant>>>) {
    loop {
        let tenant = {
            let guard = match rx.lock() {
                Ok(guard) => guard,
                Err(_) => return,
            };
            let tenant = guard.recv();
            drop(guard);
            tenant
        };
        match tenant {
            Ok(tenant) => tenant.drain(),
            Err(_) => return, // channel closed: shutdown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ServeClient;
    use midas_graph::BatchUpdate;
    use midas_graph::GraphBuilder;

    fn daemon() -> (ServeDaemon, ServeClient) {
        let daemon = ServeDaemon::start(ServeConfig::default()).expect("start daemon");
        let client = ServeClient::new(daemon.addr().to_string());
        (daemon, client)
    }

    #[test]
    fn two_tenants_serve_independently_end_to_end() {
        let (daemon, client) = daemon();
        let a = client
            .create_tenant("acme", "pubchem_like", 32, 41, "small")
            .unwrap();
        assert_eq!(a.status, 201, "{}", a.body);
        let b = client
            .create_tenant("bmol", "emol_like", 24, 43, "small")
            .unwrap();
        assert_eq!(b.status, 201, "{}", b.body);
        assert_eq!(client.list_tenants().unwrap(), vec!["acme", "bmol"]);

        let pa = client.patterns("acme").unwrap();
        let pb = client.patterns("bmol").unwrap();
        assert_eq!((pa.epoch, pb.epoch), (0, 0));
        assert!(!pa.patterns.is_empty() && !pb.patterns.is_empty());
        assert_eq!(pa.db_len, 32);
        assert_eq!(pb.db_len, 24);

        // Synchronous growth on one tenant bumps only that tenant.
        let spec = GenSpec {
            op: GenOp::Growth,
            percent: 10.0,
            count: 0,
            motif: None,
            seed: 7,
        };
        let reply = client.post_generate("acme", &spec, true).unwrap();
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert_eq!(client.epoch("acme").unwrap().epoch, 1);
        assert_eq!(client.epoch("bmol").unwrap().epoch, 0);
        assert!(client.epoch("acme").unwrap().db_len > 32);

        // Queries sampled over HTTP formulate against the live snapshot.
        let queries = client.queries("bmol", 4, (3, 6), 9).unwrap();
        assert_eq!(queries.len(), 4);
        let (live, baseline) = client.querylog("bmol", &queries).unwrap();
        assert!(live > 0 && baseline > 0);

        let del = client.delete_tenant("bmol").unwrap();
        assert_eq!(del.status, 200);
        assert!(client.patterns("bmol").unwrap_err().contains("404"));
        daemon.shutdown();
    }

    #[test]
    fn async_updates_apply_in_the_background() {
        let (daemon, client) = daemon();
        client
            .create_tenant("t", "emol_like", 20, 5, "small")
            .unwrap();
        let g = GraphBuilder::new().vertices(&[0, 1]).edge(0, 1).build();
        let reply = client
            .post_batch("t", &BatchUpdate::insert_only(vec![g]), false)
            .unwrap();
        assert_eq!(reply.status, 202, "{}", reply.body);
        let begin = std::time::Instant::now();
        loop {
            let e = client.epoch("t").unwrap();
            if e.epoch == 1 {
                assert_eq!(e.db_len, 21);
                break;
            }
            assert!(
                begin.elapsed() < Duration::from_secs(30),
                "batch never applied"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        daemon.shutdown();
    }

    #[test]
    fn protocol_errors_are_typed() {
        let (daemon, client) = daemon();
        // Unknown tenant.
        assert_eq!(
            client
                .request("GET", "/v1/nope/patterns", None)
                .unwrap()
                .status,
            404
        );
        // Invalid name.
        let bad = client
            .create_tenant("Bad Name!", "emol_like", 10, 1, "small")
            .unwrap();
        assert_eq!(bad.status, 400);
        // Unknown preset / kind.
        assert_eq!(
            client
                .create_tenant("x", "emol_like", 10, 1, "huge")
                .unwrap()
                .status,
            400
        );
        assert_eq!(
            client
                .create_tenant("x", "oracle9i", 10, 1, "small")
                .unwrap()
                .status,
            400
        );
        // Duplicate.
        assert_eq!(
            client
                .create_tenant("dup", "emol_like", 12, 1, "small")
                .unwrap()
                .status,
            201
        );
        assert_eq!(
            client
                .create_tenant("dup", "emol_like", 12, 1, "small")
                .unwrap()
                .status,
            409
        );
        // Malformed bodies.
        assert_eq!(
            client
                .request("POST", "/v1/tenants", Some("{oops"))
                .unwrap()
                .status,
            400
        );
        assert_eq!(
            client
                .request("POST", "/v1/dup/updates", Some("{}"))
                .unwrap()
                .status,
            400
        );
        assert_eq!(
            client
                .request("POST", "/v1/dup/querylog", None)
                .unwrap()
                .status,
            400
        );
        // Unknown route / method.
        assert_eq!(
            client
                .request("GET", "/v2/dup/patterns", None)
                .unwrap()
                .status,
            404
        );
        assert_eq!(
            client
                .request("PUT", "/v1/dup/patterns", None)
                .unwrap()
                .status,
            405
        );
        daemon.shutdown();
    }

    #[test]
    fn env_overrides_apply() {
        let config = ServeConfig {
            addr: "127.0.0.1:0".into(),
            http_workers: 3,
            maintenance_workers: 5,
        };
        // No env set: values pass through.
        let same = config.clone().from_env();
        assert_eq!(same.http_workers, 3);
        assert_eq!(same.maintenance_workers, 5);
    }

    #[test]
    fn metric_names_carry_the_tenant_label() {
        assert_eq!(
            metric("acme", "serve.reads"),
            "serve.reads{tenant=\"acme\"}"
        );
    }
}
