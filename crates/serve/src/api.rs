//! The `/v1` HTTP API: routing and handlers.
//!
//! | Method | Path                      | Effect                                              |
//! |--------|---------------------------|-----------------------------------------------------|
//! | GET    | `/healthz`                | Daemon liveness + tenant count                      |
//! | GET    | `/v1/tenants`             | List tenants with epochs and sizes                  |
//! | POST   | `/v1/tenants`             | Create a tenant (dataset spec or explicit graphs)   |
//! | GET    | `/v1/{t}/patterns`        | Current pattern snapshot (lock-free read)           |
//! | GET    | `/v1/{t}/epoch`           | Epoch/staleness probe (no pattern payload)          |
//! | GET    | `/v1/{t}/queries`         | Sample a query workload from the tenant's database  |
//! | POST   | `/v1/{t}/updates`         | Enqueue (or `?mode=sync` apply) an update batch     |
//! | POST   | `/v1/{t}/querylog`        | Log formulated queries, feeding the `/sli` metrics  |
//! | DELETE | `/v1/{t}`                 | Remove a tenant                                     |
//!
//! Handlers run on the HTTP worker pool; everything that can block on
//! maintenance is explicit: `GET` pattern reads never take the tenant's
//! `Midas` mutex, `POST /updates` without `mode=sync` only enqueues.

use crate::json::{self, Value};
use crate::tenant::{GenOp, GenSpec, Ingest, Tenant};
use crate::ServeState;
use midas_core::MidasConfig;
use midas_datagen::{DatasetKind, DatasetSpec, MotifKind};
use midas_graph::{io, BatchUpdate, GraphId};
use midas_obs::httpd::{Request, Response};
use midas_obs::json as js;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a `?mode=sync` update waits for the queue to drain before
/// answering 503 (the batch stays queued and will still apply).
const SYNC_TIMEOUT: Duration = Duration::from_secs(120);

/// Tenant names: 1–64 chars of `[a-z0-9_-]` — safe in paths, label
/// values, and log lines without any escaping.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
}

/// Maps a config preset name to a [`MidasConfig`]. The oracle's parity
/// check uses the same mapping on the library side, so a preset means
/// the *same* configuration through both paths.
pub fn config_preset(name: &str) -> Option<MidasConfig> {
    match name {
        "small" => Some(MidasConfig::small_defaults()),
        "default" => Some(MidasConfig::default()),
        _ => None,
    }
}

fn dataset_kind(name: &str) -> Option<DatasetKind> {
    match name {
        "aids_like" => Some(DatasetKind::AidsLike),
        "pubchem_like" => Some(DatasetKind::PubchemLike),
        "emol_like" => Some(DatasetKind::EmolLike),
        _ => None,
    }
}

fn kind_name(kind: DatasetKind) -> &'static str {
    match kind {
        DatasetKind::AidsLike => "aids_like",
        DatasetKind::PubchemLike => "pubchem_like",
        DatasetKind::EmolLike => "emol_like",
    }
}

fn motif_kind(name: &str) -> Option<MotifKind> {
    Some(match name {
        "benzene_ring" => MotifKind::BenzeneRing,
        "five_ring" => MotifKind::FiveRing,
        "pyridine_ring" => MotifKind::PyridineRing,
        "thiophene_ring" => MotifKind::ThiopheneRing,
        "carboxyl" => MotifKind::Carboxyl,
        "amine" => MotifKind::Amine,
        "amide" => MotifKind::Amide,
        "hydroxyl" => MotifKind::Hydroxyl,
        "thiol" => MotifKind::Thiol,
        "phosphate" => MotifKind::Phosphate,
        "chloride" => MotifKind::Chloride,
        "fluoride" => MotifKind::Fluoride,
        "boronic_acid" => MotifKind::BoronicAcid,
        "boronic_ester" => MotifKind::BoronicEster,
        "chain" => MotifKind::Chain,
        "cyclopropane" => MotifKind::Cyclopropane,
        "fused_bicycle" => MotifKind::FusedBicycle,
        _ => return None,
    })
}

/// Routes one request against the daemon state.
pub fn route(state: &ServeState, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => healthz(state),
        ("GET", ["v1", "tenants"]) => list_tenants(state),
        ("POST", ["v1", "tenants"]) => create_tenant(state, req),
        ("GET", ["v1", tenant, "patterns"]) => with_tenant(state, tenant, patterns),
        ("GET", ["v1", tenant, "epoch"]) => with_tenant(state, tenant, epoch),
        ("GET", ["v1", tenant, "queries"]) => with_tenant(state, tenant, |t| queries(t, req)),
        ("POST", ["v1", tenant, "updates"]) => {
            with_tenant(state, tenant, |t| updates(state, t, req))
        }
        ("POST", ["v1", tenant, "querylog"]) => with_tenant(state, tenant, |t| querylog(t, req)),
        ("DELETE", ["v1", tenant]) => delete_tenant(state, tenant),
        ("GET" | "POST" | "DELETE", _) => Response::not_found(),
        _ => Response::text(405, "method not allowed\n").with_header("Allow: GET, POST, DELETE"),
    }
}

fn with_tenant(
    state: &ServeState,
    name: &str,
    f: impl FnOnce(&Arc<Tenant>) -> Response,
) -> Response {
    match state.tenant(name) {
        Some(tenant) => f(&tenant),
        None => Response::json(
            404,
            format!(
                "{{\"error\": \"unknown tenant\", \"tenant\": {}}}\n",
                js::quote(name)
            ),
        ),
    }
}

fn healthz(state: &ServeState) -> Response {
    Response::json(
        200,
        format!(
            "{{\"status\": \"ok\", \"tenants\": {}, \"uptime_s\": {}, \"maintenance_workers\": {}}}\n",
            state.tenant_count(),
            state.uptime().as_secs(),
            state.maintenance_workers()
        ),
    )
}

fn tenant_summary(t: &Tenant) -> String {
    let snap = t.snapshot();
    format!(
        "{{\"tenant\": {}, \"kind\": {}, \"epoch\": {}, \"db_len\": {}, \"patterns\": {}, \"pending_batches\": {}, \"busy\": {}, \"created_unix_ms\": {}}}",
        js::quote(&t.name),
        js::quote(kind_name(t.kind)),
        snap.epoch,
        snap.db_len,
        snap.patterns.len(),
        t.pending_len(),
        t.busy(),
        t.created_unix_ms()
    )
}

fn list_tenants(state: &ServeState) -> Response {
    let summaries: Vec<String> = state.tenants().iter().map(|t| tenant_summary(t)).collect();
    Response::json(
        200,
        format!("{{\"tenants\": [{}]}}\n", summaries.join(", ")),
    )
}

/// `POST /v1/tenants` body:
///
/// ```json
/// {"name": "acme",
///  "dataset": {"kind": "pubchem_like", "size": 120, "seed": 41},
///  "config": "small"}
/// ```
///
/// or, instead of `dataset`, explicit `"graphs": [{...}, ...]` (inserted
/// with ids `0..n`).
fn create_tenant(state: &ServeState, req: &Request) -> Response {
    let body = match req.body_str() {
        Some(b) if !b.trim().is_empty() => b,
        _ => return Response::bad_request("missing JSON body"),
    };
    let doc = match Value::parse(body) {
        Ok(v) => v,
        Err(e) => return Response::bad_request(&format!("invalid JSON: {e}")),
    };
    let name = match doc.get("name").and_then(Value::as_str) {
        Some(n) if valid_name(n) => n.to_owned(),
        Some(n) => {
            return Response::bad_request(&format!(
                "invalid tenant name {n:?} (want 1-64 chars of [a-z0-9_-])"
            ))
        }
        None => return Response::bad_request("missing \"name\""),
    };
    let config = match doc.get("config").and_then(Value::as_str) {
        None => MidasConfig::small_defaults(),
        Some(preset) => match config_preset(preset) {
            Some(c) => c,
            None => return Response::bad_request(&format!("unknown config preset {preset:?}")),
        },
    };
    let (kind, db) = if let Some(spec) = doc.get("dataset") {
        let kind = match spec.get("kind").and_then(Value::as_str).map(dataset_kind) {
            Some(Some(k)) => k,
            Some(None) => return Response::bad_request("unknown dataset kind"),
            None => return Response::bad_request("dataset missing \"kind\""),
        };
        let size = spec.get("size").and_then(Value::as_u64).unwrap_or(100) as usize;
        let seed = spec.get("seed").and_then(Value::as_u64).unwrap_or(41);
        if size == 0 || size > 100_000 {
            return Response::bad_request("dataset size out of range (1..=100000)");
        }
        (kind, DatasetSpec::new(kind, size, seed).generate().db)
    } else if let Some(graphs) = doc.get("graphs") {
        match json::graphs_from_value(graphs) {
            Ok(gs) if !gs.is_empty() => (
                DatasetKind::PubchemLike,
                midas_graph::GraphDb::from_graphs(gs),
            ),
            Ok(_) => return Response::bad_request("\"graphs\" must be non-empty"),
            Err(e) => return Response::bad_request(&format!("bad graphs: {e}")),
        }
    } else {
        return Response::bad_request("need \"dataset\" or \"graphs\"");
    };

    // Reserve the name first so two concurrent creates cannot both run a
    // (multi-second) bootstrap for the same tenant.
    if !state.reserve(&name) {
        return Response::json(
            409,
            format!(
                "{{\"error\": \"tenant exists\", \"tenant\": {}}}\n",
                js::quote(&name)
            ),
        );
    }
    match Tenant::bootstrap(name.clone(), kind, db, config) {
        Ok(tenant) => {
            let tenant = Arc::new(tenant);
            state.install(Arc::clone(&tenant));
            Response::json(201, format!("{}\n", tenant_summary(&tenant)))
        }
        Err(e) => {
            state.unreserve(&name);
            Response::bad_request(&format!("bootstrap failed: {e}"))
        }
    }
}

fn delete_tenant(state: &ServeState, name: &str) -> Response {
    if state.remove(name) {
        Response::json(200, format!("{{\"removed\": {}}}\n", js::quote(name)))
    } else {
        Response::json(
            404,
            format!(
                "{{\"error\": \"unknown tenant\", \"tenant\": {}}}\n",
                js::quote(name)
            ),
        )
    }
}

fn graphlets_json(freqs: &[f64; 8]) -> String {
    let items: Vec<String> = freqs.iter().map(|f| js::number(*f)).collect();
    format!("[{}]", items.join(", "))
}

/// `GET /v1/{tenant}/patterns` — the read hot path: one `Arc` clone off
/// the published snapshot, one JSON render. Epoch + publish time +
/// pending queue depth let the client judge staleness; the graphlet
/// frequencies let it compute drift against a later epoch probe.
fn patterns(tenant: &Arc<Tenant>) -> Response {
    let snap = tenant.snapshot();
    if midas_obs::enabled() {
        midas_obs::registry::registry()
            .counter(&crate::metric(&tenant.name, "serve.reads"))
            .add(1);
    }
    let patterns_json = io::patterns_to_json(&snap.patterns).unwrap_or_else(|_| "[]".into());
    Response::json(
        200,
        format!(
            "{{\"tenant\": {}, \"epoch\": {}, \"db_len\": {}, \"published_unix_ms\": {}, \"pending_batches\": {}, \"graphlets\": {}, \"patterns\": {}}}\n",
            js::quote(&tenant.name),
            snap.epoch,
            snap.db_len,
            snap.published_unix_ms,
            tenant.pending_len(),
            graphlets_json(&snap.graphlets.as_array()),
            patterns_json
        ),
    )
}

/// `GET /v1/{tenant}/epoch` — the cheap staleness probe (no pattern
/// payload; a reader holding an older snapshot compares epochs and
/// graphlet drift).
fn epoch(tenant: &Arc<Tenant>) -> Response {
    let snap = tenant.snapshot();
    Response::json(
        200,
        format!(
            "{{\"tenant\": {}, \"epoch\": {}, \"db_len\": {}, \"pending_batches\": {}, \"graphlets\": {}}}\n",
            js::quote(&tenant.name),
            snap.epoch,
            snap.db_len,
            tenant.pending_len(),
            graphlets_json(&snap.graphlets.as_array())
        ),
    )
}

/// `GET /v1/{tenant}/queries?n=16&min=3&max=8&seed=7` — samples a query
/// workload (connected subgraphs of database graphs) from the tenant's
/// current database; the load harness refreshes its pool from here.
fn queries(tenant: &Arc<Tenant>, req: &Request) -> Response {
    let n = req
        .query_param("n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16usize)
        .min(4096);
    let min = req
        .query_param("min")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3usize);
    let max = req
        .query_param("max")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8usize)
        .max(min);
    let seed = req
        .query_param("seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(7u64);
    let queries = tenant.with_midas(|m| midas_datagen::query_set(m.db(), n, (min, max), seed));
    let body = io::patterns_to_json(&queries).unwrap_or_else(|_| "[]".into());
    Response::json(
        200,
        format!(
            "{{\"tenant\": {}, \"count\": {}, \"queries\": {}}}\n",
            js::quote(&tenant.name),
            queries.len(),
            body
        ),
    )
}

fn parse_gen_spec(v: &Value) -> Result<GenSpec, String> {
    let op = match v.get("op").and_then(Value::as_str) {
        Some("growth") => GenOp::Growth,
        Some("deletion") => GenOp::Deletion,
        Some("novel") => GenOp::Novel,
        Some(other) => return Err(format!("unknown generate op {other:?}")),
        None => return Err("generate spec missing \"op\"".into()),
    };
    let motif = match v.get("motif").and_then(Value::as_str) {
        None => None,
        Some(name) => Some(motif_kind(name).ok_or_else(|| format!("unknown motif {name:?}"))?),
    };
    Ok(GenSpec {
        op,
        percent: v.get("percent").and_then(Value::as_f64).unwrap_or(4.0),
        count: v.get("count").and_then(Value::as_u64).unwrap_or(8) as usize,
        motif,
        seed: v.get("seed").and_then(Value::as_u64).unwrap_or(7),
    })
}

/// `POST /v1/{tenant}/updates[?mode=sync]` — body is either an explicit
/// batch (`{"insert": [...], "delete": [...]}`, the
/// [`midas_graph::io::batch_from_json`] format) or a generator spec
/// (`{"generate": {"op": "growth", "percent": 4.0, "seed": 7}}`).
///
/// Default mode enqueues and answers `202` immediately; `mode=sync`
/// waits until the tenant's queue is fully drained (batches apply in
/// FIFO order either way) and answers with the resulting epoch.
fn updates(state: &ServeState, tenant: &Arc<Tenant>, req: &Request) -> Response {
    let body = match req.body_str() {
        Some(b) if !b.trim().is_empty() => b,
        _ => return Response::bad_request("missing JSON body"),
    };
    let job = if let Ok(doc) = Value::parse(body) {
        if let Some(spec) = doc.get("generate") {
            match parse_gen_spec(spec) {
                Ok(spec) => Ingest::Generate(spec),
                Err(e) => return Response::bad_request(&e),
            }
        } else if doc.get("insert").is_some() || doc.get("delete").is_some() {
            match batch_from_value(&doc) {
                Ok(batch) => Ingest::Batch(batch),
                Err(e) => return Response::bad_request(&format!("bad batch: {e}")),
            }
        } else {
            return Response::bad_request("need \"insert\"/\"delete\" or \"generate\"");
        }
    } else {
        return Response::bad_request("invalid JSON");
    };

    if midas_obs::enabled() {
        midas_obs::registry::registry()
            .counter(&crate::metric(&tenant.name, "serve.updates"))
            .add(1);
    }
    let queued = tenant.enqueue(job);
    state.wake(tenant);

    if req.query_param("mode") == Some("sync") {
        // Wait for the pool to drain this tenant (FIFO: everything up to
        // and including our job has applied once the queue is empty and
        // no worker is mid-batch).
        let begin = Instant::now();
        while tenant.pending_len() > 0 || tenant.busy() {
            if begin.elapsed() > SYNC_TIMEOUT {
                return Response::json(
                    503,
                    format!(
                        "{{\"error\": \"sync apply timed out; batch remains queued\", \"tenant\": {}}}\n",
                        js::quote(&tenant.name)
                    ),
                );
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let snap = tenant.snapshot();
        Response::json(
            200,
            format!(
                "{{\"tenant\": {}, \"mode\": \"sync\", \"epoch\": {}, \"db_len\": {}, \"patterns\": {}}}\n",
                js::quote(&tenant.name),
                snap.epoch,
                snap.db_len,
                snap.patterns.len()
            ),
        )
    } else {
        Response::json(
            202,
            format!(
                "{{\"tenant\": {}, \"mode\": \"async\", \"queued\": {}}}\n",
                js::quote(&tenant.name),
                queued
            ),
        )
    }
}

/// Builds a [`BatchUpdate`] from a parsed `{"insert": ..., "delete": ...}`
/// document (both keys optional).
fn batch_from_value(doc: &Value) -> Result<BatchUpdate, String> {
    let insert = match doc.get("insert") {
        Some(v) => json::graphs_from_value(v)?,
        None => Vec::new(),
    };
    let delete = match doc.get("delete") {
        Some(v) => v
            .as_arr()
            .ok_or("\"delete\" must be an array of ids")?
            .iter()
            .map(|id| id.as_u64().map(GraphId).ok_or("bad graph id"))
            .collect::<Result<Vec<_>, _>>()?,
        None => Vec::new(),
    };
    Ok(BatchUpdate { insert, delete })
}

/// `POST /v1/{tenant}/querylog` — body `{"queries": [graph, ...]}`. Each
/// query is formulated against the tenant's *live* snapshot and its
/// frozen epoch-0 baseline; the samples feed the global `/sli` document,
/// the `midas_sli_*` families, and the per-tenant query counter.
fn querylog(tenant: &Arc<Tenant>, req: &Request) -> Response {
    let body = match req.body_str() {
        Some(b) if !b.trim().is_empty() => b,
        _ => return Response::bad_request("missing JSON body"),
    };
    let doc = match Value::parse(body) {
        Ok(v) => v,
        Err(e) => return Response::bad_request(&format!("invalid JSON: {e}")),
    };
    let queries = match doc.get("queries").map(json::graphs_from_value) {
        Some(Ok(qs)) => qs,
        Some(Err(e)) => return Response::bad_request(&format!("bad queries: {e}")),
        None => return Response::bad_request("missing \"queries\""),
    };
    let snap = tenant.snapshot();
    let mut steps_live = 0u64;
    let mut steps_baseline = 0u64;
    for q in &queries {
        let begin = Instant::now();
        let live = midas_queryform::formulate(q, &snap.patterns).steps as u64;
        let formulate_ns = begin.elapsed().as_nanos() as u64;
        let base = midas_queryform::formulate(q, tenant.baseline()).steps as u64;
        steps_live += live;
        steps_baseline += base;
        // Staleness vs the snapshot published *now*, after formulation.
        let latest = tenant.snapshot();
        midas_obs::sli::record_query(&midas_obs::QuerySample {
            read_ns: 0,
            formulate_ns,
            steps_live: live,
            steps_baseline: base,
            staleness_batches: snap.batches_behind(&latest),
            staleness_drift: snap.drift_to(&latest),
        });
    }
    if midas_obs::enabled() && !queries.is_empty() {
        midas_obs::registry::registry()
            .counter(&crate::metric(&tenant.name, "serve.queries"))
            .add(queries.len() as u64);
    }
    Response::json(
        200,
        format!(
            "{{\"tenant\": {}, \"logged\": {}, \"epoch\": {}, \"steps_live\": {}, \"steps_baseline\": {}, \"reduction\": {}}}\n",
            js::quote(&tenant.name),
            queries.len(),
            snap.epoch,
            steps_live,
            steps_baseline,
            js::number(midas_obs::sli::reduction_from_steps(steps_live, steps_baseline))
        ),
    )
}
