//! Weighted random walks over CSGs (§2.3).
//!
//! CATAPULT performs `x` random walks per weighted CSG and keeps, per edge,
//! how often it was traversed; candidate patterns are then grown from the
//! most-traversed edges. Walks choose the next edge among those incident to
//! the current vertex, proportionally to edge weight.

use crate::weights::WeightedCsg;
use midas_graph::VertexId;
use rand::rngs::StdRng;
use rand::RngExt;

/// Edge-traversal statistics from a batch of walks, aligned with
/// `csg.graph.edges()`.
#[derive(Debug, Clone)]
pub struct WalkStats {
    /// Traversal count per edge.
    pub traversals: Vec<u64>,
}

impl WalkStats {
    /// Indices of edges sorted by descending traversal count (ties: lower
    /// edge index first, for determinism).
    pub fn edges_by_frequency(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.traversals.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(self.traversals[i]), i));
        order
    }
}

/// Runs `walks` random walks of `length` steps each and counts traversals.
///
/// Each walk starts on an edge sampled by weight, then repeatedly moves to
/// a weight-sampled edge incident to the current endpoint. Zero-edge CSGs
/// yield empty stats.
pub fn random_walks(csg: &WeightedCsg, walks: usize, length: usize, rng: &mut StdRng) -> WalkStats {
    let edge_count = csg.graph.edge_count();
    let mut traversals = vec![0u64; edge_count];
    if edge_count == 0 || walks == 0 || length == 0 {
        return WalkStats { traversals };
    }
    // Incident edge index lists per vertex.
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); csg.graph.vertex_count()];
    for (i, &(u, v)) in csg.graph.edges().iter().enumerate() {
        incident[u as usize].push(i);
        incident[v as usize].push(i);
    }
    let total = csg.total_weight();
    for _ in 0..walks {
        // Start edge ~ weight.
        let mut cut = rng.random::<f64>() * total;
        let mut current = edge_count - 1;
        for (i, &w) in csg.weights.iter().enumerate() {
            if cut < w {
                current = i;
                break;
            }
            cut -= w;
        }
        traversals[current] += 1;
        // Walk: pick an endpoint, then a weighted incident edge.
        let (mut u, mut v) = csg.graph.edges()[current];
        for _ in 1..length {
            let pivot: VertexId = if rng.random_bool(0.5) { u } else { v };
            let choices = &incident[pivot as usize];
            let local_total: f64 = choices.iter().map(|&i| csg.weights[i]).sum();
            if local_total <= 0.0 || choices.is_empty() {
                break;
            }
            let mut cut = rng.random::<f64>() * local_total;
            let mut next = choices[choices.len() - 1];
            for &i in choices {
                if cut < csg.weights[i] {
                    next = i;
                    break;
                }
                cut -= csg.weights[i];
            }
            traversals[next] += 1;
            let (a, b) = csg.graph.edges()[next];
            (u, v) = (a, b);
        }
    }
    WalkStats { traversals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::{ClosureGraph, GraphBuilder, GraphId, LabeledGraph};
    use midas_mining::EdgeCatalog;
    use rand::SeedableRng;

    fn weighted(graph: &LabeledGraph) -> WeightedCsg {
        let csg = ClosureGraph::from_graphs([(GraphId(1), graph)]);
        let catalog = EdgeCatalog::build([(GraphId(1), graph)]);
        WeightedCsg::build(&csg, &catalog, 1)
    }

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    #[test]
    fn walks_visit_edges() {
        let csg = weighted(&path(&[0, 1, 2, 3]));
        let mut rng = StdRng::seed_from_u64(1);
        let stats = random_walks(&csg, 100, 8, &mut rng);
        assert_eq!(stats.traversals.len(), 3);
        assert!(stats.traversals.iter().all(|&t| t > 0));
        assert!(stats.traversals.iter().sum::<u64>() >= 100);
    }

    #[test]
    fn heavier_edges_attract_more_traversals() {
        let graph = path(&[0, 1, 2]);
        let mut csg = weighted(&graph);
        // Bias edge 0 heavily.
        csg.weights[0] = 100.0;
        csg.weights[1] = 0.01;
        let mut rng = StdRng::seed_from_u64(2);
        let stats = random_walks(&csg, 200, 6, &mut rng);
        assert!(
            stats.traversals[0] > stats.traversals[1] * 5,
            "biased walk: {:?}",
            stats.traversals
        );
    }

    #[test]
    fn frequency_ordering_is_deterministic() {
        let csg = weighted(&path(&[0, 1, 2, 3, 4]));
        let mut rng = StdRng::seed_from_u64(3);
        let stats = random_walks(&csg, 50, 6, &mut rng);
        let order = stats.edges_by_frequency();
        for w in order.windows(2) {
            assert!(stats.traversals[w[0]] >= stats.traversals[w[1]]);
        }
    }

    #[test]
    fn degenerate_inputs() {
        let empty = weighted(&{
            let mut g = LabeledGraph::new();
            g.add_vertex(0);
            g
        });
        let mut rng = StdRng::seed_from_u64(4);
        let stats = random_walks(&empty, 10, 5, &mut rng);
        assert!(stats.traversals.is_empty());
        let csg = weighted(&path(&[0, 1]));
        let none = random_walks(&csg, 0, 5, &mut rng);
        assert_eq!(none.traversals, vec![0]);
    }

    #[test]
    fn seeded_walks_reproduce() {
        let csg = weighted(&path(&[0, 1, 2, 1, 0]));
        let a = random_walks(&csg, 30, 5, &mut StdRng::seed_from_u64(9));
        let b = random_walks(&csg, 30, 5, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.traversals, b.traversals);
    }
}
