//! The CATAPULT greedy selection loop (§2.3).
//!
//! Each round: random walks refresh edge-traversal statistics on every
//! weighted CSG; FCPs are proposed per pattern size; the candidate with the
//! highest pattern score (Def. 2.1) joins `P`; the CSG weights are updated
//! multiplicatively \[7\]. Selection stops at `γ` patterns or when no new
//! pattern can be found, honouring the per-size cap
//! `⌈γ / (η_max − η_min + 1)⌉` of Def. 3.1.

use crate::candidates::generate_candidates;
use crate::random_walk::random_walks;
use crate::score::{ccov_projected, diversity, lcov_pattern, pattern_score, PatternScoreParts};
use crate::weights::WeightedCsg;
use midas_cluster::ClusterSet;
use midas_graph::canonical::canonical_code;
use midas_graph::{CanonicalCode, LabeledGraph};
use midas_mining::EdgeCatalog;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};

/// The pattern budget `b = (η_min, η_max, γ)` (Def. 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternBudget {
    /// Minimum pattern size in edges (> 2 per Def. 3.1).
    pub eta_min: usize,
    /// Maximum pattern size in edges.
    pub eta_max: usize,
    /// Number of patterns displayed on the GUI.
    pub gamma: usize,
}

impl Default for PatternBudget {
    /// The paper's defaults: `η_min = 3`, `η_max = 12`, `γ = 30` (§7.1).
    fn default() -> Self {
        PatternBudget {
            eta_min: 3,
            eta_max: 12,
            gamma: 30,
        }
    }
}

impl PatternBudget {
    /// The per-size cap `⌈γ / (η_max − η_min + 1)⌉`.
    pub fn per_size_cap(&self) -> usize {
        self.gamma.div_ceil(self.eta_max - self.eta_min + 1)
    }
}

/// Selection parameters.
#[derive(Debug, Clone, Copy)]
pub struct SelectionConfig {
    /// The pattern budget.
    pub budget: PatternBudget,
    /// Random walks per CSG per round (`x`; the paper's example uses 100).
    pub walks: usize,
    /// Steps per walk.
    pub walk_length: usize,
    /// Seed ranks tried per (CSG, size) when proposing candidates.
    pub seeds_per_size: usize,
    /// Multiplicative-weights penalty factor applied after each selection.
    pub mwu_penalty: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            budget: PatternBudget::default(),
            walks: 100,
            walk_length: 24,
            seeds_per_size: 3,
            mwu_penalty: 0.5,
            seed: 0,
        }
    }
}

/// Runs CATAPULT's canned pattern selection over the given clusters.
///
/// Returns at most `γ` patterns, deduplicated up to isomorphism. The same
/// routine backs the CATAPULT++ baseline (the clustering feature basis is
/// decided by the caller).
pub fn select_patterns(
    clusters: &ClusterSet,
    catalog: &EdgeCatalog,
    db_len: usize,
    config: &SelectionConfig,
) -> Vec<LabeledGraph> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut csgs: Vec<WeightedCsg> = clusters
        .iter()
        .map(|(_, c)| WeightedCsg::build(c.csg(), catalog, db_len))
        .collect();
    // CSG projections are immutable during selection; compute them once
    // for cluster-coverage scoring.
    let projections: Vec<(usize, LabeledGraph)> = clusters
        .iter()
        .map(|(_, c)| (c.len(), c.csg().to_labeled_graph().0))
        .collect();
    let mut patterns: Vec<LabeledGraph> = Vec::new();
    let mut seen: BTreeSet<CanonicalCode> = BTreeSet::new();
    let mut per_size: BTreeMap<usize, usize> = BTreeMap::new();
    let cap = config.budget.per_size_cap();
    let max_rounds = config.budget.gamma * 4;

    for _ in 0..max_rounds {
        if patterns.len() >= config.budget.gamma {
            break;
        }
        // Propose candidates from every CSG and admissible size.
        let mut best: Option<(f64, LabeledGraph, usize)> = None;
        for (ci, csg) in csgs.iter().enumerate() {
            let stats = random_walks(csg, config.walks, config.walk_length, &mut rng);
            for size in config.budget.eta_min..=config.budget.eta_max {
                if per_size.get(&size).copied().unwrap_or(0) >= cap {
                    continue;
                }
                let mut no_hook = |_: &[(u32, u32)], _: (u32, u32)| true;
                let candidates =
                    generate_candidates(csg, &stats, size, config.seeds_per_size, &mut no_hook);
                for candidate in candidates {
                    let code = canonical_code(&candidate);
                    if seen.contains(&code) {
                        continue;
                    }
                    let parts = PatternScoreParts {
                        coverage: ccov_projected(&candidate, &projections, db_len),
                        lcov: lcov_pattern(&candidate, catalog, db_len),
                        div: diversity(&candidate, &patterns),
                        cog: candidate.cognitive_load(),
                    };
                    let score = pattern_score(parts);
                    if best.as_ref().is_none_or(|(b, _, _)| score > *b) {
                        best = Some((score, candidate, ci));
                    }
                }
            }
        }
        let Some((_, chosen, source)) = best else {
            break; // no new pattern can be found
        };
        seen.insert(canonical_code(&chosen));
        *per_size.entry(chosen.edge_count()).or_insert(0) += 1;
        csgs[source].penalize(&chosen, config.mwu_penalty);
        patterns.push(chosen);
    }
    midas_obs::obs_info!(
        "catapult::select",
        "selected {} of γ = {} patterns from {} clusters",
        patterns.len(),
        config.budget.gamma,
        clusters.len()
    );
    patterns
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_cluster::{ClusterConfig, FeatureSpace};
    use midas_graph::{GraphBuilder, GraphDb};
    use midas_mining::{mine_lattice, MiningConfig};

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn build_world(db: &GraphDb) -> (ClusterSet, EdgeCatalog) {
        let graphs: Vec<_> = db.iter().map(|(id, g)| (id, g.as_ref())).collect();
        let lattice = mine_lattice(
            &graphs,
            &MiningConfig {
                sup_min: 0.25,
                max_edges: 3,
            },
        );
        let space = FeatureSpace::from_frequent(&lattice, 0.25, db.len());
        let clusters = ClusterSet::build(
            db,
            &lattice,
            space,
            ClusterConfig {
                coarse_clusters: 2,
                ..ClusterConfig::default()
            },
        );
        let catalog = EdgeCatalog::build(db.iter().map(|(id, g)| (id, g.as_ref())));
        (clusters, catalog)
    }

    fn chain_db() -> GraphDb {
        // Long chains so size-3 patterns exist.
        GraphDb::from_graphs((0..8).map(|i| path(&[0, 1, 2, 0, 1, (i % 3) as u32])))
    }

    #[test]
    fn selects_up_to_gamma_patterns() {
        let db = chain_db();
        let (clusters, catalog) = build_world(&db);
        let config = SelectionConfig {
            budget: PatternBudget {
                eta_min: 3,
                eta_max: 4,
                gamma: 3,
            },
            seed: 1,
            ..SelectionConfig::default()
        };
        let patterns = select_patterns(&clusters, &catalog, db.len(), &config);
        assert!(!patterns.is_empty());
        assert!(patterns.len() <= 3);
        for p in &patterns {
            assert!(p.is_connected());
            assert!((3..=4).contains(&p.edge_count()));
        }
    }

    #[test]
    fn patterns_are_pairwise_nonisomorphic() {
        let db = chain_db();
        let (clusters, catalog) = build_world(&db);
        let config = SelectionConfig {
            budget: PatternBudget {
                eta_min: 3,
                eta_max: 5,
                gamma: 6,
            },
            seed: 2,
            ..SelectionConfig::default()
        };
        let patterns = select_patterns(&clusters, &catalog, db.len(), &config);
        for i in 0..patterns.len() {
            for j in i + 1..patterns.len() {
                assert!(
                    !midas_graph::canonical::are_isomorphic(&patterns[i], &patterns[j]),
                    "patterns {i} and {j} are isomorphic"
                );
            }
        }
    }

    #[test]
    fn per_size_cap_is_respected() {
        let db = chain_db();
        let (clusters, catalog) = build_world(&db);
        let budget = PatternBudget {
            eta_min: 3,
            eta_max: 4,
            gamma: 4,
        };
        assert_eq!(budget.per_size_cap(), 2);
        let config = SelectionConfig {
            budget,
            seed: 3,
            ..SelectionConfig::default()
        };
        let patterns = select_patterns(&clusters, &catalog, db.len(), &config);
        let mut by_size: BTreeMap<usize, usize> = BTreeMap::new();
        for p in &patterns {
            *by_size.entry(p.edge_count()).or_insert(0) += 1;
        }
        assert!(by_size.values().all(|&c| c <= 2), "{by_size:?}");
    }

    #[test]
    fn empty_database_selects_nothing() {
        let db = GraphDb::new();
        let (clusters, catalog) = build_world(&db);
        let patterns = select_patterns(&clusters, &catalog, 0, &SelectionConfig::default());
        assert!(patterns.is_empty());
    }

    #[test]
    fn selection_is_deterministic_per_seed() {
        let db = chain_db();
        let (clusters, catalog) = build_world(&db);
        let config = SelectionConfig {
            budget: PatternBudget {
                eta_min: 3,
                eta_max: 4,
                gamma: 3,
            },
            seed: 7,
            ..SelectionConfig::default()
        };
        let a = select_patterns(&clusters, &catalog, db.len(), &config);
        let b = select_patterns(&clusters, &catalog, db.len(), &config);
        assert_eq!(a, b);
    }

    #[test]
    fn budget_default_matches_paper() {
        let b = PatternBudget::default();
        assert_eq!((b.eta_min, b.eta_max, b.gamma), (3, 12, 30));
        assert_eq!(b.per_size_cap(), 3);
    }
}
