//! CSG edge weighting (§2.3): `w_e = lcov(e, D) × lcov(e, C)`.

use midas_graph::{ClosureGraph, EdgeLabel, LabeledGraph};
use midas_mining::EdgeCatalog;
use std::collections::{BTreeMap, BTreeSet};

/// A cluster summary graph projected to a plain labeled graph with one
/// weight per edge, ready for random walks.
#[derive(Debug, Clone)]
pub struct WeightedCsg {
    /// The projected CSG (representative labels; see
    /// [`ClosureGraph::to_labeled_graph`]).
    pub graph: LabeledGraph,
    /// Weight of each edge, aligned with `graph.edges()`.
    pub weights: Vec<f64>,
}

impl WeightedCsg {
    /// Builds the weighted projection of `csg`.
    ///
    /// `lcov(e, D)` comes from the database-wide [`EdgeCatalog`];
    /// `lcov(e, C)` is computed from the CSG's own edge supports: the
    /// fraction of cluster members containing an edge with that label.
    pub fn build(csg: &ClosureGraph, catalog: &EdgeCatalog, db_len: usize) -> Self {
        let (graph, back) = csg.to_labeled_graph();
        let cluster_size = csg.members().len().max(1);
        // Union of supports per label within this cluster.
        let mut label_support: BTreeMap<EdgeLabel, BTreeSet<midas_graph::GraphId>> =
            BTreeMap::new();
        for (u, v, support) in csg.edges() {
            let (lu, lv) = (
                csg.representative_label(u).expect("live edge endpoint"),
                csg.representative_label(v).expect("live edge endpoint"),
            );
            label_support
                .entry(EdgeLabel::new(lu, lv))
                .or_default()
                .extend(support.iter().copied());
        }
        let weights = graph
            .edges()
            .iter()
            .map(|&(u, v)| {
                let label = graph.edge_label(u, v);
                let lcov_db = catalog.lcov(label, db_len);
                let lcov_cluster = label_support
                    .get(&label)
                    .map_or(0.0, |s| s.len() as f64 / cluster_size as f64);
                (lcov_db * lcov_cluster).max(f64::MIN_POSITIVE)
            })
            .collect();
        let _ = back;
        WeightedCsg { graph, weights }
    }

    /// Multiplicative-weights update (§2.3, \[7\]): after `pattern` is
    /// selected, every CSG edge whose label occurs in the pattern is
    /// penalized by `factor ∈ (0, 1)`, steering later walks toward
    /// uncovered structure.
    pub fn penalize(&mut self, pattern: &LabeledGraph, factor: f64) {
        let labels: BTreeSet<EdgeLabel> = pattern.edge_labels().collect();
        for (i, &(u, v)) in self.graph.edges().iter().enumerate() {
            if labels.contains(&self.graph.edge_label(u, v)) {
                self.weights[i] *= factor;
            }
        }
    }

    /// Total weight (used by walk-start sampling).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::{GraphBuilder, GraphId};

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn gid(i: u64) -> GraphId {
        GraphId(i)
    }

    #[test]
    fn weights_multiply_db_and_cluster_coverage() {
        // Cluster: two graphs, both containing C-O; one containing O-N.
        let g1 = path(&[0, 1, 2]);
        let g2 = path(&[0, 1]);
        let csg = ClosureGraph::from_graphs([(gid(1), &g1), (gid(2), &g2)]);
        // DB has 4 graphs total; C-O in 2, O-N in 1 (others elsewhere).
        let g3 = path(&[3, 3]);
        let g4 = path(&[3, 4]);
        let catalog =
            EdgeCatalog::build([(gid(1), &g1), (gid(2), &g2), (gid(3), &g3), (gid(4), &g4)]);
        let weighted = WeightedCsg::build(&csg, &catalog, 4);
        assert_eq!(weighted.graph.edge_count(), 2);
        for (i, &(u, v)) in weighted.graph.edges().iter().enumerate() {
            let label = weighted.graph.edge_label(u, v);
            if label == EdgeLabel::new(0, 1) {
                // lcov_db = 2/4, lcov_cluster = 2/2.
                assert!((weighted.weights[i] - 0.5).abs() < 1e-12);
            } else {
                // O-N: lcov_db = 1/4, lcov_cluster = 1/2.
                assert!((weighted.weights[i] - 0.125).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn weights_are_strictly_positive() {
        let g1 = path(&[5, 6]);
        let csg = ClosureGraph::from_graphs([(gid(1), &g1)]);
        // Catalog that has never seen the label: lcov_db = 0, clamped.
        let other = path(&[0, 1]);
        let catalog = EdgeCatalog::build([(gid(2), &other)]);
        let weighted = WeightedCsg::build(&csg, &catalog, 1);
        assert!(weighted.weights.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn penalize_shrinks_matching_labels_only() {
        let g1 = path(&[0, 1, 2]);
        let csg = ClosureGraph::from_graphs([(gid(1), &g1)]);
        let catalog = EdgeCatalog::build([(gid(1), &g1)]);
        let mut weighted = WeightedCsg::build(&csg, &catalog, 1);
        let before = weighted.weights.clone();
        weighted.penalize(&path(&[0, 1]), 0.5); // pattern covers C-O only
        for (i, &(u, v)) in weighted.graph.edges().iter().enumerate() {
            let label = weighted.graph.edge_label(u, v);
            if label == EdgeLabel::new(0, 1) {
                assert!((weighted.weights[i] - before[i] * 0.5).abs() < 1e-12);
            } else {
                assert_eq!(weighted.weights[i], before[i]);
            }
        }
    }

    #[test]
    fn total_weight_sums() {
        let g1 = path(&[0, 1, 0]);
        let csg = ClosureGraph::from_graphs([(gid(1), &g1)]);
        let catalog = EdgeCatalog::build([(gid(1), &g1)]);
        let weighted = WeightedCsg::build(&csg, &catalog, 1);
        let sum: f64 = weighted.weights.iter().sum();
        assert!((weighted.total_weight() - sum).abs() < 1e-12);
    }
}
