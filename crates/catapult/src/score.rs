//! Pattern scoring (Def. 2.1 and §6.1).
//!
//! CATAPULT's score: `s_p = ccov(p, cw, C) × lcov(p, D) × div(p, P\p) /
//! cog(p)`. MIDAS's adaptation `s'_p` replaces cluster coverage with
//! subgraph coverage (computed in `midas-core` via the indices) and uses
//! the tightened GED bound for diversity; the multiplicative combination
//! here is shared by both.

use midas_graph::ged::ged_tight_lower_bound;
use midas_graph::isomorphism::is_subgraph_of;
use midas_graph::{LabeledGraph, MatchKernel};
use midas_mining::EdgeCatalog;
use std::collections::BTreeSet;

/// The four multiplicative components of a pattern score.
#[derive(Debug, Clone, Copy)]
pub struct PatternScoreParts {
    /// Coverage: `ccov` (CATAPULT, Def. 2.1) or `scov` (MIDAS, §6.1).
    pub coverage: f64,
    /// Label coverage `lcov(p, D)`.
    pub lcov: f64,
    /// Diversity `div(p, P \ p)`.
    pub div: f64,
    /// Cognitive load `cog(p)`.
    pub cog: f64,
}

/// Combines the parts into the multiplicative score. A zero cognitive load
/// (impossible for patterns with edges) is clamped to avoid division by
/// zero.
pub fn pattern_score(parts: PatternScoreParts) -> f64 {
    parts.coverage * parts.lcov * parts.div / parts.cog.max(f64::MIN_POSITIVE)
}

/// Cluster coverage `ccov(p, cw, C) = Σ cw_i · I_i` (Def. 2.1): `cw_i =
/// |C_i| / |D|` and `I_i = 1` iff the CSG of `C_i` contains a subgraph
/// isomorphic to `p` (tested on the CSG's labeled projection).
pub fn ccov(pattern: &LabeledGraph, clusters: &midas_cluster::ClusterSet, db_len: usize) -> f64 {
    let projections: Vec<(usize, LabeledGraph)> = clusters
        .iter()
        .map(|(_, c)| (c.len(), c.csg().to_labeled_graph().0))
        .collect();
    ccov_projected(pattern, &projections, db_len)
}

/// [`ccov`] over precomputed `(cluster size, CSG projection)` pairs — the
/// selection loop scores many candidates against the same CSGs, so the
/// projections are computed once.
pub fn ccov_projected(
    pattern: &LabeledGraph,
    projections: &[(usize, LabeledGraph)],
    db_len: usize,
) -> f64 {
    if db_len == 0 {
        return 0.0;
    }
    projections
        .iter()
        .filter(|(_, projection)| is_subgraph_of(pattern, projection))
        .map(|(len, _)| *len as f64 / db_len as f64)
        .sum()
}

/// Label coverage of a pattern: `|⋃_{e ∈ p} L(e, D)| / |D|` — the fraction
/// of data graphs containing at least one edge label of `p` (§2.2).
pub fn lcov_pattern(pattern: &LabeledGraph, catalog: &EdgeCatalog, db_len: usize) -> f64 {
    if db_len == 0 {
        return 0.0;
    }
    let mut union: BTreeSet<midas_graph::GraphId> = BTreeSet::new();
    for label in pattern.edge_labels().collect::<BTreeSet<_>>() {
        if let Some(stats) = catalog.get(label) {
            union.extend(stats.support.iter().copied());
        }
    }
    union.len() as f64 / db_len as f64
}

/// Diversity `div(p, P \ p) = min GED'_l(p, p_i)` (§2.2, §6.1), with the
/// graph-level tightened bound. An empty reference set yields the neutral
/// value 1.0 (first pattern selected).
pub fn diversity(pattern: &LabeledGraph, others: &[LabeledGraph]) -> f64 {
    others
        .iter()
        .map(|p| ged_tight_lower_bound(pattern, p) as f64)
        .fold(None::<f64>, |acc, d| Some(acc.map_or(d, |a| a.min(d))))
        .unwrap_or(1.0)
}

/// Pattern-set level quality `f` measures (§2.2): used by experiments and
/// by the swap criteria.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetQuality {
    /// `f_scov(P)`: fraction of data graphs covered by at least one pattern.
    pub scov: f64,
    /// `f_lcov(P)`: fraction of data graphs containing at least one pattern
    /// edge label.
    pub lcov: f64,
    /// `f_div(P)`: minimum pairwise diversity.
    pub div: f64,
    /// `f_cog(P)`: maximum cognitive load.
    pub cog: f64,
}

/// Computes the set-level quality over an explicit universe of graphs.
pub fn set_quality(
    patterns: &[LabeledGraph],
    db: &midas_graph::GraphDb,
    catalog: &EdgeCatalog,
    universe: &BTreeSet<midas_graph::GraphId>,
) -> SetQuality {
    set_quality_impl(patterns, db, catalog, universe, None)
}

/// [`set_quality`] with the `f_scov` containment scan routed through a
/// parallel + memoized kernel. Identical result, much cheaper when the same
/// patterns are evaluated over overlapping universes batch after batch.
pub fn set_quality_with(
    kernel: &MatchKernel,
    patterns: &[LabeledGraph],
    db: &midas_graph::GraphDb,
    catalog: &EdgeCatalog,
    universe: &BTreeSet<midas_graph::GraphId>,
) -> SetQuality {
    set_quality_impl(patterns, db, catalog, universe, Some(kernel))
}

fn set_quality_impl(
    patterns: &[LabeledGraph],
    db: &midas_graph::GraphDb,
    catalog: &EdgeCatalog,
    universe: &BTreeSet<midas_graph::GraphId>,
    kernel: Option<&MatchKernel>,
) -> SetQuality {
    let denom = universe.len().max(1) as f64;
    let covered = match kernel {
        Some(kernel) => {
            let graphs: Vec<(midas_graph::GraphId, &LabeledGraph)> = universe
                .iter()
                .map(|&id| (id, db.get(id).expect("live id").as_ref()))
                .collect();
            let prepared: Vec<midas_graph::CachedPattern> =
                patterns.iter().map(|p| kernel.prepare(p)).collect();
            kernel
                .any_covered_in(&prepared, &graphs)
                .into_iter()
                .filter(|&hit| hit)
                .count()
        }
        None => universe
            .iter()
            .filter(|&&id| {
                let g = db.get(id).expect("live id");
                patterns.iter().any(|p| is_subgraph_of(p, g))
            })
            .count(),
    };
    let mut label_union: BTreeSet<midas_graph::GraphId> = BTreeSet::new();
    for p in patterns {
        for label in p.edge_labels() {
            if let Some(stats) = catalog.get(label) {
                label_union.extend(stats.support.intersection(universe).copied());
            }
        }
    }
    let div = patterns
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let others: Vec<LabeledGraph> = patterns
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, q)| q.clone())
                .collect();
            diversity(p, &others)
        })
        .fold(f64::INFINITY, f64::min);
    let cog = patterns
        .iter()
        .map(|p| p.cognitive_load())
        .fold(0.0, f64::max);
    SetQuality {
        scov: covered as f64 / denom,
        lcov: label_union.len() as f64 / denom,
        div: if div.is_finite() { div } else { 0.0 },
        cog,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_cluster::{ClusterConfig, ClusterSet, FeatureSpace};
    use midas_graph::{GraphBuilder, GraphDb, GraphId};
    use midas_mining::{mine_lattice, MiningConfig};

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn sample_db() -> GraphDb {
        GraphDb::from_graphs([
            path(&[0, 1, 2]),
            path(&[0, 1, 2]),
            path(&[0, 1]),
            path(&[3, 4, 3]),
        ])
    }

    fn clusters(db: &GraphDb) -> ClusterSet {
        let graphs: Vec<_> = db.iter().map(|(id, g)| (id, g.as_ref())).collect();
        let lattice = mine_lattice(
            &graphs,
            &MiningConfig {
                sup_min: 0.25,
                max_edges: 3,
            },
        );
        let space = FeatureSpace::from_frequent(&lattice, 0.25, db.len());
        ClusterSet::build(
            db,
            &lattice,
            space,
            ClusterConfig {
                coarse_clusters: 2,
                ..ClusterConfig::default()
            },
        )
    }

    #[test]
    fn ccov_sums_matching_cluster_weights() {
        let db = sample_db();
        let set = clusters(&db);
        // C-O edge appears in the C-O-N cluster's CSG only.
        let co = path(&[0, 1]);
        let got = ccov(&co, &set, db.len());
        assert!((got - 0.75).abs() < 1e-12, "got {got}");
        // S-P in the other cluster (1 graph).
        let sp = path(&[3, 4]);
        assert!((ccov(&sp, &set, db.len()) - 0.25).abs() < 1e-12);
        // Absent label: zero.
        assert_eq!(ccov(&path(&[7, 7]), &set, db.len()), 0.0);
    }

    #[test]
    fn lcov_unions_edge_supports() {
        let db = sample_db();
        let catalog = EdgeCatalog::build(db.iter().map(|(id, g)| (id, g.as_ref())));
        // Pattern with C-O edge: 3 of 4 graphs have the label.
        assert!((lcov_pattern(&path(&[0, 1]), &catalog, db.len()) - 0.75).abs() < 1e-12);
        // Pattern with both C-O and S-P: union is all 4.
        let mixed = GraphBuilder::new()
            .vertices(&[0, 1, 3, 4])
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .build();
        assert!((lcov_pattern(&mixed, &catalog, db.len()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diversity_minimum_and_default() {
        let p = path(&[0, 1]);
        assert_eq!(diversity(&p, &[]), 1.0);
        let others = vec![path(&[0, 1]), path(&[3, 4, 3])];
        assert_eq!(diversity(&p, &others), 0.0, "identical pattern in set");
        let others2 = vec![path(&[0, 1, 2])];
        assert!(diversity(&p, &others2) > 0.0);
    }

    #[test]
    fn score_is_multiplicative() {
        let parts = PatternScoreParts {
            coverage: 0.5,
            lcov: 0.8,
            div: 2.0,
            cog: 4.0,
        };
        assert!((pattern_score(parts) - 0.2).abs() < 1e-12);
        let zero_cog = PatternScoreParts { cog: 0.0, ..parts };
        assert!(pattern_score(zero_cog).is_finite() || pattern_score(zero_cog) > 0.0);
    }

    #[test]
    fn set_quality_measures() {
        let db = sample_db();
        let catalog = EdgeCatalog::build(db.iter().map(|(id, g)| (id, g.as_ref())));
        let universe: BTreeSet<GraphId> = db.ids().collect();
        let patterns = vec![path(&[0, 1]), path(&[3, 4])];
        let q = set_quality(&patterns, &db, &catalog, &universe);
        assert!((q.scov - 1.0).abs() < 1e-12, "all graphs covered");
        assert!((q.lcov - 1.0).abs() < 1e-12);
        assert!(q.div > 0.0);
        assert!(q.cog > 0.0);
        // Empty pattern set: zero coverage, zero div, zero cog.
        let empty = set_quality(&[], &db, &catalog, &universe);
        assert_eq!(empty.scov, 0.0);
        assert_eq!(empty.cog, 0.0);
    }
}
