//! Candidate pattern generation: PCP → FCP (§2.3), with MIDAS's
//! early-termination hook (§5.2).
//!
//! A final candidate pattern (FCP) of size `η` is a connected subgraph of
//! the CSG built from the most frequently traversed edges: construction
//! starts at a seed edge and repeatedly adds the most-traversed edge
//! adjacent to the partial pattern. MIDAS interposes a [`CandidateHook`]
//! before each extension — when the hook vetoes the next edge (Eq. 2's low
//! marginal-coverage test), generation terminates early and the candidate
//! is abandoned.

use crate::random_walk::WalkStats;
use crate::weights::WeightedCsg;
use midas_graph::{LabeledGraph, VertexId};
use std::collections::BTreeSet;

/// Decision hook consulted before each edge extension.
///
/// Arguments: the partial pattern so far (as an edge list into the CSG
/// projection) and the candidate next edge. Return `false` to veto (which
/// aborts this candidate), `true` to continue.
pub type CandidateHook<'a> = dyn FnMut(&[(VertexId, VertexId)], (VertexId, VertexId)) -> bool + 'a;

/// Grows one FCP of exactly `size` edges from `seed_rank`-th most-traversed
/// edge. Returns `None` when the CSG is too small, the pattern cannot grow
/// connected to the target size, or the hook vetoes an extension.
pub fn generate_fcp(
    csg: &WeightedCsg,
    stats: &WalkStats,
    size: usize,
    seed_rank: usize,
    hook: &mut CandidateHook<'_>,
) -> Option<LabeledGraph> {
    let graph = &csg.graph;
    if size == 0 || graph.edge_count() < size {
        return None;
    }
    let order = stats.edges_by_frequency();
    let &seed = order.get(seed_rank)?;
    let rank_of = {
        let mut r = vec![usize::MAX; graph.edge_count()];
        for (rank, &e) in order.iter().enumerate() {
            r[e] = rank;
        }
        r
    };
    let seed_edge = graph.edges()[seed];
    let mut chosen: Vec<(VertexId, VertexId)> = vec![seed_edge];
    let mut chosen_set: BTreeSet<usize> = BTreeSet::from([seed]);
    let mut vertices: BTreeSet<VertexId> = BTreeSet::from([seed_edge.0, seed_edge.1]);
    while chosen.len() < size {
        // Most-traversed unchosen edge adjacent to the partial pattern.
        let next = (0..graph.edge_count())
            .filter(|i| !chosen_set.contains(i))
            .filter(|&i| {
                let (u, v) = graph.edges()[i];
                vertices.contains(&u) || vertices.contains(&v)
            })
            .min_by_key(|&i| rank_of[i])?;
        let edge = graph.edges()[next];
        if !hook(&chosen, edge) {
            return None; // early termination (Eq. 2)
        }
        chosen.push(edge);
        chosen_set.insert(next);
        vertices.insert(edge.0);
        vertices.insert(edge.1);
    }
    Some(graph.edge_subgraph(&chosen))
}

/// Generates the PCP library for one size: FCP attempts from the top
/// `seeds` seed ranks **plus** the best-ranked edge of every distinct edge
/// label (so rare labels — e.g. a newly arrived functional group — still
/// seed candidates, giving the "variety of potential candidate patterns"
/// of §2.3). Results are deduplicated by canonical code.
pub fn generate_candidates(
    csg: &WeightedCsg,
    stats: &WalkStats,
    size: usize,
    seeds: usize,
    hook: &mut CandidateHook<'_>,
) -> Vec<LabeledGraph> {
    let order = stats.edges_by_frequency();
    let mut seed_ranks: Vec<usize> = (0..seeds.min(order.len())).collect();
    // Label-diverse extras are capped at `seeds` so candidate volume stays
    // bounded on label-rich CSGs.
    let mut seen_labels = BTreeSet::new();
    let mut extras = 0usize;
    for (rank, &edge_idx) in order.iter().enumerate() {
        if extras >= seeds {
            break;
        }
        let (u, v) = csg.graph.edges()[edge_idx];
        if seen_labels.insert(csg.graph.edge_label(u, v)) && !seed_ranks.contains(&rank) {
            seed_ranks.push(rank);
            extras += 1;
        }
    }
    let mut out: Vec<LabeledGraph> = Vec::new();
    let mut codes = BTreeSet::new();
    for rank in seed_ranks {
        if let Some(candidate) = generate_fcp(csg, stats, size, rank, hook) {
            let code = midas_graph::canonical::canonical_code(&candidate);
            if codes.insert(code) {
                out.push(candidate);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_walk::random_walks;
    use midas_graph::{ClosureGraph, GraphBuilder, GraphId};
    use midas_mining::EdgeCatalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn weighted(graph: &LabeledGraph) -> WeightedCsg {
        let csg = ClosureGraph::from_graphs([(GraphId(1), graph)]);
        let catalog = EdgeCatalog::build([(GraphId(1), graph)]);
        WeightedCsg::build(&csg, &catalog, 1)
    }

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn no_hook() -> Box<CandidateHook<'static>> {
        Box::new(|_, _| true)
    }

    #[test]
    fn fcp_is_connected_with_exact_size() {
        let graph = GraphBuilder::new()
            .vertices(&[0, 1, 2, 0, 1])
            .path(&[0, 1, 2, 3, 4])
            .edge(4, 0)
            .build();
        let csg = weighted(&graph);
        let mut rng = StdRng::seed_from_u64(5);
        let stats = random_walks(&csg, 100, 8, &mut rng);
        for size in 1..=4 {
            let fcp = generate_fcp(&csg, &stats, size, 0, &mut *no_hook()).expect("csg big enough");
            assert_eq!(fcp.edge_count(), size);
            assert!(fcp.is_connected());
        }
    }

    #[test]
    fn oversized_requests_fail() {
        let csg = weighted(&path(&[0, 1, 2]));
        let mut rng = StdRng::seed_from_u64(5);
        let stats = random_walks(&csg, 10, 4, &mut rng);
        assert!(generate_fcp(&csg, &stats, 5, 0, &mut *no_hook()).is_none());
        assert!(generate_fcp(&csg, &stats, 0, 0, &mut *no_hook()).is_none());
    }

    #[test]
    fn hook_veto_aborts_generation() {
        let csg = weighted(&path(&[0, 1, 2, 3]));
        let mut rng = StdRng::seed_from_u64(6);
        let stats = random_walks(&csg, 50, 6, &mut rng);
        let mut always_veto: Box<CandidateHook<'_>> = Box::new(|_, _| false);
        // Size 1 needs no extension, so it survives; size 2 needs one.
        assert!(generate_fcp(&csg, &stats, 1, 0, &mut *always_veto).is_some());
        assert!(generate_fcp(&csg, &stats, 2, 0, &mut *always_veto).is_none());
    }

    #[test]
    fn hook_sees_partial_pattern_growth() {
        let csg = weighted(&path(&[0, 1, 2, 3]));
        let mut rng = StdRng::seed_from_u64(7);
        let stats = random_walks(&csg, 50, 6, &mut rng);
        let mut sizes_seen = Vec::new();
        let mut hook: Box<CandidateHook<'_>> = Box::new(|partial, _| {
            sizes_seen.push(partial.len());
            true
        });
        generate_fcp(&csg, &stats, 3, 0, &mut *hook).expect("fits");
        drop(hook);
        assert_eq!(sizes_seen, vec![1, 2]);
    }

    #[test]
    fn different_seeds_can_differ_and_dedup_works() {
        // A star: seeds from different spokes give isomorphic patterns,
        // which dedup to one.
        let star = GraphBuilder::new()
            .vertices(&[0, 1, 1, 1])
            .edge(0, 1)
            .edge(0, 2)
            .edge(0, 3)
            .build();
        let csg = weighted(&star);
        let mut rng = StdRng::seed_from_u64(8);
        let stats = random_walks(&csg, 60, 6, &mut rng);
        let candidates = generate_candidates(&csg, &stats, 1, 3, &mut *no_hook());
        assert_eq!(candidates.len(), 1, "isomorphic seeds deduplicate");
        let bigger = generate_candidates(&csg, &stats, 2, 3, &mut *no_hook());
        assert_eq!(bigger.len(), 1);
        assert_eq!(bigger[0].edge_count(), 2);
    }

    #[test]
    fn candidates_inherit_csg_labels() {
        let graph = path(&[0, 1, 2]);
        let csg = weighted(&graph);
        let mut rng = StdRng::seed_from_u64(9);
        let stats = random_walks(&csg, 40, 4, &mut rng);
        let fcp = generate_fcp(&csg, &stats, 2, 0, &mut *no_hook()).unwrap();
        assert_eq!(fcp.sorted_labels(), vec![0, 1, 2]);
    }
}
