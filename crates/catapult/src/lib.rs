//! # midas-catapult
//!
//! The CATAPULT canned-pattern selection (CPS) framework (§2.3 of the MIDAS
//! paper; Huang et al., SIGMOD 2019), which MIDAS builds on and maintains.
//!
//! Selection works on the cluster summary graphs (CSGs) produced by
//! `midas-cluster`:
//!
//! 1. [`weights`] — every CSG edge gets weight
//!    `w_e = lcov(e, D) × lcov(e, C)`;
//! 2. [`random_walk`] — `x` weighted random walks per CSG collect edge
//!    traversal statistics;
//! 3. [`candidates`] — per pattern size `η ∈ [η_min, η_max]`, connected
//!    subgraphs built from the most-traversed edges form the potential /
//!    final candidate patterns (PCP → FCP), with an optional
//!    early-termination hook used by MIDAS's coverage pruning (§5.2);
//! 4. [`score`] — the pattern score `s_p` of Def. 2.1 (cluster coverage ×
//!    label coverage × diversity / cognitive load) and MIDAS's adapted
//!    `s'_p` (§6.1);
//! 5. [`select`] — the greedy selection loop with multiplicative-weights
//!    updates \[7\], yielding the canned pattern set `P`.
//!
//! The same code implements the CATAPULT++ baseline: the only differences —
//! FCT-based clustering features and index construction — live in the
//! calling layer (`midas-core`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod candidates;
pub mod random_walk;
pub mod score;
pub mod select;
pub mod weights;

pub use candidates::{generate_fcp, CandidateHook};
pub use score::{ccov, lcov_pattern, pattern_score, PatternScoreParts};
pub use select::{select_patterns, PatternBudget, SelectionConfig};
pub use weights::WeightedCsg;
