//! Minimal hand-rolled JSON utilities — the workspace vendors no serde, so
//! exporters write JSON by hand (the `BENCH_kernel.json` style) and the
//! telemetry tests validate it with the small recursive-descent parser
//! here. This is a *validator*, not a DOM: it checks syntax and offers key
//! lookup on flat paths, which is all the schema gates need.

/// Quotes and escapes `s` as a JSON string literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a finite `f64` as a JSON number (non-finite values become `0`,
/// which JSON cannot represent).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `format!` prints integral floats without a dot; that is still a
        // valid JSON number, so leave it.
        s
    } else {
        "0".to_owned()
    }
}

/// Validates that `s` is one complete JSON document. Returns `Err` with a
/// byte offset and message on the first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, "true"),
        Some(b'f') => parse_literal(b, pos, "false"),
        Some(b'n') => parse_literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 2; // escape + escaped byte (\uXXXX digits parse as chars)
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while b
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(|_| ())
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "0",
            "-1.5e3",
            "\"x\"",
            "true",
            "null",
            r#"{"a": [1, 2.5, {"b": "c\"d"}], "e": null}"#,
            "  { \"k\" : [ ] }  ",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\": 1,}",
            "[1 2]",
            "nul",
            "{} {}",
            "\"unterminated",
            "{'single': 1}",
        ] {
            assert!(validate(doc).is_err(), "should reject {doc:?}");
        }
    }

    #[test]
    fn quote_escapes() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        validate(&quote("控制\u{1}chars")).expect("escaped control chars are valid");
    }

    #[test]
    fn number_handles_nonfinite() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(f64::INFINITY), "0");
        validate(&number(1e300)).expect("large floats render as JSON numbers");
    }
}
