//! Point-in-time snapshots of the metrics registry, with delta arithmetic
//! and a hand-rolled JSON exporter (`metrics.json`).

use crate::json;
use crate::registry::registry;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::time::Duration;

/// Snapshot of one span statistic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStatSnapshot {
    /// Completed spans.
    pub count: u64,
    /// Total time across completions, microseconds.
    pub total_us: u64,
    /// Longest single completion, microseconds.
    pub max_us: u64,
}

impl SpanStatSnapshot {
    /// Total as a [`Duration`].
    pub fn total(&self) -> Duration {
        Duration::from_micros(self.total_us)
    }
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Non-empty log₂ buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

/// A point-in-time copy of every registered metric.
///
/// Captured with [`MetricsSnapshot::capture`]; two captures subtract with
/// [`MetricsSnapshot::since`] to isolate one region of work (how
/// `MaintenanceReport.telemetry` scopes a single batch). Serializes to the
/// `metrics.json` schema via [`MetricsSnapshot::to_json`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name (last write wins; [`Self::since`] keeps the
    /// newer value rather than subtracting).
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span statistics by name.
    pub spans: BTreeMap<String, SpanStatSnapshot>,
}

impl MetricsSnapshot {
    /// Captures the current value of every registered metric.
    pub fn capture() -> Self {
        let mut snap = MetricsSnapshot::default();
        let reg = registry();
        reg.for_each_counter(|name, c| {
            snap.counters.insert(name.to_owned(), c.get());
        });
        reg.for_each_gauge(|name, g| {
            snap.gauges.insert(name.to_owned(), g.get());
        });
        reg.for_each_histogram(|name, h| {
            let (count, sum, max) = h.totals();
            snap.histograms.insert(
                name.to_owned(),
                HistogramSnapshot {
                    count,
                    sum,
                    max,
                    buckets: h.buckets(),
                },
            );
        });
        reg.for_each_span(|name, s| {
            let (count, total, max) = s.totals();
            snap.spans.insert(
                name.to_owned(),
                SpanStatSnapshot {
                    count,
                    total_us: total.as_micros().min(u64::MAX as u128) as u64,
                    max_us: max.as_micros().min(u64::MAX as u128) as u64,
                },
            );
        });
        snap
    }

    /// The delta `self − baseline`: counters and span count/total subtract
    /// (saturating), gauges and maxima keep `self`'s value. Metrics absent
    /// from `baseline` pass through unchanged; zero-delta entries are
    /// dropped so a batch snapshot lists only what the batch touched.
    pub fn since(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for (name, &v) in &self.counters {
            let d = v.saturating_sub(baseline.counters.get(name).copied().unwrap_or(0));
            if d > 0 {
                out.counters.insert(name.clone(), d);
            }
        }
        out.gauges = self.gauges.clone();
        for (name, h) in &self.histograms {
            let base = baseline.histograms.get(name);
            let count = h.count.saturating_sub(base.map_or(0, |b| b.count));
            if count == 0 {
                continue;
            }
            let mut buckets: Vec<(u64, u64)> = Vec::new();
            for &(upper, n) in &h.buckets {
                let base_n = base
                    .and_then(|b| b.buckets.iter().find(|(u, _)| *u == upper))
                    .map_or(0, |(_, n)| *n);
                let d = n.saturating_sub(base_n);
                if d > 0 {
                    buckets.push((upper, d));
                }
            }
            out.histograms.insert(
                name.clone(),
                HistogramSnapshot {
                    count,
                    sum: h.sum.saturating_sub(base.map_or(0, |b| b.sum)),
                    max: h.max,
                    buckets,
                },
            );
        }
        for (name, s) in &self.spans {
            let base = baseline.spans.get(name);
            let count = s.count.saturating_sub(base.map_or(0, |b| b.count));
            if count == 0 {
                continue;
            }
            out.spans.insert(
                name.clone(),
                SpanStatSnapshot {
                    count,
                    total_us: s.total_us.saturating_sub(base.map_or(0, |b| b.total_us)),
                    max_us: s.max_us,
                },
            );
        }
        out
    }

    /// The named counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's value (0 when absent).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// The named span statistic (zeroed when absent).
    pub fn span(&self, name: &str) -> SpanStatSnapshot {
        self.spans.get(name).copied().unwrap_or_default()
    }

    /// Sum of `total_us` over the named spans — e.g. the Algorithm-1 phase
    /// roll-up compared against PMT.
    pub fn span_total(&self, names: &[&str]) -> Duration {
        Duration::from_micros(names.iter().map(|n| self.span(n).total_us).sum())
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Renders the snapshot as JSON (the `metrics.json` schema):
    ///
    /// ```json
    /// {
    ///   "counters": {"cache.hits": 10},
    ///   "gauges": {"monitor.drift": 0.01},
    ///   "histograms": {"vf2.nodes_per_search": {"count": 1, "sum": 7, "max": 7, "buckets": [[7, 1]]}},
    ///   "spans": {"batch.fct": {"count": 1, "total_us": 42, "max_us": 42}}
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"counters\": {\n");
        push_entries(&mut out, &self.counters, |v| v.to_string());
        out.push_str("  },\n  \"gauges\": {\n");
        push_entries(&mut out, &self.gauges, |v| json::number(*v));
        out.push_str("  },\n  \"histograms\": {\n");
        push_entries(&mut out, &self.histograms, |h| {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(upper, n)| format!("[{upper}, {n}]"))
                .collect();
            format!(
                "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [{}]}}",
                h.count,
                h.sum,
                h.max,
                buckets.join(", ")
            )
        });
        out.push_str("  },\n  \"spans\": {\n");
        push_entries(&mut out, &self.spans, |s| {
            format!(
                "{{\"count\": {}, \"total_us\": {}, \"max_us\": {}}}",
                s.count, s.total_us, s.max_us
            )
        });
        out.push_str("  }\n}\n");
        out
    }

    /// Writes [`Self::to_json`] to `path`.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json().as_bytes())
    }
}

fn push_entries<V>(out: &mut String, map: &BTreeMap<String, V>, render: impl Fn(&V) -> String) {
    for (i, (name, v)) in map.iter().enumerate() {
        out.push_str(&format!(
            "    {}: {}{}\n",
            json::quote(name),
            render(v),
            if i + 1 < map.len() { "," } else { "" }
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::exclusive;

    #[test]
    fn snapshot_delta_isolates_a_region() {
        let _g = exclusive();
        crate::set_enabled(true);
        crate::counter_add!("test.snap.delta", 10);
        let base = MetricsSnapshot::capture();
        crate::counter_add!("test.snap.delta", 7);
        {
            let _s = crate::span!("test.snap.span");
        }
        let delta = MetricsSnapshot::capture().since(&base);
        crate::set_enabled(false);
        assert_eq!(delta.counter("test.snap.delta"), 7);
        assert_eq!(delta.span("test.snap.span").count, 1);
        // Untouched metrics do not appear in the delta.
        assert!(!delta.counters.contains_key("test.lib.enabled"));
    }

    #[test]
    fn json_round_trips_through_validator() {
        let _g = exclusive();
        crate::set_enabled(true);
        crate::counter_add!("test.snap.json", 1);
        crate::gauge_set!("test.snap.gauge", 0.25);
        crate::histogram_record!("test.snap.hist", 9);
        let snap = MetricsSnapshot::capture();
        crate::set_enabled(false);
        let doc = snap.to_json();
        json::validate(&doc).expect("snapshot JSON validates");
        assert!(doc.contains("\"test.snap.json\": 1"));
        assert!(doc.contains("\"test.snap.gauge\": 0.25"));
        assert!(doc.contains("\"buckets\": [[15, 1]]"));
    }

    #[test]
    fn empty_snapshot_serializes() {
        let snap = MetricsSnapshot::default();
        assert!(snap.is_empty());
        json::validate(&snap.to_json()).expect("empty snapshot validates");
    }

    #[test]
    fn span_total_sums_phases() {
        let mut snap = MetricsSnapshot::default();
        snap.spans.insert(
            "a".into(),
            SpanStatSnapshot {
                count: 1,
                total_us: 30,
                max_us: 30,
            },
        );
        snap.spans.insert(
            "b".into(),
            SpanStatSnapshot {
                count: 2,
                total_us: 70,
                max_us: 50,
            },
        );
        assert_eq!(
            snap.span_total(&["a", "b", "missing"]),
            Duration::from_micros(100)
        );
    }
}
