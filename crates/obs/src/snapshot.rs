//! Point-in-time snapshots of the metrics registry, with delta arithmetic
//! and a hand-rolled JSON exporter (`metrics.json`).

use crate::json;
use crate::registry::registry;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::time::Duration;

/// Snapshot of one span statistic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStatSnapshot {
    /// Completed spans.
    pub count: u64,
    /// Total time across completions, microseconds.
    pub total_us: u64,
    /// Longest single completion, microseconds.
    pub max_us: u64,
    /// Log₂ histogram of per-completion durations, microseconds — the
    /// source of the percentile estimates.
    pub durations: HistogramSnapshot,
}

impl SpanStatSnapshot {
    /// Total as a [`Duration`].
    pub fn total(&self) -> Duration {
        Duration::from_micros(self.total_us)
    }

    /// Estimated q-quantile of completion durations, microseconds (see
    /// [`HistogramSnapshot::quantile`] for the error bound).
    pub fn quantile_us(&self, q: f64) -> u64 {
        self.durations.quantile(q)
    }

    /// Estimated median completion duration, microseconds.
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// Estimated 90th-percentile completion duration, microseconds.
    pub fn p90_us(&self) -> u64 {
        self.quantile_us(0.90)
    }

    /// Estimated 99th-percentile completion duration, microseconds.
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Non-empty log₂ buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Estimated q-quantile, by linear interpolation inside the log₂
    /// bucket holding rank `⌈q·count⌉`.
    ///
    /// Because bucket `i > 0` spans `[2^(i-1), 2^i)`, the estimate is off
    /// by at most the bucket width: it always lands in the right bucket,
    /// so the relative error is below 2× (and the result is additionally
    /// clamped to the exact observed maximum). Returns 0 on an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for &(upper, n) in &self.buckets {
            if rank <= cum + n {
                let lower = if upper == 0 { 0 } else { upper.div_ceil(2) };
                let into = (rank - cum) as f64 / n as f64;
                let est = lower as f64 + (upper - lower) as f64 * into;
                return (est.round() as u64).min(self.max);
            }
            cum += n;
        }
        self.max
    }

    /// Estimated median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Estimated 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The delta `self − baseline`, bucket by bucket (saturating).
    fn since(&self, base: Option<&HistogramSnapshot>) -> HistogramSnapshot {
        let count = self.count.saturating_sub(base.map_or(0, |b| b.count));
        let mut buckets: Vec<(u64, u64)> = Vec::new();
        for &(upper, n) in &self.buckets {
            let base_n = base
                .and_then(|b| b.buckets.iter().find(|(u, _)| *u == upper))
                .map_or(0, |(_, n)| *n);
            let d = n.saturating_sub(base_n);
            if d > 0 {
                buckets.push((upper, d));
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.saturating_sub(base.map_or(0, |b| b.sum)),
            max: self.max,
            buckets,
        }
    }
}

/// A point-in-time copy of every registered metric.
///
/// Captured with [`MetricsSnapshot::capture`]; two captures subtract with
/// [`MetricsSnapshot::since`] to isolate one region of work (how
/// `MaintenanceReport.telemetry` scopes a single batch). Serializes to the
/// `metrics.json` schema via [`MetricsSnapshot::to_json`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name (last write wins; [`Self::since`] keeps the
    /// newer value rather than subtracting).
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span statistics by name.
    pub spans: BTreeMap<String, SpanStatSnapshot>,
    /// Sliding-window aggregates captured at snapshot time: one entry per
    /// histogram with recent samples, plus `<span>.duration_us` entries for
    /// spans that completed inside the window. Like gauges these describe
    /// "now" rather than an interval, so [`Self::since`] passes them
    /// through unchanged.
    pub windows: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Captures the current value of every registered metric.
    pub fn capture() -> Self {
        let mut snap = MetricsSnapshot::default();
        let reg = registry();
        reg.for_each_counter(|name, c| {
            snap.counters.insert(name.to_owned(), c.get());
        });
        reg.for_each_gauge(|name, g| {
            snap.gauges.insert(name.to_owned(), g.get());
        });
        reg.for_each_histogram(|name, h| {
            let (count, sum, max) = h.totals();
            snap.histograms.insert(
                name.to_owned(),
                HistogramSnapshot {
                    count,
                    sum,
                    max,
                    buckets: h.buckets(),
                },
            );
            let w = h.windowed();
            if w.count > 0 {
                snap.windows.insert(name.to_owned(), window_snapshot(w));
            }
        });
        reg.for_each_span(|name, s| {
            let (count, total, max) = s.totals();
            let dh = s.durations();
            let (dcount, dsum, dmax) = dh.totals();
            snap.spans.insert(
                name.to_owned(),
                SpanStatSnapshot {
                    count,
                    total_us: total.as_micros().min(u64::MAX as u128) as u64,
                    max_us: max.as_micros().min(u64::MAX as u128) as u64,
                    durations: HistogramSnapshot {
                        count: dcount,
                        sum: dsum,
                        max: dmax,
                        buckets: dh.buckets(),
                    },
                },
            );
            let w = dh.windowed();
            if w.count > 0 {
                snap.windows
                    .insert(format!("{name}.duration_us"), window_snapshot(w));
            }
        });
        snap
    }

    /// The delta `self − baseline`: counters and span count/total subtract
    /// (saturating), gauges and maxima keep `self`'s value. Metrics absent
    /// from `baseline` pass through unchanged; zero-delta entries are
    /// dropped so a batch snapshot lists only what the batch touched.
    pub fn since(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for (name, &v) in &self.counters {
            let d = v.saturating_sub(baseline.counters.get(name).copied().unwrap_or(0));
            if d > 0 {
                out.counters.insert(name.clone(), d);
            }
        }
        out.gauges = self.gauges.clone();
        out.windows = self.windows.clone();
        for (name, h) in &self.histograms {
            let delta = h.since(baseline.histograms.get(name));
            if delta.count > 0 {
                out.histograms.insert(name.clone(), delta);
            }
        }
        for (name, s) in &self.spans {
            let base = baseline.spans.get(name);
            let count = s.count.saturating_sub(base.map_or(0, |b| b.count));
            if count == 0 {
                continue;
            }
            out.spans.insert(
                name.clone(),
                SpanStatSnapshot {
                    count,
                    total_us: s.total_us.saturating_sub(base.map_or(0, |b| b.total_us)),
                    max_us: s.max_us,
                    durations: s.durations.since(base.map(|b| &b.durations)),
                },
            );
        }
        out
    }

    /// The named counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's value (0 when absent).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// The named span statistic (zeroed when absent).
    pub fn span(&self, name: &str) -> SpanStatSnapshot {
        self.spans.get(name).cloned().unwrap_or_default()
    }

    /// The named histogram (zeroed when absent) — e.g.
    /// `snapshot.histogram("vf2.search_ns").quantile(0.99)`.
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.histograms.get(name).cloned().unwrap_or_default()
    }

    /// Sum of `total_us` over the named spans — e.g. the Algorithm-1 phase
    /// roll-up compared against PMT.
    pub fn span_total(&self, names: &[&str]) -> Duration {
        Duration::from_micros(names.iter().map(|n| self.span(n).total_us).sum())
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.windows.is_empty()
    }

    /// Renders the snapshot as JSON (the `metrics.json` schema):
    ///
    /// ```json
    /// {
    ///   "counters": {"cache.hits": 10},
    ///   "gauges": {"monitor.drift": 0.01},
    ///   "histograms": {"vf2.nodes_per_search": {"count": 1, "sum": 7, "max": 7, "p50": 7, "p90": 7, "p99": 7, "buckets": [[7, 1]]}},
    ///   "spans": {"batch.fct": {"count": 1, "total_us": 42, "max_us": 42, "p50_us": 42, "p90_us": 42, "p99_us": 42}},
    ///   "windows": {"vf2.nodes_per_search": {"count": 1, "sum": 7, "max": 7, "p50": 7, "p90": 7, "p99": 7, "buckets": [[7, 1]]}}
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"counters\": {\n");
        push_entries(&mut out, &self.counters, |v| v.to_string());
        out.push_str("  },\n  \"gauges\": {\n");
        push_entries(&mut out, &self.gauges, |v| json::number(*v));
        out.push_str("  },\n  \"histograms\": {\n");
        push_entries(&mut out, &self.histograms, render_histogram);
        out.push_str("  },\n  \"spans\": {\n");
        push_entries(&mut out, &self.spans, |s| {
            format!(
                "{{\"count\": {}, \"total_us\": {}, \"max_us\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}}}",
                s.count,
                s.total_us,
                s.max_us,
                s.p50_us(),
                s.p90_us(),
                s.p99_us()
            )
        });
        out.push_str("  },\n  \"windows\": {\n");
        push_entries(&mut out, &self.windows, render_histogram);
        out.push_str("  }\n}\n");
        out
    }

    /// Writes [`Self::to_json`] to `path`.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json().as_bytes())
    }
}

/// Converts a registry [`WindowAggregate`] into the snapshot type.
fn window_snapshot(w: crate::registry::WindowAggregate) -> HistogramSnapshot {
    HistogramSnapshot {
        count: w.count,
        sum: w.sum,
        max: w.max,
        buckets: w.buckets,
    }
}

fn render_histogram(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = h
        .buckets
        .iter()
        .map(|(upper, n)| format!("[{upper}, {n}]"))
        .collect();
    format!(
        "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [{}]}}",
        h.count,
        h.sum,
        h.max,
        h.p50(),
        h.p90(),
        h.p99(),
        buckets.join(", ")
    )
}

fn push_entries<V>(out: &mut String, map: &BTreeMap<String, V>, render: impl Fn(&V) -> String) {
    for (i, (name, v)) in map.iter().enumerate() {
        out.push_str(&format!(
            "    {}: {}{}\n",
            json::quote(name),
            render(v),
            if i + 1 < map.len() { "," } else { "" }
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::exclusive;

    #[test]
    fn snapshot_delta_isolates_a_region() {
        let _g = exclusive();
        crate::set_enabled(true);
        crate::counter_add!("test.snap.delta", 10);
        let base = MetricsSnapshot::capture();
        crate::counter_add!("test.snap.delta", 7);
        {
            let _s = crate::span!("test.snap.span");
        }
        let delta = MetricsSnapshot::capture().since(&base);
        crate::set_enabled(false);
        assert_eq!(delta.counter("test.snap.delta"), 7);
        assert_eq!(delta.span("test.snap.span").count, 1);
        // Untouched metrics do not appear in the delta.
        assert!(!delta.counters.contains_key("test.lib.enabled"));
    }

    #[test]
    fn json_round_trips_through_validator() {
        let _g = exclusive();
        crate::set_enabled(true);
        crate::counter_add!("test.snap.json", 1);
        crate::gauge_set!("test.snap.gauge", 0.25);
        crate::histogram_record!("test.snap.hist", 9);
        let snap = MetricsSnapshot::capture();
        crate::set_enabled(false);
        let doc = snap.to_json();
        json::validate(&doc).expect("snapshot JSON validates");
        assert!(doc.contains("\"test.snap.json\": 1"));
        assert!(doc.contains("\"test.snap.gauge\": 0.25"));
        assert!(doc.contains("\"buckets\": [[15, 1]]"));
    }

    #[test]
    fn empty_snapshot_serializes() {
        let snap = MetricsSnapshot::default();
        assert!(snap.is_empty());
        json::validate(&snap.to_json()).expect("empty snapshot validates");
    }

    #[test]
    fn span_total_sums_phases() {
        let mut snap = MetricsSnapshot::default();
        snap.spans.insert(
            "a".into(),
            SpanStatSnapshot {
                count: 1,
                total_us: 30,
                max_us: 30,
                ..Default::default()
            },
        );
        snap.spans.insert(
            "b".into(),
            SpanStatSnapshot {
                count: 2,
                total_us: 70,
                max_us: 50,
                ..Default::default()
            },
        );
        assert_eq!(
            snap.span_total(&["a", "b", "missing"]),
            Duration::from_micros(100)
        );
    }

    #[test]
    fn quantiles_interpolate_within_log2_buckets() {
        // 100 samples of 10 and 1 sample of 1000:
        //   p50 falls in the (7,15] bucket holding the 10s,
        //   p99 still falls there (rank 100 of 101),
        //   p100 → the 1000 outlier's bucket, clamped to the exact max.
        let mut h = HistogramSnapshot {
            count: 101,
            sum: 100 * 10 + 1000,
            max: 1000,
            buckets: vec![(15, 100), (1023, 1)],
        };
        let p50 = h.p50();
        assert!((8..=15).contains(&p50), "p50 = {p50}");
        let p99 = h.p99();
        assert!((8..=15).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 1000, "clamped to observed max");
        // Empty histogram: all quantiles are 0, never NaN or a panic.
        h.count = 0;
        h.buckets.clear();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn quantile_error_stays_within_one_bucket() {
        // The documented bound: the estimate lands in the same log₂ bucket
        // as the true quantile, so it is within 2× of the true value.
        let mut h = HistogramSnapshot::default();
        let values: Vec<u64> = (1..=1000).collect();
        for &v in &values {
            let upper = if v == 0 {
                0
            } else {
                (1u64 << (64 - v.leading_zeros())) - 1
            };
            match h.buckets.iter_mut().find(|(u, _)| *u == upper) {
                Some((_, n)) => *n += 1,
                None => h.buckets.push((upper, 1)),
            }
            h.count += 1;
            h.sum += v;
            h.max = h.max.max(v);
        }
        h.buckets.sort_unstable();
        for q in [0.5f64, 0.9, 0.99] {
            let exact = values[((q * 1000.0).ceil() as usize - 1).min(999)];
            let est = h.quantile(q);
            assert!(
                est >= exact / 2 && est <= exact.saturating_mul(2),
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn windows_pass_through_since_and_render() {
        let _g = exclusive();
        crate::set_enabled(true);
        crate::histogram_record!("test.snap.window", 42);
        let snap = MetricsSnapshot::capture();
        crate::set_enabled(false);
        let w = snap
            .windows
            .get("test.snap.window")
            .expect("window captured");
        assert!(w.count >= 1);
        // since() keeps windows (they are already time-scoped).
        let delta = snap.since(&snap.clone());
        assert!(delta.windows.contains_key("test.snap.window"));
        let doc = snap.to_json();
        json::validate(&doc).expect("snapshot with windows validates");
        assert!(doc.contains("\"windows\""));
        assert!(doc.contains("\"p99\""));
    }
}
