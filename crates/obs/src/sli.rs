//! User-facing SLIs: what the *users* of the canned pattern set
//! experience, as opposed to the maintenance-side telemetry everywhere
//! else in this crate.
//!
//! MIDAS's point is that maintained patterns keep query-formulation cost
//! low while the database evolves. Three service-level indicators make
//! that claim observable on a live process:
//!
//! * **Formulation-cost reduction** — per query, steps to formulate
//!   against the *live* (maintained) pattern set vs against a *frozen*
//!   no-maintenance baseline set captured at bootstrap. Aggregated,
//!   `reduction = 1 − Σ steps_live / Σ steps_baseline` (1 would mean
//!   maintenance made formulation free, 0 means no help, negative means
//!   maintenance hurt).
//! * **Pattern staleness** — when a user formulates against a snapshot it
//!   read earlier, how far behind is that snapshot: `batches_behind`
//!   (publication epochs elapsed) and the graphlet-distribution drift
//!   between the snapshot's database view and the latest one (the same
//!   distance that classifies modifications, recorded here in millionths
//!   so a log₂ histogram can hold it).
//! * **Read / formulation latency** — end-to-end time for a snapshot read
//!   and for one query formulation, as histograms with lifetime and
//!   sliding-window quantiles.
//!
//! Every sample lands in the global [`crate::registry`] under `sli.*`
//! names, so the existing exporters pick it up for free: Prometheus
//! serves `midas_sli_*` families on `/metrics`, `/snapshot` carries the
//! histograms and windows, and [`render_json`] (the `GET /sli` endpoint)
//! serves the digest. Per-tick summaries additionally go to a bounded
//! ring here (mirrored into the flight recorder as `sli.tick` events) so
//! `/sli` can show the recent trajectory, not just totals.
//!
//! Like every probe in this crate, recording is gated on
//! [`crate::enabled`] and costs one relaxed load when telemetry is off.

use crate::json;
use crate::registry::registry;
use crate::snapshot::HistogramSnapshot;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Scale factor between a graphlet-drift distance (an `f64` in `[0, √2]`)
/// and its integer-histogram representation: drift is recorded in
/// *millionths* (`sli.staleness_drift_micro`).
pub const DRIFT_MICRO: f64 = 1e6;

/// How many per-tick summaries the ring keeps for `/sli`.
pub const TICK_CAPACITY: usize = 128;

/// One formulated query, as experienced by a simulated (or real) user.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuerySample {
    /// Time to read the pattern snapshot, nanoseconds.
    pub read_ns: u64,
    /// Time to formulate the query against the live snapshot, nanoseconds.
    pub formulate_ns: u64,
    /// Formulation steps against the live (maintained) pattern set.
    pub steps_live: u64,
    /// Formulation steps against the frozen no-maintenance baseline set.
    pub steps_baseline: u64,
    /// Publication epochs between the snapshot used and the latest one.
    pub staleness_batches: u64,
    /// Graphlet drift between the used snapshot and the latest one.
    pub staleness_drift: f64,
}

/// Records one user query into the `sli.*` metrics. No-op while telemetry
/// is disabled.
pub fn record_query(s: &QuerySample) {
    if !crate::enabled() {
        return;
    }
    let reg = registry();
    reg.counter("sli.queries").add(1);
    reg.counter("sli.steps_live").add(s.steps_live);
    reg.counter("sli.steps_baseline").add(s.steps_baseline);
    reg.histogram("sli.read_ns").record(s.read_ns);
    reg.histogram("sli.formulate_ns").record(s.formulate_ns);
    reg.histogram("sli.staleness_batches")
        .record(s.staleness_batches);
    reg.histogram("sli.staleness_drift_micro")
        .record((s.staleness_drift.max(0.0) * DRIFT_MICRO) as u64);
    reg.gauge("sli.formulation_reduction")
        .set(reduction_from_steps(
            reg.counter("sli.steps_live").get(),
            reg.counter("sli.steps_baseline").get(),
        ));
}

/// `1 − live/baseline`, guarded: a zero baseline (no queries yet, or only
/// empty queries) yields 0.0, never NaN/∞.
pub fn reduction_from_steps(steps_live: u64, steps_baseline: u64) -> f64 {
    if steps_baseline == 0 {
        0.0
    } else {
        1.0 - steps_live as f64 / steps_baseline as f64
    }
}

/// Aggregate of one driver tick (one applied batch) of the load loop.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TickSummary {
    /// Driver tick number (1-based).
    pub tick: u64,
    /// Pattern-snapshot epoch after this tick's batch.
    pub epoch: u64,
    /// Queries formulated during the tick.
    pub queries: u64,
    /// Sum of live-set formulation steps during the tick.
    pub steps_live: u64,
    /// Sum of baseline-set formulation steps during the tick.
    pub steps_baseline: u64,
    /// `1 − steps_live/steps_baseline` for this tick alone.
    pub reduction: f64,
    /// Worst "batches behind" any query in the tick observed.
    pub staleness_batches_max: u64,
    /// Worst graphlet drift any query in the tick observed.
    pub staleness_drift_max: f64,
    /// Wall-clock at the end of the tick (unix ms).
    pub unix_ms: u64,
}

fn tick_ring() -> &'static Mutex<VecDeque<TickSummary>> {
    static RING: Mutex<VecDeque<TickSummary>> = Mutex::new(VecDeque::new());
    &RING
}

/// Records one per-tick summary: ring + `sli.ticks` counter + reduction
/// gauge + one flight-recorder event. No-op while telemetry is disabled.
///
/// A zero-baseline tick (empty query pool, zero-query tick) computed
/// naively as `1 − live/baseline` arrives as NaN or ±∞; both fields are
/// sanitized to `0.0` here so the gauge, the tick ring, the `/sli` JSON
/// and the `midas_sli_*` exposition stay finite no matter what the
/// producer handed over.
pub fn record_tick(t: TickSummary) {
    if !crate::enabled() {
        return;
    }
    let mut t = t;
    if !t.reduction.is_finite() {
        t.reduction = 0.0;
    }
    if !t.staleness_drift_max.is_finite() {
        t.staleness_drift_max = 0.0;
    }
    registry().counter("sli.ticks").add(1);
    registry().gauge("sli.tick_reduction").set(t.reduction);
    crate::flight::record_event(
        "sli.tick",
        format!(
            "tick {} epoch {}: {} queries, reduction {:.4}, staleness ≤ {} batches / {:.6} drift",
            t.tick, t.epoch, t.queries, t.reduction, t.staleness_batches_max, t.staleness_drift_max
        ),
    );
    let mut ring = tick_ring().lock().unwrap_or_else(|e| e.into_inner());
    if ring.len() == TICK_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(t);
}

/// The recorded tick summaries, oldest first.
pub fn ticks() -> Vec<TickSummary> {
    tick_ring()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .copied()
        .collect()
}

/// Clears the tick ring (tests; the counters/histograms are reset through
/// the registry as usual).
pub fn clear_ticks() {
    tick_ring()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

/// Lifetime + windowed snapshot of one `sli.*` histogram.
fn hist(name: &str) -> (HistogramSnapshot, HistogramSnapshot) {
    let h = registry().histogram(name);
    let (count, sum, max) = h.totals();
    let life = HistogramSnapshot {
        count,
        sum,
        max,
        buckets: h.buckets(),
    };
    let w = h.windowed();
    let win = HistogramSnapshot {
        count: w.count,
        sum: w.sum,
        max: w.max,
        buckets: w.buckets,
    };
    (life, win)
}

fn quantile_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}}",
        h.count,
        h.p50(),
        h.p99(),
        h.max
    )
}

fn tick_json(t: &TickSummary) -> String {
    format!(
        "{{\"tick\": {}, \"epoch\": {}, \"queries\": {}, \"steps_live\": {}, \"steps_baseline\": {}, \"reduction\": {}, \"staleness_batches_max\": {}, \"staleness_drift_max\": {}, \"unix_ms\": {}}}",
        t.tick,
        t.epoch,
        t.queries,
        t.steps_live,
        t.steps_baseline,
        json::number(t.reduction),
        t.staleness_batches_max,
        json::number(t.staleness_drift_max),
        t.unix_ms
    )
}

/// Renders the `GET /sli` document: cumulative reduction, staleness and
/// latency quantiles (lifetime and sliding-window), and the recent
/// per-tick trajectory.
pub fn render_json() -> String {
    let reg = registry();
    let queries = reg.counter("sli.queries").get();
    let ticks_total = reg.counter("sli.ticks").get();
    let steps_live = reg.counter("sli.steps_live").get();
    let steps_baseline = reg.counter("sli.steps_baseline").get();
    let (read_life, read_win) = hist("sli.read_ns");
    let (form_life, form_win) = hist("sli.formulate_ns");
    let (stale_b, _) = hist("sli.staleness_batches");
    let (stale_d, _) = hist("sli.staleness_drift_micro");
    let recent = ticks();
    let last = recent.last().copied();
    format!(
        "{{\n  \"ticks\": {},\n  \"queries\": {},\n  \"steps_live\": {},\n  \"steps_baseline\": {},\n  \"reduction\": {{\"cumulative\": {}, \"last_tick\": {}}},\n  \"staleness\": {{\"batches\": {}, \"drift_micro\": {}}},\n  \"latency_ns\": {{\"read\": {}, \"formulate\": {}, \"read_window\": {}, \"formulate_window\": {}}},\n  \"recent_ticks\": [{}]\n}}\n",
        ticks_total,
        queries,
        steps_live,
        steps_baseline,
        json::number(reduction_from_steps(steps_live, steps_baseline)),
        json::number(last.map_or(0.0, |t| t.reduction)),
        quantile_json(&stale_b),
        quantile_json(&stale_d),
        quantile_json(&read_life),
        quantile_json(&form_life),
        quantile_json(&read_win),
        quantile_json(&form_win),
        recent
            .iter()
            .map(tick_json)
            .collect::<Vec<_>>()
            .join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    // `sli.*` metrics are process-global and other tests may touch them;
    // these tests assert deltas, not absolutes, and serialize through
    // `crate::tests::exclusive()`.

    #[test]
    fn reduction_guards_zero_baseline() {
        assert_eq!(reduction_from_steps(10, 0), 0.0);
        assert_eq!(reduction_from_steps(0, 0), 0.0);
        assert!((reduction_from_steps(5, 10) - 0.5).abs() < 1e-12);
        assert!(reduction_from_steps(20, 10) < 0.0, "maintenance can hurt");
        assert!(reduction_from_steps(10, 0).is_finite());
    }

    #[test]
    fn record_query_feeds_registry_and_render() {
        let _g = crate::tests::exclusive();
        crate::set_enabled(true);
        let before = registry().counter("sli.queries").get();
        record_query(&QuerySample {
            read_ns: 120,
            formulate_ns: 45_000,
            steps_live: 3,
            steps_baseline: 9,
            staleness_batches: 2,
            staleness_drift: 0.0125,
        });
        crate::set_enabled(false);
        assert_eq!(registry().counter("sli.queries").get(), before + 1);
        let (life, _) = hist("sli.read_ns");
        assert!(life.count >= 1);
        let doc = render_json();
        json::validate(&doc).expect("sli JSON validates");
        assert!(doc.contains("\"reduction\""), "{doc}");
        assert!(doc.contains("\"latency_ns\""), "{doc}");
        assert!(doc.contains("\"staleness\""), "{doc}");
    }

    #[test]
    fn disabled_probe_records_nothing() {
        let _g = crate::tests::exclusive();
        crate::set_enabled(false);
        let before = registry().counter("sli.queries").get();
        record_query(&QuerySample::default());
        record_tick(TickSummary::default());
        assert_eq!(registry().counter("sli.queries").get(), before);
    }

    #[test]
    fn tick_ring_bounds_and_orders() {
        let _g = crate::tests::exclusive();
        crate::set_enabled(true);
        clear_ticks();
        for i in 0..(TICK_CAPACITY as u64 + 10) {
            record_tick(TickSummary {
                tick: i + 1,
                queries: 1,
                reduction: 0.25,
                ..TickSummary::default()
            });
        }
        crate::set_enabled(false);
        let t = ticks();
        assert_eq!(t.len(), TICK_CAPACITY, "ring is bounded");
        assert_eq!(t.last().unwrap().tick, TICK_CAPACITY as u64 + 10);
        assert!(t.windows(2).all(|w| w[0].tick < w[1].tick));
        let doc = render_json();
        json::validate(&doc).expect("sli JSON validates");
        assert!(doc.contains("\"last_tick\": 0.25"), "{doc}");
        clear_ticks();
    }

    #[test]
    fn zero_baseline_tick_stays_finite_everywhere() {
        // A tick that saw no baseline steps (empty pool / zero-query
        // tick): the naive `1 - live/baseline` is NaN (0/0) or -inf
        // (live>0, baseline 0). Whatever the producer computed, the
        // recorded tick, the `/sli` JSON and the Prometheus gauge must
        // all stay finite.
        let _g = crate::tests::exclusive();
        crate::set_enabled(true);
        clear_ticks();
        for bad in [f64::NAN, f64::NEG_INFINITY, f64::INFINITY] {
            record_tick(TickSummary {
                tick: 1,
                queries: 0,
                steps_live: 0,
                steps_baseline: 0,
                reduction: bad,
                staleness_drift_max: bad,
                ..TickSummary::default()
            });
        }
        crate::set_enabled(false);
        for t in ticks() {
            assert_eq!(t.reduction, 0.0, "sanitized in the ring");
            assert_eq!(t.staleness_drift_max, 0.0);
        }
        assert_eq!(
            registry().gauge("sli.tick_reduction").get(),
            0.0,
            "gauge sanitized"
        );
        let doc = render_json();
        json::validate(&doc).expect("sli JSON validates");
        for token in ["NaN", "nan", "inf"] {
            assert!(!doc.contains(token), "{token} leaked into /sli: {doc}");
        }
        let prom = crate::prom::render(&crate::snapshot::MetricsSnapshot::capture());
        for line in prom
            .lines()
            .filter(|l| !l.starts_with('#') && l.contains("sli_tick_reduction"))
        {
            if let Some((_, v)) = line.rsplit_once(' ') {
                assert!(
                    v.parse::<f64>().map(f64::is_finite).unwrap_or(false),
                    "{line}"
                );
            }
        }
        clear_ticks();
    }

    #[test]
    fn render_is_valid_json_when_empty() {
        let _g = crate::tests::exclusive();
        clear_ticks();
        let doc = render_json();
        json::validate(&doc).expect("empty sli JSON validates");
        assert!(doc.contains("\"recent_ticks\": []"), "{doc}");
    }
}
