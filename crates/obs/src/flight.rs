//! The flight recorder: a bounded in-memory ring of recent batch
//! summaries and span/log events, dumpable on demand (`GET /flight`) or on
//! panic.
//!
//! A long-running maintenance daemon fails *eventually* — one pathological
//! batch out of thousands. By the time anyone looks, the interesting
//! state is gone unless something cheap retained it. The recorder keeps
//! the last [`capacity`] [`BatchSummary`]s (one per `apply_batch`) and the
//! last [`EVENT_CAPACITY`] [`FlightEvent`]s (log lines, plus span
//! completions when [`set_span_capture`] is on), so a post-hoc dump shows
//! what the process was doing right before it misbehaved.
//!
//! Writes are lock-light: one short `Mutex` push per batch or event, no
//! allocation beyond the ring itself, and the rings are hard-bounded so a
//! runaway loop cannot exhaust memory. [`install_panic_hook`] chains onto
//! the existing hook and writes [`dump_json`] to `MIDAS_FLIGHT_DUMP` (or
//! `midas-flight-dump.json`) before the process dies.

use crate::json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Default number of batch summaries retained.
pub const DEFAULT_CAPACITY: usize = 64;

/// Fixed bound on retained span/log events.
pub const EVENT_CAPACITY: usize = 256;

/// One `apply_batch` outcome, compressed to what a post-mortem needs.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSummary {
    /// Batch sequence number (1-based, process lifetime).
    pub seq: u64,
    /// `"major"` or `"minor"`.
    pub kind: &'static str,
    /// Graphlet-distribution drift for the batch.
    pub distance: f64,
    /// Pattern maintenance time, microseconds.
    pub pmt_us: u64,
    /// Pattern generation time (candidates + swap), microseconds.
    pub pgt_us: u64,
    /// Graphs inserted / deleted by the batch.
    pub inserted: usize,
    /// Graphs deleted by the batch.
    pub deleted: usize,
    /// Promising candidates generated.
    pub candidates: usize,
    /// Swaps performed.
    pub swaps: usize,
    /// Wall-clock completion time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
}

impl BatchSummary {
    fn to_json(&self) -> String {
        format!(
            "{{\"seq\": {}, \"kind\": {}, \"distance\": {}, \"pmt_us\": {}, \"pgt_us\": {}, \"inserted\": {}, \"deleted\": {}, \"candidates\": {}, \"swaps\": {}, \"unix_ms\": {}}}",
            self.seq,
            json::quote(self.kind),
            json::number(self.distance),
            self.pmt_us,
            self.pgt_us,
            self.inserted,
            self.deleted,
            self.candidates,
            self.swaps,
            self.unix_ms
        )
    }
}

/// One recent span completion or log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Event source: a log level name (`"WARN"`) or `"SPAN"`.
    pub kind: &'static str,
    /// The message (log line body, or `"<name> <dur>µs"` for spans).
    pub message: String,
}

impl FlightEvent {
    fn to_json(&self) -> String {
        format!(
            "{{\"unix_ms\": {}, \"kind\": {}, \"message\": {}}}",
            self.unix_ms,
            json::quote(self.kind),
            json::quote(&self.message)
        )
    }
}

/// Milliseconds since the Unix epoch, saturating at 0 on a pre-epoch
/// clock.
pub fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

struct Recorder {
    batches: Mutex<VecDeque<BatchSummary>>,
    events: Mutex<VecDeque<FlightEvent>>,
    /// How many batch summaries to retain; adjustable at runtime.
    capacity: AtomicUsize,
    /// Total batches ever recorded (survives ring eviction).
    total_batches: AtomicU64,
}

fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        batches: Mutex::new(VecDeque::new()),
        events: Mutex::new(VecDeque::new()),
        capacity: AtomicUsize::new(DEFAULT_CAPACITY),
        total_batches: AtomicU64::new(0),
    })
}

/// Whether completed spans are appended to the event ring. Off by default:
/// span completions are much more frequent than batches, and the daemon
/// opts in when it actually serves `/flight`.
static SPAN_CAPTURE: AtomicBool = AtomicBool::new(false);

/// Turns span capture into the event ring on or off.
pub fn set_span_capture(on: bool) {
    SPAN_CAPTURE.store(on, Ordering::Relaxed);
}

/// Whether span completions are being captured.
#[inline]
pub fn span_capture_enabled() -> bool {
    SPAN_CAPTURE.load(Ordering::Relaxed)
}

/// Sets how many batch summaries the ring retains (min 1). Trims the ring
/// immediately if it shrank.
pub fn set_capacity(n: usize) {
    let n = n.max(1);
    let r = recorder();
    r.capacity.store(n, Ordering::Relaxed);
    let mut batches = r.batches.lock().unwrap_or_else(|e| e.into_inner());
    while batches.len() > n {
        batches.pop_front();
    }
}

/// The current batch-ring capacity.
pub fn capacity() -> usize {
    recorder().capacity.load(Ordering::Relaxed)
}

/// Appends one batch summary, evicting the oldest beyond capacity.
pub fn record_batch(summary: BatchSummary) {
    let r = recorder();
    r.total_batches.fetch_add(1, Ordering::Relaxed);
    let cap = r.capacity.load(Ordering::Relaxed);
    let mut batches = r.batches.lock().unwrap_or_else(|e| e.into_inner());
    while batches.len() >= cap {
        batches.pop_front();
    }
    batches.push_back(summary);
}

/// Appends one event (log line or span completion), evicting beyond
/// [`EVENT_CAPACITY`].
pub fn record_event(kind: &'static str, message: String) {
    let event = FlightEvent {
        unix_ms: unix_ms(),
        kind,
        message,
    };
    let mut events = recorder().events.lock().unwrap_or_else(|e| e.into_inner());
    while events.len() >= EVENT_CAPACITY {
        events.pop_front();
    }
    events.push_back(event);
}

/// Total batches recorded over the process lifetime (not just retained).
pub fn total_batches() -> u64 {
    recorder().total_batches.load(Ordering::Relaxed)
}

/// The retained batch summaries, oldest first.
pub fn batches() -> Vec<BatchSummary> {
    recorder()
        .batches
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .cloned()
        .collect()
}

/// The most recent batch summary, if any batch has run.
pub fn last_batch() -> Option<BatchSummary> {
    recorder()
        .batches
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .back()
        .cloned()
}

/// The retained events, oldest first.
pub fn events() -> Vec<FlightEvent> {
    recorder()
        .events
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .cloned()
        .collect()
}

/// Empties both rings and the lifetime batch count (tests).
pub fn clear() {
    let r = recorder();
    r.batches.lock().unwrap_or_else(|e| e.into_inner()).clear();
    r.events.lock().unwrap_or_else(|e| e.into_inner()).clear();
    r.total_batches.store(0, Ordering::Relaxed);
}

/// Renders the recorder as one JSON document:
///
/// ```json
/// {"total_batches": 12, "capacity": 8, "batches": [...], "events": [...]}
/// ```
pub fn dump_json() -> String {
    let batches = batches();
    let events = events();
    let mut out = format!(
        "{{\n  \"total_batches\": {},\n  \"capacity\": {},\n  \"batches\": [\n",
        total_batches(),
        capacity()
    );
    for (i, b) in batches.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&b.to_json());
        out.push_str(if i + 1 < batches.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"events\": [\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&e.to_json());
        out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Where the panic dump goes: `MIDAS_FLIGHT_DUMP` or
/// `./midas-flight-dump.json`.
pub fn dump_path() -> std::path::PathBuf {
    std::env::var_os("MIDAS_FLIGHT_DUMP")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("midas-flight-dump.json"))
}

/// Installs (once) a panic hook that writes [`dump_json`] to
/// [`dump_path`] and then defers to the previously installed hook. A
/// second call is a no-op; a panic inside the dump itself cannot recurse
/// (the guard flag stays set).
pub fn install_panic_hook() {
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        static DUMPING: AtomicBool = AtomicBool::new(false);
        if !DUMPING.swap(true, Ordering::SeqCst) {
            record_event("PANIC", info.to_string());
            let path = dump_path();
            if std::fs::write(&path, dump_json()).is_ok() {
                eprintln!("[midas flight] wrote flight dump to {}", path.display());
            }
            DUMPING.store(false, Ordering::SeqCst);
        }
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(seq: u64) -> BatchSummary {
        BatchSummary {
            seq,
            kind: if seq.is_multiple_of(2) {
                "minor"
            } else {
                "major"
            },
            distance: 0.01 * seq as f64,
            pmt_us: 100 * seq,
            pgt_us: 10 * seq,
            inserted: 5,
            deleted: 1,
            candidates: 3,
            swaps: 1,
            unix_ms: unix_ms(),
        }
    }

    /// The recorder is process-global; tests serialize on the crate lock.
    #[test]
    fn ring_wraps_at_capacity() {
        let _g = crate::tests::exclusive();
        clear();
        set_capacity(8);
        for seq in 1..=20 {
            record_batch(summary(seq));
        }
        let kept = batches();
        assert_eq!(kept.len(), 8);
        let seqs: Vec<u64> = kept.iter().map(|b| b.seq).collect();
        assert_eq!(seqs, (13..=20).collect::<Vec<u64>>());
        assert_eq!(total_batches(), 20);
        assert_eq!(last_batch().unwrap().seq, 20);
        // Shrinking trims the front immediately.
        set_capacity(3);
        assert_eq!(
            batches().iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![18, 19, 20]
        );
        clear();
        set_capacity(DEFAULT_CAPACITY);
    }

    #[test]
    fn concurrent_writers_never_exceed_bounds() {
        let _g = crate::tests::exclusive();
        clear();
        set_capacity(16);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                scope.spawn(move || {
                    for i in 0..200 {
                        record_batch(summary(t * 1000 + i));
                        record_event("INFO", format!("thread {t} event {i}"));
                    }
                });
            }
        });
        assert_eq!(total_batches(), 1600);
        assert_eq!(batches().len(), 16);
        assert!(events().len() <= EVENT_CAPACITY);
        // The dump stays valid JSON under whatever interleaving happened.
        json::validate(&dump_json()).expect("dump validates");
        clear();
        set_capacity(DEFAULT_CAPACITY);
    }

    #[test]
    fn dump_is_valid_json_with_escaping() {
        let _g = crate::tests::exclusive();
        clear();
        record_batch(summary(1));
        record_event("WARN", "quote \" backslash \\ newline \n done".into());
        let doc = dump_json();
        json::validate(&doc).expect("dump validates");
        assert!(doc.contains("\"total_batches\": 1"));
        assert!(doc.contains("\"seq\": 1"));
        assert!(doc.contains("backslash"));
        clear();
    }

    #[test]
    fn empty_dump_is_valid() {
        let _g = crate::tests::exclusive();
        clear();
        json::validate(&dump_json()).expect("empty dump validates");
    }

    #[test]
    fn panic_hook_writes_a_valid_dump() {
        let _g = crate::tests::exclusive();
        clear();
        let path = std::env::temp_dir().join(format!("midas-flight-{}.json", std::process::id()));
        std::env::set_var("MIDAS_FLIGHT_DUMP", &path);
        install_panic_hook();
        record_batch(summary(7));
        // Panic inside a thread so the test itself survives; silence the
        // default hook's backtrace noise by keeping the chain (our hook
        // defers to it, which prints one line).
        let result = std::thread::spawn(|| panic!("synthetic batch failure")).join();
        assert!(result.is_err());
        std::env::remove_var("MIDAS_FLIGHT_DUMP");
        let doc = std::fs::read_to_string(&path).expect("panic dump written");
        let _ = std::fs::remove_file(&path);
        json::validate(&doc).expect("panic dump validates");
        assert!(doc.contains("\"seq\": 7"));
        assert!(doc.contains("synthetic batch failure"));
        clear();
    }
}
