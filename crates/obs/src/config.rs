//! Telemetry configuration embedded in `MidasConfig`.

use crate::alerts::SloConfig;
use crate::log::LogLevel;
use std::path::PathBuf;

/// Telemetry knobs carried by `MidasConfig` (the struct stays `Copy`, so
/// paths and addresses live in environment variables, not here).
///
/// Environment overrides, applied by [`TelemetryConfig::from_env`]:
///
/// * `MIDAS_TELEMETRY` — `1|true|on` enables metrics **and** tracing,
///   `0|false|off` disables both, unset leaves the config untouched;
/// * `MIDAS_TRACE_OUT` — setting it enables tracing and names the
///   `trace.json` output path (see [`TelemetryConfig::trace_path`]);
/// * `MIDAS_SERVE` — setting it (to a bind address such as
///   `127.0.0.1:9898`, or `127.0.0.1:0` for an ephemeral port) enables
///   [`Self::serve`] and names the address
///   (see [`TelemetryConfig::serve_addr`]);
/// * `MIDAS_FLIGHT` — flight-recorder batch capacity (a positive integer);
/// * `MIDAS_LOG` — log level (see [`crate::log`]);
/// * `MIDAS_PROFILE_HZ` — sampling-profiler rate in Hz (0 = off; clamped
///   to [`crate::profile::MAX_HZ`]);
/// * `MIDAS_SLO_PHASE_US` / `MIDAS_SLO_VF2_NS` — per-phase span and VF2
///   search latency budgets (0 = that alert family off);
/// * `MIDAS_SLO_BUDGET_PPM` / `MIDAS_SLO_BURN_MILLI` — the error budget
///   (parts-per-million over budget allowed) and the burn-rate alert
///   threshold ×1000 (see [`crate::alerts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch for counters/gauges/histograms/span statistics.
    pub enabled: bool,
    /// Also collect Chrome-trace events and write `trace.json` after each
    /// batch. Implies nothing unless [`Self::enabled`] is set.
    pub trace: bool,
    /// Serve the live observability endpoints (`/metrics`, `/snapshot`,
    /// `/healthz`, `/flight`) over HTTP. The bind address comes from
    /// [`TelemetryConfig::serve_addr`].
    pub serve: bool,
    /// How many batch summaries the flight recorder retains.
    pub flight_capacity: usize,
    /// Log level for the [`crate::obs_warn!`]-family macros.
    pub log: LogLevel,
    /// Sampling-profiler rate in Hz (0 = profiler off). Only takes effect
    /// while [`Self::enabled`] is set.
    pub profile_hz: u32,
    /// SLO budgets driving the burn-rate alerts (see [`crate::alerts`]).
    pub slo: SloConfig,
}

impl Default for TelemetryConfig {
    /// Disabled: probes cost one relaxed atomic load each.
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            trace: false,
            serve: false,
            flight_capacity: crate::flight::DEFAULT_CAPACITY,
            log: LogLevel::Warn,
            profile_hz: 0,
            slo: SloConfig::default(),
        }
    }
}

impl TelemetryConfig {
    /// Metrics, tracing and info-level logging all on.
    pub fn on() -> Self {
        TelemetryConfig {
            enabled: true,
            trace: true,
            log: LogLevel::Info,
            ..TelemetryConfig::default()
        }
    }

    /// This config with the `MIDAS_TELEMETRY`/`MIDAS_TRACE_OUT`/
    /// `MIDAS_SERVE`/`MIDAS_FLIGHT`/`MIDAS_LOG` environment overrides
    /// applied.
    pub fn from_env(mut self) -> Self {
        if let Ok(v) = std::env::var("MIDAS_TELEMETRY") {
            if let Some(on) = parse_bool(&v) {
                self.enabled = on;
                self.trace = on;
            }
        }
        if std::env::var_os("MIDAS_TRACE_OUT").is_some() {
            self.trace = true;
        }
        if std::env::var_os("MIDAS_SERVE").is_some() {
            self.serve = true;
            // Serving implies collecting: an endpoint over a disabled
            // registry would only ever report zeros.
            self.enabled = true;
        }
        if let Some(cap) = std::env::var("MIDAS_FLIGHT")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&c| c > 0)
        {
            self.flight_capacity = cap;
        }
        if let Some(level) = std::env::var("MIDAS_LOG")
            .ok()
            .and_then(|s| LogLevel::parse(&s))
        {
            self.log = level;
        }
        if let Some(hz) = env_u64("MIDAS_PROFILE_HZ") {
            self.profile_hz = hz.min(u64::from(u32::MAX)) as u32;
        }
        if let Some(us) = env_u64("MIDAS_SLO_PHASE_US") {
            self.slo.phase_budget_us = us;
        }
        if let Some(ns) = env_u64("MIDAS_SLO_VF2_NS") {
            self.slo.vf2_budget_ns = ns;
        }
        if let Some(ppm) = env_u64("MIDAS_SLO_BUDGET_PPM").filter(|&p| p > 0) {
            self.slo.allowed_ppm = ppm.min(1_000_000) as u32;
        }
        if let Some(milli) = env_u64("MIDAS_SLO_BURN_MILLI").filter(|&m| m > 0) {
            self.slo.burn_milli = milli.min(u64::from(u32::MAX)) as u32;
        }
        self
    }

    /// Applies this config to the process-global switches
    /// ([`crate::set_enabled`], [`crate::set_tracing`],
    /// [`crate::log::set_log_level`], [`crate::flight::set_capacity`]).
    pub fn activate(&self) {
        crate::set_enabled(self.enabled);
        crate::set_tracing(self.enabled && self.trace);
        crate::log::set_log_level(self.log);
        crate::flight::set_capacity(self.flight_capacity);
        crate::alerts::configure(self.slo);
        crate::profile::set_rate(if self.enabled { self.profile_hz } else { 0 });
    }

    /// Where `trace.json` goes: `MIDAS_TRACE_OUT` or `./trace.json`.
    pub fn trace_path() -> PathBuf {
        std::env::var_os("MIDAS_TRACE_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("trace.json"))
    }

    /// The bind address for the observability endpoints: `MIDAS_SERVE` or
    /// loopback on an ephemeral port.
    pub fn serve_addr() -> String {
        std::env::var("MIDAS_SERVE")
            .ok()
            .filter(|s| !s.trim().is_empty())
            .unwrap_or_else(|| "127.0.0.1:0".to_string())
    }
}

/// Parses a non-negative integer environment value; unset or unparsable
/// returns `None`.
fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
}

/// Parses a boolean environment value. Unknown strings return `None`.
pub fn parse_bool(s: &str) -> Option<bool> {
    match s.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let c = TelemetryConfig::default();
        assert!(!c.enabled);
        assert!(!c.trace);
        assert!(!c.serve);
        assert_eq!(c.flight_capacity, crate::flight::DEFAULT_CAPACITY);
        assert_eq!(c.log, LogLevel::Warn);
        assert_eq!(c.profile_hz, 0);
        assert!(!c.slo.any_enabled());
    }

    #[test]
    fn serve_addr_defaults_to_ephemeral_loopback() {
        if std::env::var_os("MIDAS_SERVE").is_none() {
            assert_eq!(TelemetryConfig::serve_addr(), "127.0.0.1:0");
        }
    }

    #[test]
    fn on_enables_everything() {
        let c = TelemetryConfig::on();
        assert!(c.enabled && c.trace);
        assert_eq!(c.log, LogLevel::Info);
    }

    #[test]
    fn parse_bool_spellings() {
        assert_eq!(parse_bool("1"), Some(true));
        assert_eq!(parse_bool(" ON "), Some(true));
        assert_eq!(parse_bool("false"), Some(false));
        assert_eq!(parse_bool("maybe"), None);
    }

    #[test]
    fn activate_round_trips() {
        let _g = crate::tests::exclusive();
        TelemetryConfig::on().activate();
        assert!(crate::enabled());
        assert!(crate::tracing_enabled());
        TelemetryConfig::default().activate();
        assert!(!crate::enabled());
        assert!(!crate::tracing_enabled());
    }
}
