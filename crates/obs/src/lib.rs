//! # midas-obs
//!
//! Zero-dependency structured telemetry for the MIDAS maintenance pipeline.
//!
//! The paper's headline claims are throughput claims — PMT/PGT per batch
//! (§7), VF2 work saved by pruning (§5.1), swap-scan convergence (§6.2) —
//! and verifying them needs finer instruments than one stopwatch per batch.
//! This crate provides the three layers every other crate in the workspace
//! shares:
//!
//! * [`registry`] — a global metrics registry of sharded atomic
//!   [`Counter`]s, [`Gauge`]s and log₂-bucketed [`Histogram`]s, addressed
//!   by name through the [`counter!`]/[`counter_add!`]/[`gauge_set!`]/
//!   [`histogram_record!`] macros (each probe site caches its handle in a
//!   `OnceLock`, so an enabled probe is one atomic op);
//! * [`span`] — RAII [`Span`] timers that nest into a per-thread span
//!   stack; each completed span feeds a named duration statistic and,
//!   when tracing is on, a Chrome-trace event;
//! * exporters — [`MetricsSnapshot`] renders the registry as the same
//!   hand-rolled JSON style as `BENCH_kernel.json`, and [`trace`] writes
//!   a `trace.json` loadable in `chrome://tracing` / Perfetto.
//!
//! Plus a leveled [`obs_error!`]/[`obs_warn!`]/[`obs_info!`]/[`obs_debug!`]
//! logger gated by the `MIDAS_LOG` environment variable, replacing ad-hoc
//! `eprintln!` diagnostics.
//!
//! # Cost when disabled
//!
//! Telemetry is **off by default**. Every probe macro begins with a single
//! relaxed atomic load of the global enable flag and does nothing else when
//! it reads `false`; the kernel benches guard this (`BENCH_kernel.json`
//! records the per-probe cost). [`Span::enter`] likewise returns an inert
//! guard. Enabling is process-global, via [`set_enabled`] or
//! [`TelemetryConfig::activate`].
//!
//! # Quick tour
//!
//! ```
//! midas_obs::set_enabled(true);
//! {
//!     let _span = midas_obs::span!("demo.phase");
//!     midas_obs::counter_add!("demo.items", 3);
//!     midas_obs::gauge_set!("demo.drift", 0.125);
//! }
//! let snap = midas_obs::MetricsSnapshot::capture();
//! assert_eq!(snap.counter("demo.items"), 3);
//! assert_eq!(snap.span("demo.phase").count, 1);
//! assert!(snap.to_json().contains("\"demo.items\": 3"));
//! midas_obs::set_enabled(false);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alerts;
pub mod config;
pub mod exemplar;
pub mod flight;
pub mod http;
pub mod httpd;
pub mod json;
pub mod log;
pub mod profile;
pub mod prom;
pub mod registry;
pub mod sli;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use alerts::{AlertEval, AlertState, SloConfig};
pub use config::TelemetryConfig;
pub use flight::{BatchSummary, FlightEvent};
pub use http::ObsServer;
pub use httpd::{Handler, HttpServer, Request, Response};
pub use log::LogLevel;
pub use registry::{Counter, Gauge, Histogram};
pub use sli::{QuerySample, TickSummary};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot, SpanStatSnapshot};
pub use span::Span;

use std::sync::atomic::{AtomicBool, Ordering};

/// Global metrics switch. All probe macros check this first.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Global trace-event switch (implies nothing about [`enabled`]; span
/// *statistics* follow [`enabled`], span *events* follow this).
static TRACING: AtomicBool = AtomicBool::new(false);

/// Whether metric collection is on — one relaxed load, the entire cost of
/// a disabled probe.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns metric collection on or off, process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether Chrome-trace event collection is on.
#[inline(always)]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Turns Chrome-trace event collection on or off, process-wide.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Registers a counter once per call site and returns its `&'static` handle.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::registry::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry::registry().counter($name))
    }};
}

/// Adds to a named counter when telemetry is enabled.
#[macro_export]
macro_rules! counter_add {
    ($name:expr, $n:expr) => {
        if $crate::enabled() {
            $crate::counter!($name).add($n as u64);
        }
    };
}

/// Sets a named gauge when telemetry is enabled.
#[macro_export]
macro_rules! gauge_set {
    ($name:expr, $v:expr) => {
        if $crate::enabled() {
            static HANDLE: ::std::sync::OnceLock<&'static $crate::registry::Gauge> =
                ::std::sync::OnceLock::new();
            HANDLE
                .get_or_init(|| $crate::registry::registry().gauge($name))
                .set($v as f64);
        }
    };
}

/// Records a value into a named histogram when telemetry is enabled.
#[macro_export]
macro_rules! histogram_record {
    ($name:expr, $v:expr) => {
        if $crate::enabled() {
            static HANDLE: ::std::sync::OnceLock<&'static $crate::registry::Histogram> =
                ::std::sync::OnceLock::new();
            HANDLE
                .get_or_init(|| $crate::registry::registry().histogram($name))
                .record($v as u64);
        }
    };
}

/// Opens an RAII span: `let _s = midas_obs::span!("batch.fct");`.
///
/// The returned [`Span`] records its duration (and a trace event when
/// tracing is on) when dropped. Bind it to a named variable — `let _ =`
/// drops immediately.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::Span::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Global telemetry state is process-wide; tests that toggle it hold
    /// this lock so they do not interleave.
    static GUARD: Mutex<()> = Mutex::new(());

    pub(crate) fn exclusive() -> MutexGuard<'static, ()> {
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_probes_record_nothing() {
        let _g = exclusive();
        set_enabled(false);
        counter_add!("test.lib.disabled", 5);
        let snap = MetricsSnapshot::capture();
        assert_eq!(snap.counter("test.lib.disabled"), 0);
    }

    #[test]
    fn enabled_probes_record() {
        let _g = exclusive();
        set_enabled(true);
        counter_add!("test.lib.enabled", 2);
        counter_add!("test.lib.enabled", 3);
        gauge_set!("test.lib.gauge", 1.5);
        histogram_record!("test.lib.hist", 17);
        let snap = MetricsSnapshot::capture();
        set_enabled(false);
        assert_eq!(snap.counter("test.lib.enabled"), 5);
        assert_eq!(snap.gauges.get("test.lib.gauge"), Some(&1.5));
        let h = snap.histograms.get("test.lib.hist").expect("histogram");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 17);
    }

    #[test]
    fn disabled_probe_is_cheap() {
        let _g = exclusive();
        set_enabled(false);
        // Not a benchmark — just a guard that the disabled path stays a
        // flag check, far from any lock or map lookup. Very generous bound
        // so slow CI machines never flake.
        let n = 1_000_000u64;
        let start = std::time::Instant::now();
        for i in 0..n {
            counter_add!("test.lib.cheap", i & 1);
        }
        let per_probe = start.elapsed().as_nanos() / n as u128;
        assert!(per_probe < 1_000, "disabled probe took {per_probe}ns");
    }
}
