//! Prometheus text exposition (format 0.0.4) for a [`MetricsSnapshot`].
//!
//! MIDAS metric names use dots (`vf2.searches`, `batch.fct`); Prometheus
//! names must match `[a-zA-Z_:][a-zA-Z0-9_:]*`, so [`sanitize_name`] maps
//! every disallowed character to `_`. Label values may contain anything,
//! but `\`, `"` and newlines must be escaped ([`escape_label_value`]) —
//! an unescaped quote would silently truncate the label and corrupt every
//! later sample on the scrape, so the exporter escapes rather than trusts.
//!
//! Rendering rules:
//!
//! * counters → `midas_<name>` with `# TYPE ... counter`;
//! * gauges → `midas_<name>` with `# TYPE ... gauge` (non-finite values
//!   render as `0`, mirroring the JSON exporter);
//! * histograms and span durations → summary-style families: the quantile
//!   series `midas_<name>{quantile="0.5|0.9|0.99"}` plus `_sum`, `_count`
//!   and `_max`;
//! * sliding windows → the same family shape under `midas_<name>_window`,
//!   so dashboards can plot recent percentiles next to lifetime ones.

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};
use std::fmt::Write as _;

/// Prefix every exported family shares.
const PREFIX: &str = "midas_";

/// Maps an internal metric name onto the Prometheus name charset: ASCII
/// letters, digits, `_` and `:` pass through, everything else (dots, `-`,
/// quotes, newlines, unicode) becomes `_`. A leading digit gains a `_`
/// prefix. The result always matches `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value for the text exposition format: `\` → `\\`,
/// `"` → `\"`, newline → `\n` (tabs and other control characters pass
/// through — the format only reserves those three).
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a finite `f64` sample value (`NaN`/`±inf` → `0`, matching
/// [`crate::json::number`]).
fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

/// Builds a *labeled* registry metric name: `base{key="value",...}` with
/// keys sanitized and values escaped.
///
/// The [`crate::registry`] is name-keyed and has no label dimension, so
/// multi-tenant series (one counter per tenant) register under names
/// carrying an embedded label block; the renderer ([`family_of`]) splits
/// it back apart so the exposition carries real Prometheus labels —
/// `midas_serve_reads{tenant="acme"}` — instead of a mangled flat name.
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    let pairs = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), escape_label_value(v)))
        .collect::<Vec<_>>()
        .join(",");
    format!("{base}{{{pairs}}}")
}

/// Splits a registry name into its sanitized family and the literal label
/// block (without braces), undoing [`labeled`]. Names without an embedded
/// block sanitize whole, as before.
fn family_of(name: &str) -> (String, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => (sanitize_name(base), rest.strip_suffix('}').or(Some(rest))),
        None => (sanitize_name(name), None),
    }
}

/// Pushes one sample line: `family{labels} value` (labels optional).
fn push_sample(out: &mut String, family: &str, labels: Option<&str>, value: &str) {
    match labels {
        Some(l) => {
            let _ = writeln!(out, "{family}{{{l}}} {value}");
        }
        None => {
            let _ = writeln!(out, "{family} {value}");
        }
    }
}

/// Emits the `# TYPE` comment once per (family, kind) — labeled series
/// share a family, and Prometheus rejects duplicate TYPE lines.
fn push_type(
    out: &mut String,
    typed: &mut std::collections::HashSet<String>,
    family: &str,
    kind: &str,
) {
    if typed.insert(format!("{family} {kind}")) {
        let _ = writeln!(out, "# TYPE {family} {kind}");
    }
}

/// Renders one summary-style family (quantiles + `_sum`/`_count`/`_max`),
/// merging any embedded label block into every series.
///
/// A family with zero samples (possible for sliding windows whose samples
/// all aged out) emits *no* quantile series — a quantile of an empty sample
/// set is undefined (`NaN` in Prometheus semantics, which its text parser
/// rejects for summaries), so only `_sum`/`_count`/`_max` are kept.
fn push_summary(
    out: &mut String,
    typed: &mut std::collections::HashSet<String>,
    family: &str,
    labels: Option<&str>,
    h: &HistogramSnapshot,
) {
    push_type(out, typed, family, "summary");
    if h.count > 0 {
        for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
            let quantile = format!("quantile=\"{}\"", escape_label_value(label));
            let merged = match labels {
                Some(l) => format!("{l},{quantile}"),
                None => quantile,
            };
            let _ = writeln!(out, "{family}{{{merged}}} {}", h.quantile(q));
        }
    }
    push_sample(out, &format!("{family}_sum"), labels, &h.sum.to_string());
    push_sample(
        out,
        &format!("{family}_count"),
        labels,
        &h.count.to_string(),
    );
    push_type(out, typed, &format!("{family}_max"), "gauge");
    push_sample(out, &format!("{family}_max"), labels, &h.max.to_string());
}

/// Renders the whole snapshot as one Prometheus scrape body (pure over
/// `snap`; see [`render_live`] for the full scrape with alert gauges and
/// exemplar hints from process-global state).
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut typed = std::collections::HashSet::new();
    for (name, v) in &snap.counters {
        let (fam, labels) = family_of(name);
        let family = format!("{PREFIX}{fam}");
        push_type(&mut out, &mut typed, &family, "counter");
        push_sample(&mut out, &family, labels, &v.to_string());
    }
    for (name, v) in &snap.gauges {
        let (fam, labels) = family_of(name);
        let family = format!("{PREFIX}{fam}");
        push_type(&mut out, &mut typed, &family, "gauge");
        push_sample(&mut out, &family, labels, &number(*v));
    }
    for (name, h) in &snap.histograms {
        let (fam, labels) = family_of(name);
        let family = format!("{PREFIX}{fam}");
        push_summary(&mut out, &mut typed, &family, labels, h);
    }
    for (name, s) in &snap.spans {
        let (fam, labels) = family_of(name);
        let family = format!("{PREFIX}span_{fam}_duration_us");
        push_summary(&mut out, &mut typed, &family, labels, &s.durations);
    }
    for (name, w) in &snap.windows {
        let (fam, labels) = family_of(name);
        let family = format!("{PREFIX}{fam}_window");
        push_summary(&mut out, &mut typed, &family, labels, w);
    }
    out
}

/// [`render`] plus the live sections that are not part of the snapshot:
/// one `midas_alert_firing{alert="..."}` gauge per evaluated burn-rate
/// alert and OpenMetrics-style `# exemplar` hint comments attributing each
/// family's slowest observations (see [`crate::exemplar`]). This is what
/// `GET /metrics` serves.
pub fn render_live(snap: &MetricsSnapshot) -> String {
    let mut out = render(snap);
    let evals = crate::alerts::evaluate();
    if !evals.is_empty() {
        let _ = writeln!(out, "# TYPE {PREFIX}alert_firing gauge");
        for a in &evals {
            let _ = writeln!(
                out,
                "{PREFIX}alert_firing{{alert=\"{}\"}} {}",
                escape_label_value(a.name),
                u8::from(a.state == crate::alerts::AlertState::Firing)
            );
        }
    }
    crate::exemplar::for_each_series(|name, series| {
        let family = format!("{PREFIX}{}", sanitize_name(name));
        for ex in series.top() {
            let pattern = ex
                .pattern()
                .map_or_else(|| "-".to_owned(), |p| p.to_string());
            let graph = ex.graph().map_or_else(|| "-".to_owned(), |g| g.to_string());
            let _ = writeln!(
                out,
                "# exemplar {family} value={} unit={} pattern={pattern} graph={graph} seq={}",
                ex.value,
                series.unit(),
                ex.seq
            );
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::registry;
    use crate::snapshot::SpanStatSnapshot;

    /// Every name must match the exposition-format identifier rule.
    fn is_valid_name(name: &str) -> bool {
        let mut chars = name.chars();
        let first_ok = chars
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
        first_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    #[test]
    fn sanitize_maps_dots_and_rejects_bad_chars() {
        assert_eq!(sanitize_name("vf2.searches"), "vf2_searches");
        assert_eq!(sanitize_name("batch.swap.scan"), "batch_swap_scan");
        assert_eq!(sanitize_name("a\"b\nc\\d"), "a_b_c_d");
        assert_eq!(sanitize_name("7zip"), "_7zip");
        assert_eq!(sanitize_name(""), "_");
        assert_eq!(sanitize_name("héllo"), "h_llo");
        for raw in ["vf2.searches", "a\"b", "\n\n", "99luft", "x-y"] {
            assert!(is_valid_name(&sanitize_name(raw)), "{raw:?}");
        }
    }

    #[test]
    fn label_values_escape_the_three_reserved_chars() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
    }

    /// Sanitization covers every metric name currently registered in this
    /// process — whatever instrumentation has run so far, each one must
    /// export as a valid family name.
    #[test]
    fn every_registered_metric_sanitizes_to_a_valid_family() {
        let _g = crate::tests::exclusive();
        crate::set_enabled(true);
        // Touch representative probes (dots, multi-segment) plus a
        // deliberately hostile name.
        crate::counter_add!("test.prom.a.b", 1);
        crate::gauge_set!("test.prom.gauge", 0.5);
        crate::histogram_record!("test.prom.hist", 3);
        registry().counter("test.prom.\"quoted\"\nname\\x").add(1);
        crate::set_enabled(false);
        let mut names: Vec<String> = Vec::new();
        registry().for_each_counter(|n, _| names.push(n.to_owned()));
        registry().for_each_gauge(|n, _| names.push(n.to_owned()));
        registry().for_each_histogram(|n, _| names.push(n.to_owned()));
        registry().for_each_span(|n, _| names.push(n.to_owned()));
        assert!(!names.is_empty());
        for name in names {
            let s = sanitize_name(&name);
            assert!(is_valid_name(&s), "{name:?} sanitized to invalid {s:?}");
        }
    }

    #[test]
    fn empty_histograms_emit_no_quantile_series() {
        // Regression: a windowed-out (empty) family used to emit quantile
        // samples for a sample set that does not exist; the undefined
        // quantile of an empty summary must be *omitted*, never rendered
        // (a `NaN` value would make Prometheus reject the whole scrape).
        let mut snap = MetricsSnapshot::default();
        snap.windows
            .insert("batch.swap".into(), HistogramSnapshot::default());
        snap.histograms.insert(
            "vf2.nodes_per_search".into(),
            HistogramSnapshot {
                count: 1,
                sum: 15,
                max: 15,
                buckets: vec![(15, 1)],
            },
        );
        let doc = render(&snap);
        assert!(!doc.contains("midas_batch_swap_window{quantile"), "{doc}");
        assert!(doc.contains("midas_batch_swap_window_count 0"));
        assert!(doc.contains("midas_batch_swap_window_sum 0"));
        // Non-empty families keep their quantiles.
        assert!(doc.contains("midas_vf2_nodes_per_search{quantile=\"0.5\"}"));
        assert!(!doc.contains("NaN"), "no NaN token anywhere: {doc}");
    }

    #[test]
    fn render_live_appends_alert_gauges_and_exemplar_hints() {
        let _g = crate::tests::exclusive();
        crate::alerts::configure(crate::alerts::SloConfig {
            vf2_budget_ns: 1_000,
            ..crate::alerts::SloConfig::default()
        });
        let s = crate::exemplar::series("vf2.search_ns", "ns");
        s.reset();
        {
            let _c = crate::exemplar::with_context(99, 3);
            s.offer(50_000);
        }
        let doc = render_live(&MetricsSnapshot::default());
        assert!(doc.contains("# TYPE midas_alert_firing gauge"), "{doc}");
        assert!(doc.contains("midas_alert_firing{alert=\"vf2.search_ns\"} 0"));
        assert!(
            doc.contains("# exemplar midas_vf2_search_ns value=50000 unit=ns pattern=99 graph=3"),
            "{doc}"
        );
        s.reset();
        crate::alerts::configure(crate::alerts::SloConfig::default());
    }

    #[test]
    fn labeled_builds_and_render_splits_label_blocks() {
        assert_eq!(
            labeled("serve.reads", &[("tenant", "acme")]),
            "serve.reads{tenant=\"acme\"}"
        );
        assert_eq!(
            labeled("serve.reads", &[("tenant", "a\"b")]),
            "serve.reads{tenant=\"a\\\"b\"}"
        );
        let mut snap = MetricsSnapshot::default();
        snap.counters
            .insert(labeled("serve.reads", &[("tenant", "acme")]), 7);
        snap.counters
            .insert(labeled("serve.reads", &[("tenant", "globex")]), 3);
        snap.gauges
            .insert(labeled("serve.epoch", &[("tenant", "acme")]), 4.0);
        snap.histograms.insert(
            labeled("serve.read_ns", &[("tenant", "acme")]),
            HistogramSnapshot {
                count: 1,
                sum: 10,
                max: 10,
                buckets: vec![(15, 1)],
            },
        );
        let doc = render(&snap);
        assert!(
            doc.contains("midas_serve_reads{tenant=\"acme\"} 7"),
            "{doc}"
        );
        assert!(
            doc.contains("midas_serve_reads{tenant=\"globex\"} 3"),
            "{doc}"
        );
        assert!(
            doc.contains("midas_serve_epoch{tenant=\"acme\"} 4"),
            "{doc}"
        );
        assert!(
            doc.contains("midas_serve_read_ns{tenant=\"acme\",quantile=\"0.5\"}"),
            "{doc}"
        );
        assert!(
            doc.contains("midas_serve_read_ns_sum{tenant=\"acme\"} 10"),
            "{doc}"
        );
        // One TYPE line per family, however many tenants share it.
        assert_eq!(
            doc.matches("# TYPE midas_serve_reads counter").count(),
            1,
            "{doc}"
        );
    }

    #[test]
    fn render_produces_wellformed_exposition_lines() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("vf2.searches".into(), 7);
        snap.gauges.insert("monitor.drift".into(), f64::NAN);
        snap.histograms.insert(
            "vf2.nodes_per_search".into(),
            HistogramSnapshot {
                count: 2,
                sum: 20,
                max: 15,
                buckets: vec![(15, 2)],
            },
        );
        snap.spans.insert(
            "batch.fct".into(),
            SpanStatSnapshot {
                count: 1,
                total_us: 42,
                max_us: 42,
                durations: HistogramSnapshot {
                    count: 1,
                    sum: 42,
                    max: 42,
                    buckets: vec![(63, 1)],
                },
            },
        );
        snap.windows.insert(
            "vf2.nodes_per_search".into(),
            HistogramSnapshot {
                count: 1,
                sum: 15,
                max: 15,
                buckets: vec![(15, 1)],
            },
        );
        let doc = render(&snap);
        assert!(doc.contains("# TYPE midas_vf2_searches counter"));
        assert!(doc.contains("midas_vf2_searches 7"));
        assert!(doc.contains("midas_monitor_drift 0"), "NaN renders as 0");
        assert!(doc.contains("midas_vf2_nodes_per_search{quantile=\"0.99\"}"));
        assert!(doc.contains("midas_span_batch_fct_duration_us{quantile=\"0.5\"} 42"));
        assert!(doc.contains("midas_vf2_nodes_per_search_window{quantile=\"0.9\"}"));
        // Every non-comment line is `name[{labels}] value`.
        for line in doc.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "only TYPE comments: {line}");
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            let name = series.split('{').next().unwrap();
            assert!(is_valid_name(name), "bad family in {line:?}");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }
}
