//! SLO budgets and multi-window burn-rate alerts.
//!
//! An SLO here is "at most `allowed_ppm` of observations may exceed the
//! latency budget". The burn rate of a window is how fast that error
//! budget is being spent:
//!
//! ```text
//! burn(window) = (violating / total) / (allowed_ppm / 1e6)
//! ```
//!
//! so `burn == 1` consumes the budget exactly at the allowed rate and
//! `burn == 10` spends it ten times too fast. Following the standard
//! multi-window recipe, every alert is evaluated over two windows carved
//! from the histograms' CAS-rotated slot ring ([`crate::registry`]):
//!
//! * **fast** — the last [`FAST_SLOTS`] slots (1 minute): reacts quickly,
//!   and its *recovery* is just as fast — when the slowness stops, the
//!   fast window drains within a minute and the alert clears;
//! * **slow** — the last [`SLOW_SLOTS`] slots (15 minutes): confirms the
//!   problem is sustained, so a single slow batch never pages.
//!
//! An alert is **firing** when *both* windows burn at or above the
//! threshold, **pending** when only the fast window does, and **ok**
//! otherwise. An *empty* fast window never fires (nothing is burning if
//! nothing is happening) — the rotation tests pin that.
//!
//! Violations are counted from the log₂ buckets conservatively: a bucket
//! counts as violating only when its *lower* bound already exceeds the
//! budget, so a budget falling mid-bucket under-counts rather than
//! over-counts (alerts should not fire on rounding).
//!
//! Budgets default to 0 (= alerting disabled); they are configured via
//! [`crate::TelemetryConfig`] / the `MIDAS_SLO_*` environment variables.

use crate::registry::{registry, Histogram, WindowAggregate};
use std::sync::{Mutex, OnceLock};

/// Fast-window width in ring slots (4 × 15 s = 1 minute).
pub const FAST_SLOTS: u64 = 4;

/// Slow-window width in ring slots (60 × 15 s = 15 minutes).
pub const SLOW_SLOTS: u64 = 60;

/// The Algorithm-1 phase spans monitored against the phase budget.
pub const MONITORED_PHASES: &[&str] = &[
    "batch.ingest",
    "batch.fct",
    "batch.cluster",
    "batch.index",
    "batch.classify",
    "batch.candidates",
    "batch.swap",
];

/// SLO budgets. All-integer so [`crate::TelemetryConfig`] stays
/// `Copy + Eq`; fractions are parts-per-million and thresholds ×1000.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloConfig {
    /// Latency budget for each Algorithm-1 phase span, µs
    /// (0 = phase alerting disabled).
    pub phase_budget_us: u64,
    /// Latency budget for a single VF2 search, ns (0 = disabled).
    pub vf2_budget_ns: u64,
    /// Error budget: the fraction of observations allowed over budget,
    /// parts-per-million (default 10 000 = 1 %).
    pub allowed_ppm: u32,
    /// Burn-rate threshold ×1000 (default 2 000 = alert at 2× budget
    /// spend).
    pub burn_milli: u32,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            phase_budget_us: 0,
            vf2_budget_ns: 0,
            allowed_ppm: 10_000,
            burn_milli: 2_000,
        }
    }
}

impl SloConfig {
    /// Whether any budget is set.
    pub fn any_enabled(&self) -> bool {
        self.phase_budget_us > 0 || self.vf2_budget_ns > 0
    }
}

fn current_config() -> &'static Mutex<SloConfig> {
    static CONFIG: OnceLock<Mutex<SloConfig>> = OnceLock::new();
    CONFIG.get_or_init(|| Mutex::new(SloConfig::default()))
}

/// Installs `cfg` as the process-wide SLO configuration (called by
/// [`crate::TelemetryConfig::activate`]).
pub fn configure(cfg: SloConfig) {
    *current_config().lock().unwrap_or_else(|e| e.into_inner()) = cfg;
}

/// The process-wide SLO configuration.
pub fn config() -> SloConfig {
    *current_config().lock().unwrap_or_else(|e| e.into_inner())
}

/// Alert state, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Within budget (or no recent traffic).
    Ok,
    /// The fast window is burning, the slow window not yet.
    Pending,
    /// Both windows are burning: sustained budget violation.
    Firing,
}

impl AlertState {
    /// Lowercase label used in JSON and logs.
    pub fn label(&self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
        }
    }
}

/// One evaluated alert.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEval {
    /// The monitored series (span or histogram name).
    pub name: &'static str,
    /// The latency budget, in the series' unit.
    pub budget: u64,
    /// The series' unit (`"us"` for spans, `"ns"` for `vf2.search_ns`).
    pub unit: &'static str,
    /// Current state.
    pub state: AlertState,
    /// Fast-window burn rate.
    pub fast_burn: f64,
    /// Slow-window burn rate.
    pub slow_burn: f64,
    /// Observations / violations in the fast window.
    pub fast: (u64, u64),
    /// Observations / violations in the slow window.
    pub slow: (u64, u64),
}

/// Lower bound of the log₂ bucket whose inclusive upper bound is `upper`.
fn bucket_lower(upper: u64) -> u64 {
    if upper == 0 {
        0
    } else {
        (upper >> 1) + 1
    }
}

/// `(observations, definite violations)` in a window aggregate.
fn violations(w: &WindowAggregate, budget: u64) -> (u64, u64) {
    let over = w
        .buckets
        .iter()
        .filter(|&&(upper, _)| bucket_lower(upper) > budget)
        .map(|&(_, n)| n)
        .sum();
    (w.count, over)
}

fn burn_rate(count: u64, over: u64, allowed_ppm: u32) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let fraction = over as f64 / count as f64;
    let allowed = f64::from(allowed_ppm.max(1)) / 1e6;
    fraction / allowed
}

fn evaluate_series(
    name: &'static str,
    unit: &'static str,
    h: &Histogram,
    budget: u64,
    cfg: &SloConfig,
    now: u64,
) -> AlertEval {
    let fast = violations(&h.windowed_recent_at(now, FAST_SLOTS), budget);
    let slow = violations(&h.windowed_recent_at(now, SLOW_SLOTS), budget);
    let fast_burn = burn_rate(fast.0, fast.1, cfg.allowed_ppm);
    let slow_burn = burn_rate(slow.0, slow.1, cfg.allowed_ppm);
    let threshold = f64::from(cfg.burn_milli) / 1000.0;
    // An empty fast window cannot fire: burn_rate(0, ..) is 0 above, so
    // both arms below are false and the alert reads Ok — recovery is
    // automatic once the fast window drains.
    let state = if fast_burn >= threshold && slow_burn >= threshold {
        AlertState::Firing
    } else if fast_burn >= threshold {
        AlertState::Pending
    } else {
        AlertState::Ok
    };
    AlertEval {
        name,
        budget,
        unit,
        state,
        fast_burn,
        slow_burn,
        fast,
        slow,
    }
}

/// Evaluates every configured alert against the live windows.
pub fn evaluate() -> Vec<AlertEval> {
    evaluate_at(crate::registry::current_tick())
}

/// [`evaluate`] at an explicit window tick, for deterministic tests.
pub fn evaluate_at(now: u64) -> Vec<AlertEval> {
    let cfg = config();
    let mut out = Vec::new();
    if cfg.phase_budget_us > 0 {
        for &phase in MONITORED_PHASES {
            let h = registry().span(phase).durations();
            out.push(evaluate_series(
                phase,
                "us",
                h,
                cfg.phase_budget_us,
                &cfg,
                now,
            ));
        }
    }
    if cfg.vf2_budget_ns > 0 {
        let h = registry().histogram("vf2.search_ns");
        out.push(evaluate_series(
            "vf2.search_ns",
            "ns",
            h,
            cfg.vf2_budget_ns,
            &cfg,
            now,
        ));
    }
    out
}

/// Names of the alerts currently firing.
pub fn firing() -> Vec<&'static str> {
    evaluate()
        .into_iter()
        .filter(|a| a.state == AlertState::Firing)
        .map(|a| a.name)
        .collect()
}

/// Bumps the `slo.phase_violations` counter when a completed phase blew
/// its budget — per-batch attribution next to the windowed alerting.
pub fn record_phase(name: &str, dur_us: u64) {
    let cfg = config();
    if cfg.phase_budget_us > 0 && dur_us > cfg.phase_budget_us {
        crate::counter_add!("slo.phase_violations", 1);
        crate::obs_warn!(
            "obs::alerts",
            "phase {name} took {dur_us}µs (budget {}µs)",
            cfg.phase_budget_us
        );
    }
}

/// The `/alerts` document.
pub fn render_json() -> String {
    let cfg = config();
    let evals = evaluate();
    let mut out = format!(
        "{{\n  \"config\": {{\"phase_budget_us\": {}, \"vf2_budget_ns\": {}, \"allowed_ppm\": {}, \"burn_milli\": {}}},\n  \"alerts\": [\n",
        cfg.phase_budget_us, cfg.vf2_budget_ns, cfg.allowed_ppm, cfg.burn_milli
    );
    for (i, a) in evals.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": {}, \"state\": {}, \"budget\": {}, \"unit\": {}, \"fast_burn\": {}, \"slow_burn\": {}, \"fast_count\": {}, \"fast_violations\": {}, \"slow_count\": {}, \"slow_violations\": {}}}{}\n",
            crate::json::quote(a.name),
            crate::json::quote(a.state.label()),
            a.budget,
            crate::json::quote(a.unit),
            crate::json::number(a.fast_burn),
            crate::json::number(a.slow_burn),
            a.fast.0,
            a.fast.1,
            a.slow.0,
            a.slow.1,
            if i + 1 < evals.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::exclusive;

    fn restore() {
        configure(SloConfig::default());
    }

    #[test]
    fn default_config_evaluates_no_alerts() {
        let _g = exclusive();
        restore();
        assert!(!config().any_enabled());
        assert!(evaluate().is_empty());
        assert!(firing().is_empty());
    }

    #[test]
    fn firing_needs_both_windows_burning() {
        let _g = exclusive();
        configure(SloConfig {
            phase_budget_us: 100,
            ..SloConfig::default()
        });
        let h = registry().span("batch.index").durations();
        h.reset();
        // Sustained violations early in the slow window only: ticks 0..=39
        // (now = 55, so they are inside the 60-slot slow window but far
        // outside the 4-slot fast window).
        for tick in 0..40u64 {
            h.record_windowed_at(100_000, tick);
        }
        let now = 55u64;
        let eval = evaluate_at(now)
            .into_iter()
            .find(|a| a.name == "batch.index")
            .expect("monitored");
        assert_eq!(eval.fast, (0, 0), "fast window is empty");
        assert!(eval.slow_burn > 2.0, "slow window is burning");
        assert_eq!(
            eval.state,
            AlertState::Ok,
            "an empty fast window never fires"
        );

        // Fresh violations inside the fast window escalate to firing
        // (slow window still burning since it contains the same samples).
        for tick in 52..=55u64 {
            h.record_windowed_at(100_000, tick);
        }
        let eval = evaluate_at(now)
            .into_iter()
            .find(|a| a.name == "batch.index")
            .expect("monitored");
        assert!(eval.fast.1 > 0);
        assert_eq!(eval.state, AlertState::Firing);
        h.reset();
        restore();
    }

    #[test]
    fn pending_when_only_fast_burns() {
        let _g = exclusive();
        configure(SloConfig {
            phase_budget_us: 100,
            ..SloConfig::default()
        });
        let h = registry().span("batch.fct").durations();
        h.reset();
        let now = 200u64;
        // Plenty of healthy traffic across the slow window, plus a fast
        // spike: fast burns, slow does not.
        for tick in (now - 50)..(now - FAST_SLOTS) {
            for _ in 0..20 {
                h.record_windowed_at(10, tick);
            }
        }
        for _ in 0..10 {
            h.record_windowed_at(100_000, now);
        }
        let eval = evaluate_at(now)
            .into_iter()
            .find(|a| a.name == "batch.fct")
            .expect("monitored");
        assert_eq!(eval.state, AlertState::Pending, "{eval:?}");
        h.reset();
        restore();
    }

    #[test]
    fn violations_are_counted_conservatively() {
        // Budget 100 falls inside the (64, 127] bucket: that bucket's
        // samples may or may not violate, so they must NOT count.
        let w = WindowAggregate {
            count: 10,
            sum: 0,
            max: 5000,
            buckets: vec![(127, 6), (255, 3), (4095, 1)],
        };
        assert_eq!(violations(&w, 100), (10, 4));
        // Budget exactly on a bucket upper bound: the next bucket violates.
        assert_eq!(violations(&w, 127), (10, 4));
        assert_eq!(violations(&w, 255), (10, 1));
    }

    #[test]
    fn render_json_is_valid() {
        let _g = exclusive();
        configure(SloConfig {
            phase_budget_us: 1_000,
            vf2_budget_ns: 1_000_000,
            ..SloConfig::default()
        });
        let doc = render_json();
        crate::json::validate(&doc).expect("alerts JSON validates");
        assert!(doc.contains("\"batch.index\""));
        assert!(doc.contains("\"vf2.search_ns\""));
        assert!(doc.contains("\"state\""));
        restore();
    }

    #[test]
    fn record_phase_counts_violations() {
        let _g = exclusive();
        crate::set_enabled(true);
        configure(SloConfig {
            phase_budget_us: 50,
            ..SloConfig::default()
        });
        let c = registry().counter("slo.phase_violations");
        let before = c.get();
        record_phase("batch.index", 40); // within budget
        record_phase("batch.index", 60); // over
        crate::set_enabled(false);
        assert_eq!(c.get(), before + 1);
        restore();
    }
}
