//! Leveled structured logging, replacing ad-hoc `println!`/`eprintln!`
//! diagnostics in library crates.
//!
//! Lines go to **stderr** as `[midas LEVEL target] message`, so binary
//! stdout (experiment tables, JSON reports) stays machine-readable. The
//! level defaults to [`LogLevel::Warn`] and is overridden by the
//! `MIDAS_LOG` environment variable (`off|error|warn|info|debug|trace`,
//! case-insensitive) read once on first use, or programmatically by
//! [`set_log_level`].
//!
//! The macros evaluate their format arguments only when the level is
//! enabled, so a `obs_debug!` in a maintenance loop costs one relaxed
//! atomic load when the level is `warn`.

use std::sync::atomic::{AtomicU8, Ordering};

/// Log verbosity levels, ordered: each level includes the ones before it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LogLevel {
    /// No log output at all.
    Off = 0,
    /// Unrecoverable or corrupting conditions.
    Error = 1,
    /// Suspicious conditions the pipeline works around (the default).
    Warn = 2,
    /// Batch-level lifecycle events (classification, swap outcomes).
    Info = 3,
    /// Phase-level detail (per-scan, per-cluster decisions).
    Debug = 4,
    /// Everything, including per-item detail.
    Trace = 5,
}

impl LogLevel {
    /// Parses a `MIDAS_LOG` value. Unknown strings return `None`.
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(LogLevel::Off),
            "error" | "1" => Some(LogLevel::Error),
            "warn" | "warning" | "2" => Some(LogLevel::Warn),
            "info" | "3" => Some(LogLevel::Info),
            "debug" | "4" => Some(LogLevel::Debug),
            "trace" | "5" => Some(LogLevel::Trace),
            _ => None,
        }
    }

    /// Fixed-width display name.
    pub fn name(self) -> &'static str {
        match self {
            LogLevel::Off => "OFF",
            LogLevel::Error => "ERROR",
            LogLevel::Warn => "WARN",
            LogLevel::Info => "INFO",
            LogLevel::Debug => "DEBUG",
            LogLevel::Trace => "TRACE",
        }
    }

    fn from_u8(v: u8) -> LogLevel {
        match v {
            0 => LogLevel::Off,
            1 => LogLevel::Error,
            2 => LogLevel::Warn,
            3 => LogLevel::Info,
            4 => LogLevel::Debug,
            _ => LogLevel::Trace,
        }
    }
}

/// Sentinel meaning "not yet initialized from the environment".
const UNINIT: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

/// The active log level (reads `MIDAS_LOG` on first call).
pub fn log_level() -> LogLevel {
    let v = LEVEL.load(Ordering::Relaxed);
    if v != UNINIT {
        return LogLevel::from_u8(v);
    }
    let level = std::env::var("MIDAS_LOG")
        .ok()
        .and_then(|s| LogLevel::parse(&s))
        .unwrap_or(LogLevel::Warn);
    LEVEL.store(level as u8, Ordering::Relaxed);
    level
}

/// Overrides the log level (wins over `MIDAS_LOG`).
pub fn set_log_level(level: LogLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether `level` would currently be emitted.
#[inline]
pub fn log_enabled(level: LogLevel) -> bool {
    level <= log_level()
}

/// Emits one formatted line to stderr (and into the flight recorder's
/// event ring, so `GET /flight` shows recent log context). Prefer the
/// level macros.
pub fn emit(level: LogLevel, target: &str, args: std::fmt::Arguments<'_>) {
    eprintln!("[midas {:5} {target}] {args}", level.name());
    crate::flight::record_event(level.name(), format!("[{target}] {args}"));
}

/// Logs at an explicit level: `obs_log!(LogLevel::Info, "core::framework",
/// "drift {:.4}", d)`.
#[macro_export]
macro_rules! obs_log {
    ($level:expr, $target:expr, $($arg:tt)+) => {
        if $crate::log::log_enabled($level) {
            $crate::log::emit($level, $target, format_args!($($arg)+));
        }
    };
}

/// Logs at [`LogLevel::Error`].
#[macro_export]
macro_rules! obs_error {
    ($target:expr, $($arg:tt)+) => {
        $crate::obs_log!($crate::LogLevel::Error, $target, $($arg)+)
    };
}

/// Logs at [`LogLevel::Warn`].
#[macro_export]
macro_rules! obs_warn {
    ($target:expr, $($arg:tt)+) => {
        $crate::obs_log!($crate::LogLevel::Warn, $target, $($arg)+)
    };
}

/// Logs at [`LogLevel::Info`].
#[macro_export]
macro_rules! obs_info {
    ($target:expr, $($arg:tt)+) => {
        $crate::obs_log!($crate::LogLevel::Info, $target, $($arg)+)
    };
}

/// Logs at [`LogLevel::Debug`].
#[macro_export]
macro_rules! obs_debug {
    ($target:expr, $($arg:tt)+) => {
        $crate::obs_log!($crate::LogLevel::Debug, $target, $($arg)+)
    };
}

/// Logs at [`LogLevel::Trace`].
#[macro_export]
macro_rules! obs_trace {
    ($target:expr, $($arg:tt)+) => {
        $crate::obs_log!($crate::LogLevel::Trace, $target, $($arg)+)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_spellings() {
        assert_eq!(LogLevel::parse("off"), Some(LogLevel::Off));
        assert_eq!(LogLevel::parse("ERROR"), Some(LogLevel::Error));
        assert_eq!(LogLevel::parse(" warn "), Some(LogLevel::Warn));
        assert_eq!(LogLevel::parse("Info"), Some(LogLevel::Info));
        assert_eq!(LogLevel::parse("debug"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("5"), Some(LogLevel::Trace));
        assert_eq!(LogLevel::parse("verbose"), None);
    }

    #[test]
    fn levels_order_and_gate() {
        set_log_level(LogLevel::Info);
        assert!(log_enabled(LogLevel::Error));
        assert!(log_enabled(LogLevel::Info));
        assert!(!log_enabled(LogLevel::Debug));
        set_log_level(LogLevel::Off);
        assert!(!log_enabled(LogLevel::Error));
        set_log_level(LogLevel::Warn); // restore the default for other tests
    }

    #[test]
    fn macros_do_not_evaluate_args_when_gated() {
        set_log_level(LogLevel::Warn);
        let mut evaluated = false;
        obs_debug!("obs::test", "{}", {
            evaluated = true;
            "x"
        });
        assert!(!evaluated, "gated log must skip its format arguments");
        set_log_level(LogLevel::Warn);
    }
}
