//! RAII span timers with a per-thread span stack.
//!
//! A [`Span`] measures one named region of work. On `enter` (when metrics
//! are enabled) it pushes its name onto the calling thread's span stack; on
//! drop it pops, records the duration into the registry's span statistic of
//! the same name, and — when tracing is on — appends a Chrome-trace
//! complete event. Nesting therefore comes for free: a `batch.swap.scan`
//! span opened while `batch.swap` is live renders inside it both in the
//! snapshot (two named statistics) and in the trace (time containment on
//! the same `tid`).

use crate::registry::registry;
use crate::trace;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The names of the spans currently open on this thread, outermost first.
/// Mostly useful for debugging instrumentation; empty when telemetry is
/// disabled.
pub fn current_stack() -> Vec<&'static str> {
    SPAN_STACK.with(|s| s.borrow().clone())
}

/// Depth of the calling thread's span stack.
pub fn current_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

/// An RAII guard timing one named region. Construct via
/// [`crate::span!`] or [`Span::enter`]; inert (zero work on drop) when
/// metrics were disabled at entry.
#[derive(Debug)]
#[must_use = "a span measures until dropped; binding it to `_` drops it immediately"]
pub struct Span {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    name: &'static str,
    start: Instant,
}

impl Span {
    /// Opens a span named `name`. When metrics are disabled this is one
    /// relaxed atomic load and the guard does nothing on drop.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        if !crate::enabled() {
            return Span { active: None };
        }
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
        Span {
            active: Some(ActiveSpan {
                name,
                start: Instant::now(),
            }),
        }
    }

    /// The span's name, if it is live.
    pub fn name(&self) -> Option<&'static str> {
        self.active.as_ref().map(|a| a.name)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur = active.start.elapsed();
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop our own frame. Overlapping (non-nested) guard lifetimes
            // cannot corrupt other frames: we remove the deepest matching
            // occurrence of our name only.
            if let Some(pos) = stack.iter().rposition(|&n| n == active.name) {
                stack.remove(pos);
            }
        });
        registry().span(active.name).record(dur);
        if crate::tracing_enabled() {
            trace::push_complete_event(active.name, active.start, dur);
        }
        if crate::flight::span_capture_enabled() {
            crate::flight::record_event("SPAN", format!("{} {}µs", active.name, dur.as_micros()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::exclusive;
    use std::time::Duration;

    #[test]
    fn span_records_duration_and_nests() {
        let _g = exclusive();
        crate::set_enabled(true);
        registry().span("test.span.outer").record(Duration::ZERO); // register
        {
            let outer = Span::enter("test.span.outer");
            assert_eq!(outer.name(), Some("test.span.outer"));
            assert_eq!(current_stack(), vec!["test.span.outer"]);
            {
                let _inner = Span::enter("test.span.inner");
                assert_eq!(current_depth(), 2);
            }
            assert_eq!(current_depth(), 1);
        }
        crate::set_enabled(false);
        assert_eq!(current_depth(), 0);
        let (count, total, _) = registry().span("test.span.inner").totals();
        assert!(count >= 1);
        assert!(total >= Duration::ZERO);
    }

    #[test]
    fn disabled_span_is_inert() {
        let _g = exclusive();
        crate::set_enabled(false);
        let s = Span::enter("test.span.disabled");
        assert_eq!(s.name(), None);
        assert_eq!(current_depth(), 0);
        drop(s);
        let (count, _, _) = registry().span("test.span.disabled").totals();
        assert_eq!(count, 0);
    }

    #[test]
    fn out_of_order_drops_keep_stack_consistent() {
        let _g = exclusive();
        crate::set_enabled(true);
        let a = Span::enter("test.span.a");
        let b = Span::enter("test.span.b");
        drop(a); // dropped before b — not idiomatic, must not corrupt b
        assert_eq!(current_stack(), vec!["test.span.b"]);
        drop(b);
        crate::set_enabled(false);
        assert_eq!(current_depth(), 0);
    }
}
