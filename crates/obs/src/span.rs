//! RAII span timers with a per-thread span stack.
//!
//! A [`Span`] measures one named region of work. On `enter` (when metrics
//! are enabled) it pushes its name onto the calling thread's span stack; on
//! drop it pops, records the duration into the registry's span statistic of
//! the same name, and — when tracing is on — appends a Chrome-trace
//! complete event. Nesting therefore comes for free: a `batch.swap.scan`
//! span opened while `batch.swap` is live renders inside it both in the
//! snapshot (two named statistics) and in the trace (time containment on
//! the same `tid`).
//!
//! # Sharing with the sampling profiler
//!
//! Each thread's stack is an [`Arc<ThreadStack>`] held in a thread-local
//! and registered (as a `Weak`) in a global roster, so
//! [`crate::profile::sample_once`] can walk every live stack from the
//! sampler thread. The frames sit behind a `Mutex` rather than a
//! `RefCell` for exactly that cross-thread read; the lock is uncontended
//! in the common case (the owner pushes/pops, the sampler reads a few
//! dozen times a second) and is only ever touched when telemetry is
//! enabled — the disabled path stays one relaxed atomic load. A thread
//! that exits drops its `Arc`; the roster's `Weak` goes dead and is
//! pruned on the sampler's next pass.

use crate::registry::registry;
use crate::trace;
use std::cell::RefCell;
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Instant;

/// One thread's live span stack, readable from the sampler thread.
#[derive(Debug)]
pub(crate) struct ThreadStack {
    /// Dense thread index (also the Chrome-trace `tid`).
    pub(crate) tid: usize,
    frames: Mutex<Vec<&'static str>>,
}

impl ThreadStack {
    /// A point-in-time copy of the frames, outermost first.
    pub(crate) fn snapshot(&self) -> Vec<&'static str> {
        self.frames
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

fn roster() -> &'static Mutex<Vec<Weak<ThreadStack>>> {
    static ROSTER: OnceLock<Mutex<Vec<Weak<ThreadStack>>>> = OnceLock::new();
    ROSTER.get_or_init(|| Mutex::new(Vec::new()))
}

/// Every registered stack still owned by a live thread; dead entries are
/// pruned in passing. Called by the sampling profiler.
pub(crate) fn live_stacks() -> Vec<Arc<ThreadStack>> {
    let mut roster = roster().lock().unwrap_or_else(|e| e.into_inner());
    roster.retain(|w| w.strong_count() > 0);
    roster.iter().filter_map(Weak::upgrade).collect()
}

thread_local! {
    static STACK: RefCell<Option<Arc<ThreadStack>>> = const { RefCell::new(None) };
}

/// Runs `f` against this thread's stack, creating and registering it on
/// first use.
fn with_stack<R>(f: impl FnOnce(&ThreadStack) -> R) -> R {
    STACK.with(|cell| {
        let mut slot = cell.borrow_mut();
        let stack = slot.get_or_insert_with(|| {
            let stack = Arc::new(ThreadStack {
                tid: crate::registry::thread_index(),
                frames: Mutex::new(Vec::new()),
            });
            roster()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::downgrade(&stack));
            stack
        });
        f(stack)
    })
}

/// The names of the spans currently open on this thread, outermost first.
/// Mostly useful for debugging instrumentation; empty when telemetry is
/// disabled.
pub fn current_stack() -> Vec<&'static str> {
    STACK.with(|cell| {
        cell.borrow()
            .as_ref()
            .map(|s| s.snapshot())
            .unwrap_or_default()
    })
}

/// Depth of the calling thread's span stack.
pub fn current_depth() -> usize {
    current_stack().len()
}

/// An RAII guard timing one named region. Construct via
/// [`crate::span!`] or [`Span::enter`]; inert (zero work on drop) when
/// metrics were disabled at entry.
#[derive(Debug)]
#[must_use = "a span measures until dropped; binding it to `_` drops it immediately"]
pub struct Span {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    name: &'static str,
    start: Instant,
}

impl Span {
    /// Opens a span named `name`. When metrics are disabled this is one
    /// relaxed atomic load and the guard does nothing on drop.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        if !crate::enabled() {
            return Span { active: None };
        }
        with_stack(|s| {
            s.frames
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(name)
        });
        Span {
            active: Some(ActiveSpan {
                name,
                start: Instant::now(),
            }),
        }
    }

    /// The span's name, if it is live.
    pub fn name(&self) -> Option<&'static str> {
        self.active.as_ref().map(|a| a.name)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur = active.start.elapsed();
        with_stack(|s| {
            let mut stack = s.frames.lock().unwrap_or_else(|e| e.into_inner());
            // Pop our own frame. Overlapping (non-nested) guard lifetimes
            // cannot corrupt other frames: we remove the deepest matching
            // occurrence of our name only.
            if let Some(pos) = stack.iter().rposition(|&n| n == active.name) {
                stack.remove(pos);
            }
        });
        registry().span(active.name).record(dur);
        // Phase spans feed the tail-latency exemplar store, so `/slow` can
        // attribute slow batches, not just slow VF2 searches.
        if active.name.starts_with("batch.") {
            crate::exemplar::offer_named(active.name, "us", dur.as_micros() as u64);
        }
        if crate::tracing_enabled() {
            trace::push_complete_event(active.name, active.start, dur);
        }
        if crate::flight::span_capture_enabled() {
            crate::flight::record_event("SPAN", format!("{} {}µs", active.name, dur.as_micros()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::exclusive;
    use std::time::Duration;

    #[test]
    fn span_records_duration_and_nests() {
        let _g = exclusive();
        crate::set_enabled(true);
        registry().span("test.span.outer").record(Duration::ZERO); // register
        {
            let outer = Span::enter("test.span.outer");
            assert_eq!(outer.name(), Some("test.span.outer"));
            assert_eq!(current_stack(), vec!["test.span.outer"]);
            {
                let _inner = Span::enter("test.span.inner");
                assert_eq!(current_depth(), 2);
            }
            assert_eq!(current_depth(), 1);
        }
        crate::set_enabled(false);
        assert_eq!(current_depth(), 0);
        let (count, total, _) = registry().span("test.span.inner").totals();
        assert!(count >= 1);
        assert!(total >= Duration::ZERO);
    }

    #[test]
    fn disabled_span_is_inert() {
        let _g = exclusive();
        crate::set_enabled(false);
        let s = Span::enter("test.span.disabled");
        assert_eq!(s.name(), None);
        assert_eq!(current_depth(), 0);
        drop(s);
        let (count, _, _) = registry().span("test.span.disabled").totals();
        assert_eq!(count, 0);
    }

    #[test]
    fn out_of_order_drops_keep_stack_consistent() {
        let _g = exclusive();
        crate::set_enabled(true);
        let a = Span::enter("test.span.a");
        let b = Span::enter("test.span.b");
        drop(a); // dropped before b — not idiomatic, must not corrupt b
        assert_eq!(current_stack(), vec!["test.span.b"]);
        drop(b);
        crate::set_enabled(false);
        assert_eq!(current_depth(), 0);
    }

    #[test]
    fn stacks_are_visible_across_threads() {
        let _g = exclusive();
        crate::set_enabled(true);
        let (ready_tx, ready_rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let worker = std::thread::spawn(move || {
            let _outer = Span::enter("test.span.shared_outer");
            let _inner = Span::enter("test.span.shared_inner");
            ready_tx.send(()).unwrap();
            let _ = done_rx.recv(); // hold the spans open until observed
        });
        ready_rx.recv().unwrap();
        let stacks: Vec<Vec<&'static str>> = live_stacks().iter().map(|s| s.snapshot()).collect();
        assert!(
            stacks
                .iter()
                .any(|s| s == &vec!["test.span.shared_outer", "test.span.shared_inner"]),
            "worker stack visible from another thread: {stacks:?}"
        );
        done_tx.send(()).unwrap();
        worker.join().unwrap();
        crate::set_enabled(false);
    }
}
