//! Chrome-trace-format event collection and export.
//!
//! Completed spans append *complete events* (`"ph": "X"`) and the sampling
//! profiler ([`crate::profile`]) appends *sample events* (`"ph": "P"`) to
//! one global buffer; [`write_trace`] drains it into a single JSON file
//! loadable in `chrome://tracing` or <https://ui.perfetto.dev>, so the
//! span timeline and the profiler's sampled stacks render interleaved on
//! the same per-thread tracks. Timestamps are microseconds since the first
//! event of the process (the format wants a monotonic epoch, not wall
//! time), `tid` is the dense per-thread index of [`crate::registry`], and
//! `pid` is constant.
//!
//! The buffer is capped at [`MAX_EVENTS`]; beyond it events are counted
//! but dropped, and the drop count is reported by [`write_trace`] /
//! [`dropped_events`] so truncation is never silent.

use crate::json;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Hard cap on buffered events (~24 MB worst case). A batch emits a few
/// hundred; this bounds pathological loops.
pub const MAX_EVENTS: usize = 1 << 20;

/// What kind of Chrome-trace event a [`TraceEvent`] renders as.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A completed span: `"ph": "X"` with a real duration.
    Complete,
    /// A profiler sample: `"ph": "P"`, zero duration, the folded stack in
    /// `args.stack`.
    Sample {
        /// Collapsed stack at the sample instant, `outer;inner`.
        stack: String,
    },
}

/// One Chrome-trace event (a span completion or a profiler sample).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (for samples: the leaf frame).
    pub name: &'static str,
    /// Microseconds since process trace epoch.
    pub ts_us: u64,
    /// Duration in microseconds (0 for samples).
    pub dur_us: u64,
    /// Dense thread index.
    pub tid: usize,
    /// Complete event or profiler sample.
    pub kind: TraceKind,
}

static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static DROPPED: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn push(event: TraceEvent) {
    let mut events = EVENTS.lock().expect("trace buffer lock");
    if events.len() >= MAX_EVENTS {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    events.push(event);
}

/// Appends a complete event for a span that started at `start` and ran for
/// `dur`. Called from [`crate::span::Span::drop`] when tracing is on.
pub fn push_complete_event(name: &'static str, start: Instant, dur: Duration) {
    let ts_us = start
        .checked_duration_since(epoch())
        .unwrap_or(Duration::ZERO)
        .as_micros()
        .min(u64::MAX as u128) as u64;
    push(TraceEvent {
        name,
        ts_us,
        dur_us: dur.as_micros().min(u64::MAX as u128) as u64,
        tid: crate::registry::thread_index(),
        kind: TraceKind::Complete,
    });
}

/// Appends a profiler sample: `leaf` is the deepest live frame and `stack`
/// the full folded stack of the sampled thread `tid` (the *sampled*
/// thread's index, not the sampler's — the sample must land on the track
/// whose spans it describes). Called from [`crate::profile::sample_once`]
/// when tracing is on.
pub fn push_sample_event(leaf: &'static str, stack: String, tid: usize) {
    let ts_us = epoch().elapsed().as_micros().min(u64::MAX as u128) as u64;
    push(TraceEvent {
        name: leaf,
        ts_us,
        dur_us: 0,
        tid,
        kind: TraceKind::Sample { stack },
    });
}

/// Number of events buffered right now.
pub fn buffered_events() -> usize {
    EVENTS.lock().expect("trace buffer lock").len()
}

/// Number of events dropped at the cap since the last drain.
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Removes and returns every buffered event (oldest first).
pub fn take_events() -> Vec<TraceEvent> {
    DROPPED.store(0, Ordering::Relaxed);
    std::mem::take(&mut *EVENTS.lock().expect("trace buffer lock"))
}

/// Renders events as a Chrome trace JSON document.
pub fn render_trace(events: &[TraceEvent], dropped: u64) -> String {
    let mut out = String::from("{\n  \"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        let line = match &e.kind {
            TraceKind::Complete => format!(
                "    {{\"name\": {}, \"cat\": \"midas\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}}}",
                json::quote(e.name),
                e.ts_us,
                e.dur_us,
                e.tid,
            ),
            TraceKind::Sample { stack } => format!(
                "    {{\"name\": {}, \"cat\": \"midas.profile\", \"ph\": \"P\", \"ts\": {}, \"dur\": 0, \"pid\": 1, \"tid\": {}, \"args\": {{\"stack\": {}}}}}",
                json::quote(e.name),
                e.ts_us,
                e.tid,
                json::quote(stack),
            ),
        };
        out.push_str(&line);
        out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"droppedEvents\": {dropped},\n"));
    out.push_str("  \"displayTimeUnit\": \"ms\"\n}\n");
    out
}

/// Drains the buffer into `path` as Chrome trace JSON. Returns the number
/// of events written.
pub fn write_trace(path: impl AsRef<Path>) -> std::io::Result<usize> {
    let dropped = dropped_events();
    let events = take_events();
    let doc = render_trace(&events, dropped);
    let mut file = std::fs::File::create(path)?;
    file.write_all(doc.as_bytes())?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_as_valid_chrome_trace() {
        let events = vec![
            TraceEvent {
                name: "phase \"a\"",
                ts_us: 0,
                dur_us: 120,
                tid: 0,
                kind: TraceKind::Complete,
            },
            TraceEvent {
                name: "phase.b",
                ts_us: 10,
                dur_us: 50,
                tid: 1,
                kind: TraceKind::Complete,
            },
        ];
        let doc = render_trace(&events, 3);
        json::validate(&doc).expect("valid JSON");
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"ph\": \"X\""));
        assert!(doc.contains("\"droppedEvents\": 3"));
        assert!(doc.contains("phase \\\"a\\\""));
    }

    #[test]
    fn samples_interleave_with_complete_events() {
        let events = vec![
            TraceEvent {
                name: "batch.fct",
                ts_us: 0,
                dur_us: 120,
                tid: 0,
                kind: TraceKind::Complete,
            },
            TraceEvent {
                name: "batch.fct.count",
                ts_us: 40,
                dur_us: 0,
                tid: 0,
                kind: TraceKind::Sample {
                    stack: "batch.fct;batch.fct.count".to_owned(),
                },
            },
        ];
        let doc = render_trace(&events, 0);
        json::validate(&doc).expect("valid JSON");
        assert!(doc.contains("\"ph\": \"X\""));
        assert!(doc.contains("\"ph\": \"P\""));
        assert!(doc.contains("\"cat\": \"midas.profile\""));
        assert!(doc.contains("\"stack\": \"batch.fct;batch.fct.count\""));
    }

    #[test]
    fn push_sample_event_lands_on_the_sampled_tid() {
        // Drain whatever other tests left behind, then check round trip.
        take_events();
        push_sample_event("leaf.frame", "root;leaf.frame".to_owned(), 42);
        let events = take_events();
        let sample = events
            .iter()
            .find(|e| e.name == "leaf.frame")
            .expect("sample buffered");
        assert_eq!(sample.tid, 42);
        assert_eq!(sample.dur_us, 0);
        assert_eq!(
            sample.kind,
            TraceKind::Sample {
                stack: "root;leaf.frame".to_owned()
            }
        );
    }

    #[test]
    fn empty_trace_is_valid() {
        let doc = render_trace(&[], 0);
        json::validate(&doc).expect("valid JSON");
        assert!(doc.contains("\"traceEvents\": [\n  ]"));
    }
}
