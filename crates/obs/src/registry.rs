//! The global metrics registry: named counters, gauges, histograms and
//! span statistics backed by atomics.
//!
//! Metric handles are `&'static` — registered once (the maps leak their
//! values deliberately; the set of metric names is small and fixed by the
//! instrumentation sites) and then shared lock-free. The handle maps are
//! only locked on first registration and at snapshot time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};
use std::time::{Duration, Instant};

/// Number of counter shards. Power of two; sized so the worker threads of
/// `midas_graph::exec` rarely collide on one cache line.
const COUNTER_SHARDS: usize = 16;

/// Histogram bucket count: bucket `i` holds values whose bit length is `i`
/// (i.e. `v == 0` → bucket 0, else bucket `⌊log₂ v⌋ + 1`).
const HISTOGRAM_BUCKETS: usize = 64;

/// Sliding-window slots per histogram (ring of time slices). Sized so the
/// burn-rate alerts ([`crate::alerts`]) can carve both their fast (1 min)
/// and slow (15 min) windows out of one ring: 64 × 15 s ≈ 16 minutes.
pub const WINDOW_SLOTS: usize = 64;

/// Seconds each window slot covers. The live window therefore spans up to
/// `WINDOW_SLOTS × WINDOW_SLOT_SECS` seconds (and at least one slot less,
/// since the newest slot is still filling).
pub const WINDOW_SLOT_SECS: u64 = 15;

/// Slot tick sentinel: "this slot has never been written".
const TICK_EMPTY: u64 = u64::MAX;

fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// The current window tick (seconds since process start, in
/// [`WINDOW_SLOT_SECS`] units).
pub fn current_tick() -> u64 {
    process_epoch().elapsed().as_secs() / WINDOW_SLOT_SECS
}

/// One cache line per shard so concurrent `add`s from different threads do
/// not false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedAtomicU64(AtomicU64);

thread_local! {
    /// Dense per-thread index used to pick counter shards and trace tids.
    static THREAD_INDEX: usize = next_thread_index();
}

fn next_thread_index() -> usize {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed) as usize
}

/// The dense index of the calling thread (also the Chrome-trace `tid`).
pub(crate) fn thread_index() -> usize {
    THREAD_INDEX.with(|i| *i)
}

/// A monotonically increasing sum, sharded across cache lines.
#[derive(Debug)]
pub struct Counter {
    shards: [PaddedAtomicU64; COUNTER_SHARDS],
}

impl Counter {
    fn new() -> Self {
        Counter {
            shards: Default::default(),
        }
    }

    /// Adds `n` to the counter (relaxed; per-thread shard).
    #[inline]
    pub fn add(&self, n: u64) {
        let shard = thread_index() % COUNTER_SHARDS;
        self.shards[shard].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-write-wins `f64` value (stored as bits in one atomic).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.set(0.0);
    }
}

/// One set of log₂ buckets with exact count/sum/max — the storage shared
/// by a histogram's lifetime totals and each of its window slots.
#[derive(Debug)]
struct BucketSet {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl BucketSet {
    fn new() -> Self {
        BucketSet {
            buckets: [0u64; HISTOGRAM_BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn totals(&self) -> (u64, u64, u64) {
        (
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }

    fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                if n == 0 {
                    return None;
                }
                Some((bucket_upper(i), n))
            })
            .collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Index of the bucket `v` falls in: 0 for 0, else `⌊log₂ v⌋ + 1`.
/// Bucket `i > 0` therefore covers `[2^(i-1), 2^i)`.
fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

/// One time slice of a histogram's sliding window.
#[derive(Debug)]
struct WindowSlot {
    /// The tick this slot currently holds, or [`TICK_EMPTY`].
    tick: AtomicU64,
    set: BucketSet,
}

/// Aggregate of a histogram's live sliding window — what the last
/// ~`WINDOW_SLOTS × WINDOW_SLOT_SECS` seconds recorded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowAggregate {
    /// Samples recorded inside the window.
    pub count: u64,
    /// Sum of those samples.
    pub sum: u64,
    /// Largest sample inside the window.
    pub max: u64,
    /// Non-empty log₂ buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

/// A log₂-bucketed histogram of `u64` samples with exact count/sum/max
/// plus a sliding-window ring for recency-scoped quantiles.
///
/// The window is *lock-light and approximate*: slot rotation resets a slot
/// with a CAS on its tick, so a sample racing the reset at a slot boundary
/// may be dropped from (or double-counted in) the window — never from the
/// lifetime totals. Telemetry tolerates this; correctness code must not
/// read windows.
#[derive(Debug)]
pub struct Histogram {
    base: BucketSet,
    window: [WindowSlot; WINDOW_SLOTS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            base: BucketSet::new(),
            window: std::array::from_fn(|_| WindowSlot {
                tick: AtomicU64::new(TICK_EMPTY),
                set: BucketSet::new(),
            }),
        }
    }

    /// Records one sample into the lifetime totals and the current window
    /// slot.
    #[inline]
    pub fn record(&self, v: u64) {
        self.base.record(v);
        self.record_windowed_at(v, current_tick());
    }

    /// Records only into the window ring, at an explicit tick. Exposed so
    /// tests can drive slot rotation deterministically.
    pub fn record_windowed_at(&self, v: u64, tick: u64) {
        let slot = &self.window[(tick % WINDOW_SLOTS as u64) as usize];
        let seen = slot.tick.load(Ordering::Acquire);
        if seen != tick {
            // This slot holds a stale slice (≥ WINDOW_SLOTS ticks old);
            // whoever wins the CAS clears it for the new tick.
            if slot
                .tick
                .compare_exchange(seen, tick, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                slot.set.reset();
            }
        }
        slot.set.record(v);
    }

    /// `(count, sum, max)` over the histogram's lifetime.
    pub fn totals(&self) -> (u64, u64, u64) {
        self.base.totals()
    }

    /// Non-empty lifetime buckets as `(inclusive upper bound, count)`
    /// pairs, in ascending order.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.base.buckets()
    }

    /// Aggregate over the live sliding window.
    pub fn windowed(&self) -> WindowAggregate {
        self.windowed_at(current_tick())
    }

    /// Window aggregate as seen at an explicit tick (slots older than
    /// `WINDOW_SLOTS` ticks are excluded). Exposed for deterministic tests.
    pub fn windowed_at(&self, now: u64) -> WindowAggregate {
        self.windowed_recent_at(now, WINDOW_SLOTS as u64)
    }

    /// Aggregate over only the most recent `slots` ring slots (the last
    /// `slots × WINDOW_SLOT_SECS` seconds). This is how the burn-rate
    /// alerts read a short "fast" and a long "slow" window off the same
    /// ring.
    pub fn windowed_recent(&self, slots: u64) -> WindowAggregate {
        self.windowed_recent_at(current_tick(), slots)
    }

    /// [`Histogram::windowed_recent`] at an explicit tick, for
    /// deterministic tests. `slots` is clamped to the ring size.
    pub fn windowed_recent_at(&self, now: u64, slots: u64) -> WindowAggregate {
        let slots = slots.min(WINDOW_SLOTS as u64);
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        let mut agg = WindowAggregate::default();
        for slot in &self.window {
            let tick = slot.tick.load(Ordering::Acquire);
            if tick == TICK_EMPTY || tick > now || now - tick >= slots {
                continue;
            }
            let (count, sum, max) = slot.set.totals();
            agg.count += count;
            agg.sum += sum;
            agg.max = agg.max.max(max);
            for (i, b) in slot.set.buckets.iter().enumerate() {
                buckets[i] += b.load(Ordering::Relaxed);
            }
        }
        agg.buckets = buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_upper(i), n))
            .collect();
        agg
    }

    /// Zeroes the lifetime totals and every window slot. Public so tests
    /// (and the integration suite) can isolate window-rotation scenarios.
    pub fn reset(&self) {
        self.base.reset();
        for slot in &self.window {
            slot.tick.store(TICK_EMPTY, Ordering::Release);
            slot.set.reset();
        }
    }
}

/// Aggregate duration statistics for one span name: exact count/total/max
/// plus a log₂ histogram of per-completion durations (µs) so phase times
/// get percentile estimates, not just means.
#[derive(Debug)]
pub struct SpanStat {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
    durations_us: Histogram,
}

impl SpanStat {
    fn new() -> Self {
        SpanStat {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            durations_us: Histogram::new(),
        }
    }

    /// Records one completed span.
    pub fn record(&self, dur: Duration) {
        let ns = dur.as_nanos().min(u64::MAX as u128) as u64;
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.durations_us.record(ns / 1_000);
    }

    /// `(count, total, max)` so far.
    pub fn totals(&self) -> (u64, Duration, Duration) {
        (
            self.count.load(Ordering::Relaxed),
            Duration::from_nanos(self.total_ns.load(Ordering::Relaxed)),
            Duration::from_nanos(self.max_ns.load(Ordering::Relaxed)),
        )
    }

    /// The log₂ histogram of completion durations, in microseconds.
    pub fn durations(&self) -> &Histogram {
        &self.durations_us
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        self.durations_us.reset();
    }
}

/// The process-wide registry of named metrics.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, &'static Counter>>,
    gauges: RwLock<BTreeMap<String, &'static Gauge>>,
    histograms: RwLock<BTreeMap<String, &'static Histogram>>,
    spans: RwLock<BTreeMap<String, &'static SpanStat>>,
}

fn lookup_or_register<T>(
    map: &RwLock<BTreeMap<String, &'static T>>,
    name: &str,
    make: fn() -> T,
) -> &'static T {
    if let Some(&m) = map.read().expect("registry lock").get(name) {
        return m;
    }
    let mut w = map.write().expect("registry lock");
    w.entry(name.to_owned())
        .or_insert_with(|| Box::leak(Box::new(make())))
}

impl Registry {
    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> &'static Counter {
        lookup_or_register(&self.counters, name, Counter::new)
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        lookup_or_register(&self.gauges, name, Gauge::new)
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        lookup_or_register(&self.histograms, name, Histogram::new)
    }

    /// The span statistic named `name`, registering it on first use.
    pub fn span(&self, name: &str) -> &'static SpanStat {
        lookup_or_register(&self.spans, name, SpanStat::new)
    }

    /// Visits every registered counter.
    pub fn for_each_counter(&self, mut f: impl FnMut(&str, &Counter)) {
        for (name, c) in self.counters.read().expect("registry lock").iter() {
            f(name, c);
        }
    }

    /// Visits every registered gauge.
    pub fn for_each_gauge(&self, mut f: impl FnMut(&str, &Gauge)) {
        for (name, g) in self.gauges.read().expect("registry lock").iter() {
            f(name, g);
        }
    }

    /// Visits every registered histogram.
    pub fn for_each_histogram(&self, mut f: impl FnMut(&str, &Histogram)) {
        for (name, h) in self.histograms.read().expect("registry lock").iter() {
            f(name, h);
        }
    }

    /// Visits every registered span statistic.
    pub fn for_each_span(&self, mut f: impl FnMut(&str, &SpanStat)) {
        for (name, s) in self.spans.read().expect("registry lock").iter() {
            f(name, s);
        }
    }

    /// Zeroes every registered metric (names stay registered).
    pub fn reset(&self) {
        self.for_each_counter(|_, c| c.reset());
        self.for_each_gauge(|_, g| g.reset());
        self.for_each_histogram(|_, h| h.reset());
        self.for_each_span(|_, s| s.reset());
    }
}

/// The global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_shards_and_threads() {
        let c = registry().counter("test.registry.threads");
        c.reset();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn same_name_same_handle() {
        let a = registry().counter("test.registry.same") as *const Counter;
        let b = registry().counter("test.registry.same") as *const Counter;
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = registry().histogram("test.registry.hist");
        h.reset();
        for v in [0u64, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let (count, sum, max) = h.totals();
        assert_eq!((count, sum, max), (6, 1010, 1000));
        // 0 → [0,0]; 1 → (0,1]; 2,3 → (1,3]; 4 → (3,7]; 1000 → (511,1023].
        assert_eq!(h.buckets(), vec![(0, 1), (1, 1), (3, 2), (7, 1), (1023, 1)]);
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = registry().gauge("test.registry.gauge");
        g.set(2.5);
        g.set(-0.5);
        assert_eq!(g.get(), -0.5);
    }

    #[test]
    fn span_stat_accumulates() {
        let s = registry().span("test.registry.span");
        s.reset();
        s.record(Duration::from_micros(10));
        s.record(Duration::from_micros(30));
        let (count, total, max) = s.totals();
        assert_eq!(count, 2);
        assert_eq!(total, Duration::from_micros(40));
        assert_eq!(max, Duration::from_micros(30));
        // Durations also land in the µs histogram (10 → (7,15], 30 → (15,31]).
        let (hcount, hsum, hmax) = s.durations().totals();
        assert_eq!((hcount, hsum, hmax), (2, 40, 30));
    }

    #[test]
    fn window_aggregates_only_recent_slots() {
        let h = registry().histogram("test.registry.window");
        h.reset();
        // Ticks 0..3 record distinct values; at tick 3 all are in-window.
        for tick in 0..4u64 {
            h.record_windowed_at(10 * (tick + 1), tick);
        }
        let w = h.windowed_at(3);
        assert_eq!(w.count, 4);
        assert_eq!(w.sum, 10 + 20 + 30 + 40);
        assert_eq!(w.max, 40);
        // Far in the future, every slot has aged out.
        let empty = h.windowed_at(3 + WINDOW_SLOTS as u64);
        assert_eq!(empty, WindowAggregate::default());
    }

    #[test]
    fn window_slots_recycle_on_wraparound() {
        let h = registry().histogram("test.registry.window_wrap");
        h.reset();
        h.record_windowed_at(1, 0);
        // One full ring later the same slot is reused for the new tick;
        // the stale tick-0 slice must be dropped, not merged.
        let reuse = WINDOW_SLOTS as u64;
        h.record_windowed_at(100, reuse);
        let w = h.windowed_at(reuse);
        assert_eq!(w.count, 1);
        assert_eq!(w.sum, 100);
        assert_eq!(w.buckets, vec![(127, 1)]);
    }

    #[test]
    fn windowed_recent_scopes_to_the_requested_slots() {
        let h = registry().histogram("test.registry.window_recent");
        h.reset();
        // Old traffic at ticks 10..20, a fresh burst at ticks 58..=60.
        for tick in 10..20u64 {
            h.record_windowed_at(1, tick);
        }
        for tick in 58..=60u64 {
            h.record_windowed_at(1000, tick);
        }
        let now = 60u64;
        let fast = h.windowed_recent_at(now, 4);
        assert_eq!(fast.count, 3, "only the burst is inside 4 slots");
        assert_eq!(fast.max, 1000);
        let slow = h.windowed_recent_at(now, 60);
        assert_eq!(slow.count, 13, "old traffic still inside 60 slots");
        // Requesting more than the ring clamps instead of double counting.
        let all = h.windowed_recent_at(now, 10_000);
        assert_eq!(all, h.windowed_at(now));
        h.reset();
    }

    #[test]
    fn window_rotation_survives_concurrent_recording() {
        // 8 threads sweep ticks far past the ring size, so every slot is
        // reused (CAS-rotated) many times while other threads are still
        // recording into it. The documented contract: races at slot
        // boundaries may drop or double-count *window* samples, but never
        // corrupt a slot (the aggregate stays internally consistent) and
        // never touch lifetime totals.
        let h = registry().histogram("test.registry.window_race");
        h.reset();
        let (life_before, _, _) = h.totals();
        assert_eq!(life_before, 0);
        const THREADS: u64 = 8;
        const TICKS: u64 = 4 * WINDOW_SLOTS as u64; // 4 full ring laps
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                scope.spawn(move || {
                    for tick in 0..TICKS {
                        h.record_windowed_at(t + 1, tick);
                    }
                });
            }
        });
        // Lifetime totals are untouched: record_windowed_at feeds only the
        // ring.
        assert_eq!(h.totals(), (0, 0, 0));
        // The final lap's slots survive; earlier laps were rotated away.
        // Window counts are approximate under racing rotation, but bounded:
        // never more than everything recorded, and the last tick of the
        // sweep (rotated last) retains at least one sample.
        let w = h.windowed_at(TICKS - 1);
        assert!(w.count >= 1, "final lap left samples behind");
        assert!(
            w.count <= THREADS * TICKS,
            "count bounded by total recorded"
        );
        assert!(w.max <= THREADS, "only recorded values appear");
        // count vs Σbuckets may diverge by the records that raced a slot
        // reset (each race skews one slot by at most one sample per racing
        // thread) — bounded, not exact.
        let bucket_total: u64 = w.buckets.iter().map(|(_, n)| n).sum();
        assert!(bucket_total <= THREADS * TICKS);
        let skew = bucket_total.abs_diff(w.count);
        assert!(
            skew <= THREADS * WINDOW_SLOTS as u64,
            "slot-boundary skew {skew} exceeds the per-race bound"
        );
        h.reset();
    }

    #[test]
    fn record_feeds_both_lifetime_and_window() {
        let h = registry().histogram("test.registry.window_live");
        h.reset();
        h.record(5);
        h.record(9);
        let (count, sum, _) = h.totals();
        assert_eq!((count, sum), (2, 14));
        let w = h.windowed();
        assert_eq!(w.count, 2);
        assert_eq!(w.sum, 14);
    }
}
