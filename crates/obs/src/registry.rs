//! The global metrics registry: named counters, gauges, histograms and
//! span statistics backed by atomics.
//!
//! Metric handles are `&'static` — registered once (the maps leak their
//! values deliberately; the set of metric names is small and fixed by the
//! instrumentation sites) and then shared lock-free. The handle maps are
//! only locked on first registration and at snapshot time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};
use std::time::Duration;

/// Number of counter shards. Power of two; sized so the worker threads of
/// `midas_graph::exec` rarely collide on one cache line.
const COUNTER_SHARDS: usize = 16;

/// Histogram bucket count: bucket `i` holds values whose bit length is `i`
/// (i.e. `v == 0` → bucket 0, else bucket `⌊log₂ v⌋ + 1`).
const HISTOGRAM_BUCKETS: usize = 64;

/// One cache line per shard so concurrent `add`s from different threads do
/// not false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedAtomicU64(AtomicU64);

thread_local! {
    /// Dense per-thread index used to pick counter shards and trace tids.
    static THREAD_INDEX: usize = next_thread_index();
}

fn next_thread_index() -> usize {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed) as usize
}

/// The dense index of the calling thread (also the Chrome-trace `tid`).
pub(crate) fn thread_index() -> usize {
    THREAD_INDEX.with(|i| *i)
}

/// A monotonically increasing sum, sharded across cache lines.
#[derive(Debug)]
pub struct Counter {
    shards: [PaddedAtomicU64; COUNTER_SHARDS],
}

impl Counter {
    fn new() -> Self {
        Counter {
            shards: Default::default(),
        }
    }

    /// Adds `n` to the counter (relaxed; per-thread shard).
    #[inline]
    pub fn add(&self, n: u64) {
        let shard = thread_index() % COUNTER_SHARDS;
        self.shards[shard].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-write-wins `f64` value (stored as bits in one atomic).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.set(0.0);
    }
}

/// A log₂-bucketed histogram of `u64` samples with exact count/sum/max.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: [0u64; HISTOGRAM_BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Index of the bucket `v` falls in: 0 for 0, else `⌊log₂ v⌋ + 1`.
    /// Bucket `i > 0` therefore covers `[2^(i-1), 2^i)`.
    fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// `(count, sum, max)` so far.
    pub fn totals(&self) -> (u64, u64, u64) {
        (
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs, in
    /// ascending order.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                if n == 0 {
                    return None;
                }
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                Some((upper, n))
            })
            .collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Aggregate duration statistics for one span name.
#[derive(Debug)]
pub struct SpanStat {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanStat {
    fn new() -> Self {
        SpanStat {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one completed span.
    pub fn record(&self, dur: Duration) {
        let ns = dur.as_nanos().min(u64::MAX as u128) as u64;
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// `(count, total, max)` so far.
    pub fn totals(&self) -> (u64, Duration, Duration) {
        (
            self.count.load(Ordering::Relaxed),
            Duration::from_nanos(self.total_ns.load(Ordering::Relaxed)),
            Duration::from_nanos(self.max_ns.load(Ordering::Relaxed)),
        )
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// The process-wide registry of named metrics.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, &'static Counter>>,
    gauges: RwLock<BTreeMap<String, &'static Gauge>>,
    histograms: RwLock<BTreeMap<String, &'static Histogram>>,
    spans: RwLock<BTreeMap<String, &'static SpanStat>>,
}

fn lookup_or_register<T>(
    map: &RwLock<BTreeMap<String, &'static T>>,
    name: &str,
    make: fn() -> T,
) -> &'static T {
    if let Some(&m) = map.read().expect("registry lock").get(name) {
        return m;
    }
    let mut w = map.write().expect("registry lock");
    w.entry(name.to_owned())
        .or_insert_with(|| Box::leak(Box::new(make())))
}

impl Registry {
    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> &'static Counter {
        lookup_or_register(&self.counters, name, Counter::new)
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        lookup_or_register(&self.gauges, name, Gauge::new)
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        lookup_or_register(&self.histograms, name, Histogram::new)
    }

    /// The span statistic named `name`, registering it on first use.
    pub fn span(&self, name: &str) -> &'static SpanStat {
        lookup_or_register(&self.spans, name, SpanStat::new)
    }

    /// Visits every registered counter.
    pub fn for_each_counter(&self, mut f: impl FnMut(&str, &Counter)) {
        for (name, c) in self.counters.read().expect("registry lock").iter() {
            f(name, c);
        }
    }

    /// Visits every registered gauge.
    pub fn for_each_gauge(&self, mut f: impl FnMut(&str, &Gauge)) {
        for (name, g) in self.gauges.read().expect("registry lock").iter() {
            f(name, g);
        }
    }

    /// Visits every registered histogram.
    pub fn for_each_histogram(&self, mut f: impl FnMut(&str, &Histogram)) {
        for (name, h) in self.histograms.read().expect("registry lock").iter() {
            f(name, h);
        }
    }

    /// Visits every registered span statistic.
    pub fn for_each_span(&self, mut f: impl FnMut(&str, &SpanStat)) {
        for (name, s) in self.spans.read().expect("registry lock").iter() {
            f(name, s);
        }
    }

    /// Zeroes every registered metric (names stay registered).
    pub fn reset(&self) {
        self.for_each_counter(|_, c| c.reset());
        self.for_each_gauge(|_, g| g.reset());
        self.for_each_histogram(|_, h| h.reset());
        self.for_each_span(|_, s| s.reset());
    }
}

/// The global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_shards_and_threads() {
        let c = registry().counter("test.registry.threads");
        c.reset();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn same_name_same_handle() {
        let a = registry().counter("test.registry.same") as *const Counter;
        let b = registry().counter("test.registry.same") as *const Counter;
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = registry().histogram("test.registry.hist");
        h.reset();
        for v in [0u64, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let (count, sum, max) = h.totals();
        assert_eq!((count, sum, max), (6, 1010, 1000));
        // 0 → [0,0]; 1 → (0,1]; 2,3 → (1,3]; 4 → (3,7]; 1000 → (511,1023].
        assert_eq!(h.buckets(), vec![(0, 1), (1, 1), (3, 2), (7, 1), (1023, 1)]);
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = registry().gauge("test.registry.gauge");
        g.set(2.5);
        g.set(-0.5);
        assert_eq!(g.get(), -0.5);
    }

    #[test]
    fn span_stat_accumulates() {
        let s = registry().span("test.registry.span");
        s.reset();
        s.record(Duration::from_micros(10));
        s.record(Duration::from_micros(30));
        let (count, total, max) = s.totals();
        assert_eq!(count, 2);
        assert_eq!(total, Duration::from_micros(40));
        assert_eq!(max, Duration::from_micros(30));
    }
}
