//! The embedded observability HTTP server — zero dependencies, built on
//! the shared serving core in [`crate::httpd`].
//!
//! A long-running MIDAS daemon needs a runtime window: the file exporters
//! of [`crate::snapshot`]/[`crate::trace`] only escape the process at
//! end-of-batch, so an operator watching a live workload would otherwise
//! be blind between snapshots. [`ObsServer`] binds an address (commonly
//! `127.0.0.1:0` in tests, a fixed port in production) and serves:
//!
//! | Endpoint    | Content                                                  |
//! |-------------|----------------------------------------------------------|
//! | `/metrics`  | Prometheus text exposition ([`crate::prom::render`])     |
//! | `/snapshot` | The full [`MetricsSnapshot`] JSON                        |
//! | `/healthz`  | Drift state, firing alerts + last-batch status, JSON     |
//! | `/flight`   | Flight-recorder dump ([`crate::flight::dump_json`])      |
//! | `/profile`  | Folded profiler stacks ([`crate::profile::folded`])      |
//! | `/slow`     | Tail-latency exemplars ([`crate::exemplar::render_json`])|
//! | `/alerts`   | Burn-rate alert states ([`crate::alerts::render_json`])  |
//! | `/sli`      | User-facing SLIs ([`crate::sli::render_json`])           |
//!
//! Listener, bounded accept queue, worker pool and request parsing all
//! live in [`crate::httpd`] (shared with the pattern-serving daemon);
//! this module is just the GET-only observability router on top. All
//! data served is read-only over the global registry and flight
//! recorder, so a slow scraper never blocks a maintenance batch.

use crate::httpd::{Handler, HttpServer, Request, Response};
use crate::snapshot::MetricsSnapshot;
use crate::{flight, prom};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// Worker threads draining the accept queue.
const WORKERS: usize = 4;

/// The embedded observability server. Dropping (or [`shutdown`]) stops
/// the accept loop and joins every thread.
///
/// [`shutdown`]: ObsServer::shutdown
#[derive(Debug)]
pub struct ObsServer {
    inner: HttpServer,
}

impl ObsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving. The bound address — with the real port — is
    /// [`ObsServer::addr`].
    pub fn start(addr: &str) -> std::io::Result<ObsServer> {
        let started = Instant::now();
        let handler: Handler = Arc::new(move |req: &Request| {
            if req.method != "GET" {
                // RFC 9110: a known resource that only supports GET
                // answers 405 with an `Allow` header; an unknown one is
                // still just a 404.
                if KNOWN_PATHS.contains(&req.path.as_str()) {
                    Response::text(405, "method not allowed\n").with_header("Allow: GET")
                } else {
                    Response::not_found()
                }
            } else {
                route(&req.path, started)
            }
        });
        let inner = HttpServer::start(addr, "midas-obs", WORKERS, handler)?;
        Ok(ObsServer { inner })
    }

    /// The bound address (real port even when started on `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }

    /// Stops accepting, drains the workers, and joins every thread.
    pub fn shutdown(self) {
        self.inner.shutdown();
    }
}

/// Every resource the server exposes (canonical, slash-free form).
const KNOWN_PATHS: [&str; 8] = [
    "/metrics",
    "/snapshot",
    "/healthz",
    "/flight",
    "/profile",
    "/slow",
    "/alerts",
    "/sli",
];

/// Dispatches one GET path (already normalized) to its payload.
fn route(path: &str, started: Instant) -> Response {
    match path {
        "/metrics" => {
            let body = prom::render_live(&MetricsSnapshot::capture());
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8".into(),
                body,
                extra_headers: Vec::new(),
            }
        }
        "/snapshot" => Response::json(200, MetricsSnapshot::capture().to_json()),
        "/healthz" => Response::json(200, healthz(started)),
        "/flight" => Response::json(200, flight::dump_json()),
        "/profile" => Response::text(200, crate::profile::folded()),
        "/slow" => Response::json(200, crate::exemplar::render_json()),
        "/alerts" => Response::json(200, crate::alerts::render_json()),
        "/sli" => Response::json(200, crate::sli::render_json()),
        _ => Response::not_found(),
    }
}

/// The health document: drift state, uptime, firing alerts, and the last
/// batch outcome. `status` degrades from `"ok"` to `"alerting"` when any
/// burn-rate alert is firing, so a plain healthcheck probe sees SLO burn
/// without parsing `/alerts`.
fn healthz(started: Instant) -> String {
    let drift = crate::registry::registry().gauge("monitor.drift").get();
    let firing = crate::alerts::firing();
    let status = if firing.is_empty() { "ok" } else { "alerting" };
    let firing_json = firing
        .iter()
        .map(|n| crate::json::quote(n))
        .collect::<Vec<_>>()
        .join(", ");
    let last = flight::last_batch();
    let last_json = match &last {
        Some(b) => format!(
            "{{\"seq\": {}, \"kind\": {}, \"distance\": {}, \"pmt_us\": {}, \"swaps\": {}, \"unix_ms\": {}}}",
            b.seq,
            crate::json::quote(b.kind),
            crate::json::number(b.distance),
            b.pmt_us,
            b.swaps,
            b.unix_ms
        ),
        None => "null".to_owned(),
    };
    format!(
        "{{\n  \"status\": {},\n  \"uptime_s\": {},\n  \"telemetry_enabled\": {},\n  \"drift\": {},\n  \"alerts_firing\": [{}],\n  \"batches\": {},\n  \"last_batch\": {}\n}}\n",
        crate::json::quote(status),
        started.elapsed().as_secs(),
        crate::enabled(),
        crate::json::number(drift),
        firing_json,
        flight::total_batches(),
        last_json
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    /// Minimal test client: one GET, returns (status line, body).
    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        let status = head.lines().next().unwrap_or("").to_owned();
        (status, body.to_owned())
    }

    #[test]
    fn serves_all_endpoints_and_404() {
        let _g = crate::tests::exclusive();
        crate::flight::clear();
        crate::set_enabled(true);
        crate::counter_add!("test.http.requests", 3);
        {
            let _s = crate::span!("test.http.span");
        }
        crate::set_enabled(false);
        crate::flight::record_batch(crate::flight::BatchSummary {
            seq: 1,
            kind: "minor",
            distance: 0.02,
            pmt_us: 1200,
            pgt_us: 0,
            inserted: 4,
            deleted: 0,
            candidates: 0,
            swaps: 0,
            unix_ms: crate::flight::unix_ms(),
        });

        let server = ObsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.addr();

        let (status, body) = get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("midas_test_http_requests 3"), "{body}");
        assert!(body.contains("quantile=\"0.99\""), "{body}");

        let (status, body) = get(addr, "/snapshot");
        assert!(status.contains("200"));
        json::validate(&body).expect("snapshot JSON");
        assert!(body.contains("\"test.http.requests\": 3"));

        let (status, body) = get(addr, "/healthz");
        assert!(status.contains("200"));
        json::validate(&body).expect("healthz JSON");
        assert!(body.contains("\"status\": \"ok\""));
        assert!(body.contains("\"batches\": 1"));
        assert!(body.contains("\"seq\": 1"));

        let (status, body) = get(addr, "/flight");
        assert!(status.contains("200"));
        json::validate(&body).expect("flight JSON");
        assert!(body.contains("\"total_batches\": 1"));

        let (status, body) = get(addr, "/slow");
        assert!(status.contains("200"));
        json::validate(&body).expect("slow JSON");
        assert!(body.contains("\"reservoir_k\""));

        let (status, body) = get(addr, "/alerts");
        assert!(status.contains("200"));
        json::validate(&body).expect("alerts JSON");
        assert!(body.contains("\"alerts\""));

        let (status, body) = get(addr, "/sli");
        assert!(status.contains("200"));
        json::validate(&body).expect("sli JSON");
        assert!(body.contains("\"reduction\""), "{body}");
        assert!(body.contains("\"latency_ns\""), "{body}");

        // /profile is plain text (possibly empty when nothing was sampled).
        let (status, _) = get(addr, "/profile");
        assert!(status.contains("200"));

        let (status, _) = get(addr, "/nope");
        assert!(status.contains("404"));

        // Query strings are tolerated.
        let (status, _) = get(addr, "/healthz?verbose=1");
        assert!(status.contains("200"));

        server.shutdown();
        crate::flight::clear();
    }

    #[test]
    fn healthz_degrades_to_alerting_while_an_alert_fires() {
        let _g = crate::tests::exclusive();
        crate::alerts::configure(crate::alerts::SloConfig {
            phase_budget_us: 10,
            ..crate::alerts::SloConfig::default()
        });
        let h = crate::registry::registry().span("batch.index").durations();
        h.reset();
        // Violations in the current live tick: inside both windows.
        let now = crate::registry::current_tick();
        for _ in 0..8 {
            h.record_windowed_at(1_000_000, now);
        }
        let server = ObsServer::start("127.0.0.1:0").expect("bind");
        let (status, body) = get(server.addr(), "/healthz");
        assert!(status.contains("200"));
        json::validate(&body).expect("healthz JSON");
        assert!(body.contains("\"status\": \"alerting\""), "{body}");
        assert!(body.contains("\"batch.index\""), "{body}");
        let (_, body) = get(server.addr(), "/alerts");
        assert!(body.contains("\"firing\""), "{body}");
        server.shutdown();
        h.reset();
        crate::alerts::configure(crate::alerts::SloConfig::default());
    }

    #[test]
    fn concurrent_scrapes_all_answer() {
        let _g = crate::tests::exclusive();
        let server = ObsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.addr();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(move || {
                    let (status, body) = get(addr, "/healthz");
                    assert!(status.contains("200"));
                    json::validate(&body).expect("healthz JSON");
                });
            }
        });
        server.shutdown();
    }

    #[test]
    fn non_get_is_rejected() {
        let _g = crate::tests::exclusive();
        let server = ObsServer::start("127.0.0.1:0").expect("bind");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
        assert!(
            raw.contains("\r\nAllow: GET\r\n"),
            "405 names the verb: {raw}"
        );

        // Non-GET on an *unknown* path is a plain 404, no Allow header.
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        write!(stream, "POST /nope HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        assert!(raw.starts_with("HTTP/1.1 404"), "{raw}");
        assert!(!raw.contains("Allow:"), "{raw}");
        server.shutdown();
    }

    #[test]
    fn trailing_slashes_and_queries_route_to_endpoints() {
        // Regression: `GET /metrics?job=x` and `GET /healthz/` used to 404
        // (only the query string was stripped, never trailing slashes).
        let _g = crate::tests::exclusive();
        let server = ObsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.addr();
        for path in [
            "/healthz/",
            "/metrics/",
            "/metrics?job=midas",
            "/flight///",
            "/snapshot/?pretty=1",
            "/healthz#state",
        ] {
            let (status, _) = get(addr, path);
            assert!(status.contains("200"), "{path}: {status}");
        }
        for path in ["/", "/metricsx", "/metrics/extra"] {
            let (status, _) = get(addr, path);
            assert!(status.contains("404"), "{path}: {status}");
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let server = ObsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.addr();
        drop(server); // Drop path joins threads
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }
}
