//! Tail-latency exemplars: *who* was slow, not just how slow.
//!
//! The latency histograms answer "what is p99 of `vf2.search_ns`?" but
//! not "which pattern against which graph produced that p99". This module
//! keeps, per monitored series, a small top-K reservoir of the largest
//! observations seen, each tagged with the pattern fingerprint and graph
//! id that were live when it was recorded (a thread-local context set by
//! the embedding cache) plus a process-global sequence number for
//! cross-referencing with traces. `GET /slow` serves the reservoirs as
//! JSON; `prom.rs` appends them as OpenMetrics-style `# exemplar` comment
//! hints after the owning family.
//!
//! # Determinism and the rotating threshold
//!
//! The reservoir is a pure top-K: an observation enters iff it exceeds the
//! current minimum of a full reservoir (the "rotating threshold" — it only
//! ever rises as slower observations arrive), and ties are broken by
//! sequence number (earlier wins). Given the same observation stream the
//! reservoir content is therefore a deterministic function of the stream,
//! which the test suite pins.
//!
//! # Cost
//!
//! The hot path (`vf2.search_ns`, millions of offers per batch) is guarded
//! by one relaxed load of the per-series threshold: observations at or
//! below it return before touching the reservoir lock. Only candidate
//! tail observations — by construction at most K per threshold rotation —
//! pay the lock.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};

/// Reservoir capacity per series: enough to attribute a tail, small
/// enough that `/slow` stays a glance.
pub const RESERVOIR_K: usize = 16;

/// Sentinel for "no context was set" (no real graph id or fingerprint is
/// ever `u64::MAX`: fingerprints are 64-bit hashes but the sentinel
/// collision chance is negligible and harmless — worst case one exemplar
/// renders as unattributed).
const NO_CTX: u64 = u64::MAX;

/// One captured exemplar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The observed value (unit is per-series, see [`Series::unit`]).
    pub value: u64,
    /// Pattern fingerprint live at capture ([`NO_CTX`] when none).
    pattern: u64,
    /// Graph id live at capture ([`NO_CTX`] when none).
    graph: u64,
    /// Process-global capture sequence number.
    pub seq: u64,
}

impl Exemplar {
    /// The pattern fingerprint, if a context was set at capture.
    pub fn pattern(&self) -> Option<u64> {
        (self.pattern != NO_CTX).then_some(self.pattern)
    }

    /// The graph id, if a context was set at capture.
    pub fn graph(&self) -> Option<u64> {
        (self.graph != NO_CTX).then_some(self.graph)
    }
}

thread_local! {
    /// (pattern fingerprint, graph id) the calling thread is working on.
    static CTX: Cell<(u64, u64)> = const { Cell::new((NO_CTX, NO_CTX)) };
}

/// Restores the previous exemplar context on drop, so nested scopes (a
/// cached pattern scan inside another scan) unwind correctly.
#[derive(Debug)]
pub struct ContextGuard {
    prev: (u64, u64),
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CTX.with(|c| c.set(self.prev));
    }
}

/// Tags the calling thread with the `(pattern, graph)` it is about to
/// work on; any exemplar captured before the guard drops carries the tag.
/// Call sites should gate on [`crate::enabled`] — the guard itself is
/// cheap (two `Cell` stores) but pointless when telemetry is off.
pub fn with_context(pattern: u64, graph: u64) -> ContextGuard {
    let prev = CTX.with(|c| c.replace((pattern, graph)));
    ContextGuard { prev }
}

fn next_seq() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// One monitored series' reservoir. Obtain via [`series`]; handles are
/// `&'static` like the metric handles of [`crate::registry`].
#[derive(Debug)]
pub struct Series {
    unit: &'static str,
    /// The rotating admission threshold: the minimum value in a *full*
    /// reservoir, 0 while filling. Relaxed — a stale read only costs one
    /// redundant lock acquisition or one missed borderline exemplar.
    threshold: AtomicU64,
    offered: AtomicU64,
    top: Mutex<Vec<Exemplar>>,
}

impl Series {
    fn new(unit: &'static str) -> Self {
        Series {
            unit,
            threshold: AtomicU64::new(0),
            offered: AtomicU64::new(0),
            top: Mutex::new(Vec::new()),
        }
    }

    /// The unit of this series' values (`"ns"` or `"us"`).
    pub fn unit(&self) -> &'static str {
        self.unit
    }

    /// Observations offered so far (admitted or not).
    pub fn offered(&self) -> u64 {
        self.offered.load(Ordering::Relaxed)
    }

    /// Offers one observation, tagging it with the calling thread's
    /// context. Cheap rejection below the rotating threshold.
    pub fn offer(&self, value: u64) {
        self.offered.fetch_add(1, Ordering::Relaxed);
        if value <= self.threshold.load(Ordering::Relaxed) {
            return;
        }
        let (pattern, graph) = CTX.with(|c| c.get());
        let exemplar = Exemplar {
            value,
            pattern,
            graph,
            seq: next_seq(),
        };
        let mut top = self.top.lock().unwrap_or_else(|e| e.into_inner());
        // Keep sorted: largest value first, ties by earlier sequence.
        let pos = top
            .binary_search_by(|e| {
                e.value
                    .cmp(&exemplar.value)
                    .reverse()
                    .then(e.seq.cmp(&exemplar.seq))
            })
            .unwrap_or_else(|p| p);
        if pos >= RESERVOIR_K {
            return; // raced a threshold rotation; still not tail-worthy
        }
        top.insert(pos, exemplar);
        top.truncate(RESERVOIR_K);
        if top.len() == RESERVOIR_K {
            self.threshold
                .store(top.last().expect("full").value, Ordering::Relaxed);
        }
    }

    /// The current reservoir, largest first.
    pub fn top(&self) -> Vec<Exemplar> {
        self.top.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Clears the reservoir, threshold and offer count (the series stays
    /// registered).
    pub fn reset(&self) {
        self.top.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.threshold.store(0, Ordering::Relaxed);
        self.offered.store(0, Ordering::Relaxed);
    }
}

type SeriesMap = RwLock<BTreeMap<&'static str, &'static Series>>;

fn series_map() -> &'static SeriesMap {
    static MAP: OnceLock<SeriesMap> = OnceLock::new();
    MAP.get_or_init(|| RwLock::new(BTreeMap::new()))
}

/// The series named `name`, registering it (with `unit`) on first use.
/// Like the registry's metric handles, the handle is `&'static` and safe
/// to cache at the call site.
pub fn series(name: &'static str, unit: &'static str) -> &'static Series {
    if let Some(&s) = series_map()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .get(name)
    {
        return s;
    }
    let mut map = series_map().write().unwrap_or_else(|e| e.into_inner());
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Series::new(unit))))
}

/// Offers `value` to the series named `name` when telemetry is enabled.
/// Looks the series up each call — fine for low-frequency sites (span
/// completions); hot paths should cache [`series`] in a `OnceLock`.
pub fn offer_named(name: &'static str, unit: &'static str, value: u64) {
    if !crate::enabled() {
        return;
    }
    series(name, unit).offer(value);
}

/// Visits every registered series (sorted by name).
pub fn for_each_series(mut f: impl FnMut(&'static str, &'static Series)) {
    for (name, s) in series_map()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
    {
        f(name, s);
    }
}

/// Clears every reservoir (series stay registered). For tests and
/// operators wanting a fresh attribution window.
pub fn reset() {
    for_each_series(|_, s| s.reset());
}

/// The `/slow` document: every series' reservoir as JSON, largest first.
pub fn render_json() -> String {
    let mut out = String::from("{\n  \"reservoir_k\": ");
    out.push_str(&RESERVOIR_K.to_string());
    out.push_str(",\n  \"series\": {\n");
    let mut entries: Vec<String> = Vec::new();
    for_each_series(|name, s| {
        let mut e = format!(
            "    {}: {{\"unit\": {}, \"offered\": {}, \"top\": [",
            crate::json::quote(name),
            crate::json::quote(s.unit()),
            s.offered()
        );
        let top = s.top();
        for (i, ex) in top.iter().enumerate() {
            let pattern = match ex.pattern() {
                Some(p) => p.to_string(),
                None => "null".to_owned(),
            };
            let graph = match ex.graph() {
                Some(g) => g.to_string(),
                None => "null".to_owned(),
            };
            e.push_str(&format!(
                "{}{{\"value\": {}, \"pattern\": {}, \"graph\": {}, \"seq\": {}}}",
                if i == 0 { "" } else { ", " },
                ex.value,
                pattern,
                graph,
                ex.seq
            ));
        }
        e.push_str("]}");
        entries.push(e);
    });
    out.push_str(&entries.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::exclusive;

    #[test]
    fn reservoir_keeps_the_top_k_deterministically() {
        let _g = exclusive();
        let s = series("test.exemplar.topk", "ns");
        s.reset();
        // Offer 1..=40 twice, interleaved; the reservoir must hold the K
        // largest values, and for the duplicated values the earlier seq.
        for v in 1..=40u64 {
            s.offer(v);
            s.offer(v);
        }
        let top = s.top();
        assert_eq!(top.len(), RESERVOIR_K);
        let values: Vec<u64> = top.iter().map(|e| e.value).collect();
        let expected: Vec<u64> = (0..RESERVOIR_K as u64).map(|i| 40 - i / 2).collect();
        assert_eq!(values, expected, "top-K by value, duplicates kept");
        for pair in top.windows(2) {
            assert!(
                pair[0].value > pair[1].value
                    || (pair[0].value == pair[1].value && pair[0].seq < pair[1].seq),
                "ordering is (value desc, seq asc): {pair:?}"
            );
        }
        // The threshold rotated up to the current minimum.
        assert_eq!(s.threshold.load(Ordering::Relaxed), values[RESERVOIR_K - 1]);
        s.reset();
    }

    #[test]
    fn context_tags_and_unwinds() {
        let _g = exclusive();
        let s = series("test.exemplar.ctx", "ns");
        s.reset();
        {
            let _outer = with_context(7, 11);
            s.offer(100);
            {
                let _inner = with_context(8, 12);
                s.offer(200);
            }
            s.offer(150); // outer context restored
        }
        s.offer(300); // no context
        let top = s.top();
        let find = |v: u64| top.iter().find(|e| e.value == v).expect("present");
        assert_eq!(
            (find(100).pattern(), find(100).graph()),
            (Some(7), Some(11))
        );
        assert_eq!(
            (find(200).pattern(), find(200).graph()),
            (Some(8), Some(12))
        );
        assert_eq!(
            (find(150).pattern(), find(150).graph()),
            (Some(7), Some(11))
        );
        assert_eq!((find(300).pattern(), find(300).graph()), (None, None));
        s.reset();
    }

    #[test]
    fn below_threshold_offers_are_rejected_cheaply() {
        let _g = exclusive();
        let s = series("test.exemplar.threshold", "ns");
        s.reset();
        for v in 100..100 + RESERVOIR_K as u64 {
            s.offer(v);
        }
        let before = s.top();
        s.offer(5); // below the rotated threshold: must not enter
        assert_eq!(s.top(), before);
        assert_eq!(s.offered(), RESERVOIR_K as u64 + 1);
        s.reset();
    }

    #[test]
    fn render_json_is_valid_and_attributed() {
        let _g = exclusive();
        let s = series("test.exemplar.json", "us");
        s.reset();
        {
            let _c = with_context(42, 17);
            s.offer(1234);
        }
        let doc = render_json();
        crate::json::validate(&doc).expect("slow JSON validates");
        assert!(doc.contains("\"test.exemplar.json\""));
        assert!(doc.contains("\"value\": 1234"));
        assert!(doc.contains("\"pattern\": 42"));
        assert!(doc.contains("\"graph\": 17"));
        s.reset();
    }
}
