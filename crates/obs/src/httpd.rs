//! Reusable zero-dependency HTTP serving core.
//!
//! [`crate::http::ObsServer`] started life as a GET-only scrape endpoint;
//! the pattern-serving daemon (`midas-serve`) needs the same machinery —
//! listener, bounded accept queue, worker pool, request parsing, response
//! formatting — but with request *bodies* (`POST /v1/{tenant}/updates`)
//! and an application-defined router. This module is that shared core:
//!
//! * [`HttpServer::start`] binds an address and spawns one accept thread
//!   plus a configurable worker pool; every parsed request is dispatched
//!   to a caller-supplied [`Handler`];
//! * [`Request`] carries method, normalized path, raw query string,
//!   lower-cased headers and the (possibly empty) body;
//! * [`Response`] is built by the handler and serialized as a complete
//!   `HTTP/1.1` message with `Content-Length` and `Connection: close`.
//!
//! Protocol-level rejections happen *here*, before any handler runs, and
//! are explicit rather than silent-drop:
//!
//! | Condition                                     | Status |
//! |-----------------------------------------------|--------|
//! | malformed request line / header, EOF mid-head | 400    |
//! | `Content-Length` unparsable                   | 400    |
//! | request head over [`MAX_HEAD_BYTES`]          | 431    |
//! | declared body over [`MAX_BODY_BYTES`]         | 413    |
//! | handler panic                                 | 500    |
//!
//! Only a *clean* EOF — the peer connected and closed without sending a
//! single byte (health-checker port probes do this) — is dropped without
//! a response.
//!
//! ## Worker-pool locking discipline
//!
//! Workers share one `Mutex<Receiver<TcpStream>>`. The queue mutex must
//! be held **only** for the `recv` call and released before the
//! connection is handled: a guard that lives across `handle` would
//! serialize the whole pool to one effective worker (each worker would
//! sit on the mutex while its colleague reads, parses and answers — or
//! worse, blocks up to [`IO_TIMEOUT`] on a stalled client). The worker
//! loop below binds the guard, receives, and drops the guard in its own
//! scope before touching the stream; a regression test pins the behavior
//! with a deliberately stalled connection.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Hard cap on the request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Hard cap on a declared request body, bytes.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Per-connection socket read/write timeout.
pub const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Pending-connection queue bound (beyond it, accepts block briefly —
/// backpressure lands on clients, never on maintenance).
const QUEUE: usize = 32;

/// One parsed HTTP request, as seen by a [`Handler`].
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method token as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Normalized path: query/fragment stripped, trailing slashes
    /// removed, bare root kept as `/`.
    pub path: String,
    /// Raw query string (without the `?`), if any.
    pub query: Option<String>,
    /// Headers in order, names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == want)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, if it is valid UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// Value of a `key=value` pair in the query string (no percent
    /// decoding — the APIs here only pass tokens and numbers).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// One HTTP response, built by a [`Handler`] and serialized by the core.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: String,
    /// Extra headers, each a complete `Name: value` line (no CRLF).
    pub extra_headers: Vec<String>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".into(),
            body: body.into(),
            extra_headers: Vec::new(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json; charset=utf-8".into(),
            body: body.into(),
            extra_headers: Vec::new(),
        }
    }

    /// Adds one extra header line (e.g. `Allow: GET`).
    pub fn with_header(mut self, header: &str) -> Response {
        self.extra_headers.push(header.to_owned());
        self
    }

    /// The stock 404.
    pub fn not_found() -> Response {
        Response::text(404, "not found\n")
    }

    /// A 400 with a one-line explanation.
    pub fn bad_request(msg: &str) -> Response {
        Response::text(400, format!("bad request: {msg}\n"))
    }

    /// Serializes the complete `HTTP/1.1` message.
    fn serialize(&self) -> String {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for h in &self.extra_headers {
            head.push_str(h);
            head.push_str("\r\n");
        }
        format!("{head}\r\n{}", self.body)
    }
}

/// Canonical reason phrase for the status codes this stack uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

/// Application router: maps a parsed request to a response. Shared by all
/// workers; must be `Send + Sync`. Panics are caught and answered 500.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// A running HTTP server: accept thread + worker pool. Dropping (or
/// [`HttpServer::shutdown`]) stops accepting and joins every thread.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .field("threads", &self.threads.len())
            .finish()
    }
}

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving `handler`
    /// on a pool of `workers` threads named `{name}-worker-{i}`.
    pub fn start(
        addr: &str,
        name: &str,
        workers: usize,
        handler: Handler,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let workers = workers.max(1);
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) = sync_channel(QUEUE);
        let rx = Arc::new(Mutex::new(rx));
        let mut threads = Vec::with_capacity(workers + 1);
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            let handler = Arc::clone(&handler);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("{name}-worker-{i}"))
                    .spawn(move || loop {
                        // The queue mutex guards only the `recv`: bind the
                        // guard, receive, and release it *before* touching
                        // the connection, or the pool degrades to one
                        // effective worker (see module docs).
                        let stream = {
                            let guard = match rx.lock() {
                                Ok(guard) => guard,
                                Err(_) => return,
                            };
                            let stream = guard.recv();
                            drop(guard);
                            stream
                        };
                        match stream {
                            Ok(stream) => handle_connection(stream, &handler),
                            Err(_) => return, // sender gone: shutdown
                        }
                    })?,
            );
        }
        {
            let stop = Arc::clone(&stop);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("{name}-accept"))
                    .spawn(move || {
                        for stream in listener.incoming() {
                            if stop.load(Ordering::Acquire) {
                                return; // drops tx → workers drain and exit
                            }
                            if let Ok(stream) = stream {
                                // A full queue applies backpressure to the
                                // client, never to the maintenance loop.
                                let _ = tx.send(stream);
                            }
                        }
                    })?,
            );
        }
        Ok(HttpServer {
            addr: local,
            stop,
            threads,
        })
    }

    /// The bound address (real port even when started on `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the workers, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Canonicalizes a request target for routing: the query string (and any
/// fragment) is dropped and trailing slashes are stripped, so
/// `GET /metrics?job=x` and `GET /healthz/` hit their endpoints instead
/// of 404ing. The bare root stays `/`.
pub fn normalize_path(target: &str) -> &str {
    let path = target.split(['?', '#']).next().unwrap_or(target);
    let trimmed = path.trim_end_matches('/');
    if trimmed.is_empty() {
        "/"
    } else {
        trimmed
    }
}

/// Why a request could not be parsed into a [`Request`].
enum ReadError {
    /// Peer closed without sending a byte — drop silently, no response.
    CleanEof,
    /// Malformed request line/header, EOF mid-message, or unreadable
    /// socket → 400.
    Bad(&'static str),
    /// Request head exceeded [`MAX_HEAD_BYTES`] → 431.
    HeadTooLarge,
    /// Declared body exceeded [`MAX_BODY_BYTES`] → 413.
    BodyTooLarge,
}

impl ReadError {
    fn response(&self) -> Option<Response> {
        match self {
            ReadError::CleanEof => None,
            ReadError::Bad(msg) => Some(Response::bad_request(msg)),
            ReadError::HeadTooLarge => Some(Response::text(431, "request head too large\n")),
            ReadError::BodyTooLarge => Some(Response::text(413, "request body too large\n")),
        }
    }
}

/// Reads one line from the size-capped head reader, distinguishing EOF,
/// hitting the head cap, and transport errors.
fn read_head_line(
    limited: &mut std::io::Take<&mut BufReader<&TcpStream>>,
    line: &mut String,
) -> Result<bool, ReadError> {
    match limited.read_line(line) {
        Ok(0) => Ok(false),
        Ok(_) => {
            if !line.ends_with('\n') {
                // The reader stopped mid-line: either the head cap was
                // exhausted or the peer died. `limit() == 0` distinguishes.
                if limited.limit() == 0 {
                    return Err(ReadError::HeadTooLarge);
                }
                return Err(ReadError::Bad("truncated line"));
            }
            Ok(true)
        }
        Err(_) => Err(ReadError::Bad("unreadable socket")),
    }
}

/// Parses one request off the wire: request line, headers, then exactly
/// `Content-Length` body bytes (absent length = empty body).
fn read_request(reader: &mut BufReader<&TcpStream>) -> Result<Request, ReadError> {
    let mut request_line = String::new();
    let mut headers = Vec::new();
    {
        // Cap the head; `+ 1` so hitting exactly the cap is detectable as
        // a truncated (newline-less) line instead of a silent short read.
        let mut limited = reader.take(MAX_HEAD_BYTES as u64 + 1);
        if !read_head_line(&mut limited, &mut request_line)? {
            return Err(ReadError::CleanEof);
        }
        loop {
            let mut line = String::new();
            if !read_head_line(&mut limited, &mut line)? {
                return Err(ReadError::Bad("eof before end of headers"));
            }
            if line == "\r\n" || line == "\n" {
                break;
            }
            match line.trim_end().split_once(':') {
                Some((k, v)) => headers.push((k.trim().to_ascii_lowercase(), v.trim().to_owned())),
                None => return Err(ReadError::Bad("malformed header line")),
            }
        }
    }

    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(ReadError::Bad("malformed request line")),
    };
    if !target.starts_with('/') || !version.starts_with("HTTP/") {
        return Err(ReadError::Bad("malformed request line"));
    }

    let content_length = match headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
    {
        Some(Ok(n)) => n,
        Some(Err(_)) => return Err(ReadError::Bad("unparsable content-length")),
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 && reader.read_exact(&mut body).is_err() {
        return Err(ReadError::Bad("body shorter than content-length"));
    }

    let raw_path = target.split(['?', '#']).next().unwrap_or(target);
    let query = target
        .split_once('?')
        .map(|(_, rest)| rest.split('#').next().unwrap_or(rest).to_owned())
        .filter(|q| !q.is_empty());
    Ok(Request {
        method: method.to_owned(),
        path: normalize_path(raw_path).to_owned(),
        query,
        headers,
        body,
    })
}

/// Reads, routes and answers one connection. Transport errors on the
/// response write are ignored — the client retries, the daemon does not
/// care.
fn handle_connection(stream: TcpStream, handler: &Handler) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut reader = BufReader::new(&stream);
    let response = match read_request(&mut reader) {
        Ok(request) => {
            // A panicking handler answers 500 instead of silently
            // shrinking the worker pool.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(&request)))
                .unwrap_or_else(|_| Response::text(500, "internal error\n"))
        }
        Err(e) => match e.response() {
            Some(r) => r,
            None => return,
        },
    };
    let _ = (&stream).write_all(response.serialize().as_bytes());
    let _ = (&stream).flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Instant;

    fn echo_server(workers: usize) -> HttpServer {
        let handler: Handler = Arc::new(|req: &Request| match req.path.as_str() {
            "/ping" => Response::text(200, "pong\n"),
            "/echo" => Response::text(200, req.body_str().unwrap_or("").to_owned()),
            "/panic" => panic!("handler exploded"),
            "/slow" => {
                std::thread::sleep(Duration::from_millis(300));
                Response::text(200, "slept\n")
            }
            _ => Response::not_found(),
        });
        HttpServer::start("127.0.0.1:0", "test-httpd", workers, handler).expect("bind")
    }

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read response");
        out
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        roundtrip(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
    }

    #[test]
    fn serves_get_and_404() {
        let server = echo_server(2);
        let addr = server.addr();
        assert!(get(addr, "/ping").contains("pong"));
        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
        server.shutdown();
    }

    #[test]
    fn post_body_roundtrips() {
        let server = echo_server(2);
        let body = "{\"hello\": [1, 2, 3]}";
        let raw = format!(
            "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let out = roundtrip(server.addr(), &raw);
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        assert!(out.ends_with(body), "{out}");
        server.shutdown();
    }

    #[test]
    fn post_without_length_gets_empty_body() {
        let server = echo_server(2);
        let out = roundtrip(server.addr(), "POST /echo HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        assert!(out.contains("Content-Length: 0"), "{out}");
        server.shutdown();
    }

    #[test]
    fn malformed_request_line_is_400() {
        let server = echo_server(2);
        for raw in [
            "NOT_EVEN_HTTP\r\n\r\n",
            "GET /ping\r\n\r\n",
            "GET ping HTTP/1.1\r\n\r\n",
            "GET /ping HTTP/1.1 extra\r\n\r\n",
        ] {
            let out = roundtrip(server.addr(), raw);
            assert!(out.starts_with("HTTP/1.1 400"), "{raw:?} -> {out}");
        }
        server.shutdown();
    }

    #[test]
    fn malformed_header_is_400() {
        let server = echo_server(2);
        let out = roundtrip(
            server.addr(),
            "GET /ping HTTP/1.1\r\nthis line has no colon\r\n\r\n",
        );
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        server.shutdown();
    }

    #[test]
    fn oversized_head_is_431() {
        // Regression: the old header-drain loop silently dropped oversized
        // heads (and treated EOF like any other line); now it answers.
        let server = echo_server(2);
        let huge = "x".repeat(MAX_HEAD_BYTES + 100);
        let raw = format!("GET /ping HTTP/1.1\r\nX-Huge: {huge}\r\n\r\n");
        let out = roundtrip(server.addr(), &raw);
        assert!(out.starts_with("HTTP/1.1 431"), "{out}");
        server.shutdown();
    }

    #[test]
    fn oversized_declared_body_is_413() {
        let server = echo_server(2);
        let raw = format!(
            "POST /echo HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let out = roundtrip(server.addr(), &raw);
        assert!(out.starts_with("HTTP/1.1 413"), "{out}");
        server.shutdown();
    }

    #[test]
    fn unparsable_content_length_is_400() {
        let server = echo_server(2);
        let out = roundtrip(
            server.addr(),
            "POST /echo HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        );
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        server.shutdown();
    }

    #[test]
    fn clean_eof_is_dropped_and_server_survives() {
        let server = echo_server(2);
        let addr = server.addr();
        {
            // Connect-and-close, the canonical port-liveness probe.
            let _probe = TcpStream::connect(addr).expect("connect");
        }
        assert!(get(addr, "/ping").contains("pong"), "server still serves");
        server.shutdown();
    }

    #[test]
    fn handler_panic_answers_500_and_pool_survives() {
        let server = echo_server(1);
        let addr = server.addr();
        let out = get(addr, "/panic");
        assert!(out.starts_with("HTTP/1.1 500"), "{out}");
        // The single worker survived the panic.
        assert!(get(addr, "/ping").contains("pong"));
        server.shutdown();
    }

    /// Regression test for the worker-pool serialization hazard: a client
    /// that stalls mid-head parks one worker inside `read_request` for up
    /// to `IO_TIMEOUT` (5 s). If the queue guard were held across
    /// handling, the whole pool would serialize behind that stall and a
    /// well-behaved second request could not be answered until the
    /// timeout. With the fix, the second worker picks it up immediately.
    #[test]
    fn stalled_connection_does_not_serialize_the_pool() {
        let server = echo_server(2);
        let addr = server.addr();
        // Deliberately slow connection: send half a request line, stall.
        let mut stalled = TcpStream::connect(addr).expect("connect");
        stalled.write_all(b"GET /pi").unwrap();
        std::thread::sleep(Duration::from_millis(100)); // let a worker pick it up
        let begin = Instant::now();
        let out = get(addr, "/ping");
        let waited = begin.elapsed();
        assert!(out.contains("pong"), "{out}");
        assert!(
            waited < Duration::from_secs(3),
            "second request waited {waited:?} — pool serialized behind the stalled client"
        );
        drop(stalled);
        server.shutdown();
    }

    /// Two concurrent slow *handlers* run in parallel on a 2-worker pool:
    /// both /slow requests (300 ms handler sleep each) finish well under
    /// the 600 ms a serialized pool would need.
    #[test]
    fn slow_handlers_run_concurrently() {
        let server = echo_server(2);
        let addr = server.addr();
        let begin = Instant::now();
        let (tx, rx) = mpsc::channel();
        for _ in 0..2 {
            let tx = tx.clone();
            std::thread::spawn(move || {
                let out = get(addr, "/slow");
                tx.send(out.contains("slept")).unwrap();
            });
        }
        assert!(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        assert!(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        let waited = begin.elapsed();
        assert!(
            waited < Duration::from_millis(550),
            "two 300 ms handlers took {waited:?} on a 2-worker pool"
        );
        server.shutdown();
    }

    #[test]
    fn query_strings_parse_into_params() {
        let handler: Handler = Arc::new(|req: &Request| {
            Response::text(
                200,
                format!(
                    "mode={} n={}\n",
                    req.query_param("mode").unwrap_or("-"),
                    req.query_param("n").unwrap_or("-")
                ),
            )
        });
        let server = HttpServer::start("127.0.0.1:0", "test-q", 1, handler).expect("bind");
        let out = get(server.addr(), "/x?mode=sync&n=12");
        assert!(out.contains("mode=sync n=12"), "{out}");
        let out = get(server.addr(), "/x");
        assert!(out.contains("mode=- n=-"), "{out}");
        server.shutdown();
    }

    #[test]
    fn normalize_path_canonicalizes_targets() {
        assert_eq!(normalize_path("/metrics"), "/metrics");
        assert_eq!(normalize_path("/metrics///"), "/metrics");
        assert_eq!(normalize_path("/metrics?job=x"), "/metrics");
        assert_eq!(normalize_path("/metrics#frag"), "/metrics");
        assert_eq!(normalize_path("/"), "/");
        assert_eq!(normalize_path("/?q"), "/");
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let server = echo_server(2);
        let addr = server.addr();
        drop(server); // Drop path joins threads
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }
}
