//! Cooperative sampling profiler over the shared span stacks.
//!
//! Spans already tell us *that* a phase was slow; the profiler tells us
//! *where the time went inside it* without any per-operation probes. A
//! background sampler thread wakes `MIDAS_PROFILE_HZ` times a second,
//! walks every live thread's span stack ([`crate::span`] registers them
//! in a global roster), and aggregates each observed stack as a
//! collapsed ("folded") string — `outer;inner` — with a hit count. The
//! result is directly flamegraph-ready ([`folded`], served at
//! `GET /profile`) and, when tracing is on, each sample also lands in the
//! Chrome trace as a `"ph": "P"` event on the sampled thread's track, so
//! one Perfetto file shows spans and samples together.
//!
//! This is a *cooperative* profiler: it only sees instrumented span
//! frames, never native stack frames, so it costs nothing when telemetry
//! is off and needs no signal handling or unwinding. The sampler thread
//! is spawned lazily on the first nonzero rate and parks itself (200 ms
//! naps) whenever the rate drops back to zero, so repeated
//! `TelemetryConfig::activate` calls stay idempotent.

use crate::span;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Sampling rate ceiling — beyond ~1 kHz the folded map's lock would start
/// to matter to the threads being profiled.
pub const MAX_HZ: u32 = 1_000;

static RATE_HZ: AtomicU32 = AtomicU32::new(0);
static SAMPLES: AtomicU64 = AtomicU64::new(0);

fn folded_counts() -> &'static Mutex<BTreeMap<String, u64>> {
    static COUNTS: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
    COUNTS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Sets the sampling rate in Hz (0 stops sampling) and makes sure the
/// sampler thread exists when the rate is nonzero. Values above
/// [`MAX_HZ`] are clamped.
pub fn set_rate(hz: u32) {
    RATE_HZ.store(hz.min(MAX_HZ), Ordering::Relaxed);
    if hz > 0 {
        ensure_sampler_thread();
    }
}

/// The current sampling rate in Hz (0 = off).
pub fn rate() -> u32 {
    RATE_HZ.load(Ordering::Relaxed)
}

/// Number of sampling passes taken so far (each pass visits every live
/// thread once).
pub fn samples() -> u64 {
    SAMPLES.load(Ordering::Relaxed)
}

fn ensure_sampler_thread() {
    static STARTED: AtomicBool = AtomicBool::new(false);
    if STARTED.swap(true, Ordering::SeqCst) {
        return;
    }
    // Detached daemon thread: it holds no resources that need joining and
    // dies with the process. Spawn failure just leaves the profiler off.
    let spawned = std::thread::Builder::new()
        .name("midas-obs-sampler".into())
        .spawn(|| loop {
            let hz = rate();
            if hz == 0 {
                std::thread::sleep(Duration::from_millis(200));
                continue;
            }
            sample_once();
            std::thread::sleep(Duration::from_micros(1_000_000 / u64::from(hz.max(1))));
        });
    if spawned.is_err() {
        STARTED.store(false, Ordering::SeqCst);
    }
}

/// Takes one sampling pass over every live thread's span stack,
/// aggregating non-empty stacks into the folded map (and the Chrome trace
/// when tracing is on). Returns the number of non-empty stacks observed.
///
/// Public so tests — and anyone embedding the crate without the
/// background thread — can drive sampling deterministically.
pub fn sample_once() -> usize {
    if !crate::enabled() {
        return 0;
    }
    SAMPLES.fetch_add(1, Ordering::Relaxed);
    let mut observed = 0;
    for stack in span::live_stacks() {
        let frames = stack.snapshot();
        let Some(&leaf) = frames.last() else {
            continue; // idle thread
        };
        observed += 1;
        let folded = frames.join(";");
        if crate::tracing_enabled() {
            crate::trace::push_sample_event(leaf, folded.clone(), stack.tid);
        }
        *folded_counts()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(folded)
            .or_insert(0) += 1;
    }
    observed
}

/// The aggregated profile as flamegraph-ready collapsed-stack text: one
/// `frame;frame count` line per distinct stack, lexicographically sorted
/// (so output is deterministic for a given multiset of samples). Feed it
/// straight to `flamegraph.pl` / `inferno-flamegraph`, or read it raw —
/// the biggest counts are where the time goes.
pub fn folded() -> String {
    let counts = folded_counts().lock().unwrap_or_else(|e| e.into_inner());
    let mut out = String::new();
    for (stack, n) in counts.iter() {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&n.to_string());
        out.push('\n');
    }
    out
}

/// Clears the aggregated profile and the sample counter (the sampling
/// rate is untouched). Used by tests and by operators who want a fresh
/// window.
pub fn reset() {
    folded_counts()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
    SAMPLES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::exclusive;

    #[test]
    fn sample_once_folds_live_stacks() {
        let _g = exclusive();
        crate::set_enabled(true);
        reset();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let worker = std::thread::spawn(move || {
            let _outer = crate::span!("test.profile.outer");
            let _inner = crate::span!("test.profile.inner");
            ready_tx.send(()).unwrap();
            let _ = done_rx.recv();
        });
        ready_rx.recv().unwrap();
        let observed = sample_once();
        assert!(observed >= 1, "worker stack must be sampled");
        let text = folded();
        assert!(
            text.contains("test.profile.outer;test.profile.inner "),
            "folded output misses the nested stack: {text:?}"
        );
        done_tx.send(()).unwrap();
        worker.join().unwrap();
        crate::set_enabled(false);
        reset();
    }

    #[test]
    fn disabled_sampling_is_inert() {
        let _g = exclusive();
        crate::set_enabled(false);
        reset();
        assert_eq!(sample_once(), 0);
        assert_eq!(folded(), "");
        assert_eq!(samples(), 0);
    }

    #[test]
    fn folded_counts_accumulate_and_sort() {
        let _g = exclusive();
        crate::set_enabled(true);
        reset();
        {
            let _a = crate::span!("test.profile.aaa");
            sample_once();
            sample_once();
        }
        {
            let _b = crate::span!("test.profile.bbb");
            sample_once();
        }
        crate::set_enabled(false);
        let text = folded();
        let ours: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("test.profile."))
            .collect();
        assert_eq!(
            ours,
            vec!["test.profile.aaa 2", "test.profile.bbb 1"],
            "{text:?}"
        );
        reset();
    }

    #[test]
    fn rate_is_clamped() {
        set_rate(1_000_000);
        assert_eq!(rate(), MAX_HZ);
        set_rate(0);
        assert_eq!(rate(), 0);
    }
}
