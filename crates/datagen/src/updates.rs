//! Batch-update (`ΔD`) generators (§3.1, §7.1).
//!
//! The paper denotes a batch addition (deletion) of `Y%` of `|D|` graphs as
//! `+Y%` (`−Y%`). Two flavours of additions matter:
//!
//! * [`growth_batch`] — more graphs from the *same* distribution: graphlet
//!   frequencies barely move, so MIDAS should classify the modification as
//!   *minor* (Type 2).
//! * [`novel_family_batch`] — graphs dominated by a previously unseen motif
//!   family (the boronic-ester scenario of Example 1.2): graphlet and label
//!   mass shifts, so the modification should be *major* (Type 1).

use crate::molecule::{MoleculeGenerator, MoleculeParams};
use crate::motifs::{MotifKind, MotifMix};
use midas_graph::{BatchUpdate, GraphDb, GraphId, LabeledGraph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates `n` insertions drawn from the same molecule distribution.
pub fn growth_batch(params: &MoleculeParams, n: usize, seed: u64) -> BatchUpdate {
    let mut generator = MoleculeGenerator::new(params.clone(), seed);
    BatchUpdate::insert_only(generator.generate_many(n))
}

/// Generates `n` insertions dominated by `family` — a distribution-shifting
/// batch like the 6 375 boronic esters of Example 1.2.
///
/// A novel compound family differs from the incumbent chemistry in two
/// ways: its functional group (`family`, fused into **every** graph) and
/// its scaffold topology. We give the scaffold an sp3-rich bridged-ring
/// character (cyclopropane / fused-bicycle motifs), which concentrates new
/// graphlet mass in the triangle / tailed-triangle / diamond dimensions —
/// exactly the drift MIDAS's selective-maintenance test watches for
/// (§3.4). Base datasets are ring-6/chain-dominated, so these dimensions
/// are near-empty before the batch.
pub fn novel_family_batch(family: MotifKind, n: usize, seed: u64) -> BatchUpdate {
    use crate::molecule::fuse_motif;
    use midas_graph::LabeledGraph as G;
    let params = MoleculeParams {
        backbone: (2, 4),
        motifs: (1, 2),
        ring_closure_prob: 0.0,
        hetero_prob: 0.1,
        mix: MotifMix::new(&[
            (MotifKind::Cyclopropane, 2.0),
            (MotifKind::FusedBicycle, 2.0),
        ]),
    };
    let mut generator = MoleculeGenerator::new(params, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let family_motif = family.build();
    let graphs: Vec<G> = (0..n)
        .map(|_| {
            let mut g = generator.generate();
            // Every member of the family carries the family motif.
            let anchor = rng.random_range(0..g.vertex_count()) as u32;
            fuse_motif(&mut g, &family_motif, anchor, &mut rng);
            g
        })
        .collect();
    BatchUpdate::insert_only(graphs)
}

/// Selects `n` random graphs of `db` for deletion (a `−Y%` batch).
pub fn deletion_batch(db: &GraphDb, n: usize, seed: u64) -> BatchUpdate {
    let ids: Vec<GraphId> = db.ids().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = Vec::with_capacity(n.min(ids.len()));
    let mut pool = ids;
    for _ in 0..n.min(pool.len()) {
        let idx = rng.random_range(0..pool.len());
        chosen.push(pool.swap_remove(idx));
    }
    BatchUpdate::delete_only(chosen)
}

/// Convenience: a `+Y%` batch relative to the current database size.
pub fn growth_percent(
    params: &MoleculeParams,
    db: &GraphDb,
    percent: f64,
    seed: u64,
) -> BatchUpdate {
    let n = ((db.len() as f64) * percent / 100.0).round() as usize;
    growth_batch(params, n, seed)
}

/// Convenience: a `−Y%` batch relative to the current database size.
pub fn deletion_percent(db: &GraphDb, percent: f64, seed: u64) -> BatchUpdate {
    let n = ((db.len() as f64) * percent / 100.0).round() as usize;
    deletion_batch(db, n, seed)
}

/// The novel-family motif used throughout examples and experiments: the
/// boronic ester of Example 1.2.
pub fn boronic_ester_family() -> MotifKind {
    MotifKind::BoronicEster
}

/// Checks whether a graph contains the given motif family (used by tests
/// and by the balanced query generator).
pub fn contains_family(graph: &LabeledGraph, family: MotifKind) -> bool {
    let motif = family.build();
    midas_graph::isomorphism::is_subgraph_of(&motif.graph, graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetKind, DatasetSpec};

    #[test]
    fn growth_batch_matches_distribution_size() {
        let params = DatasetKind::EmolLike.params();
        let b = growth_batch(&params, 12, 5);
        assert_eq!(b.insert.len(), 12);
        assert!(b.delete.is_empty());
    }

    #[test]
    fn novel_family_graphs_contain_the_family() {
        let b = novel_family_batch(MotifKind::BoronicEster, 10, 5);
        for g in &b.insert {
            assert!(contains_family(g, MotifKind::BoronicEster));
        }
    }

    #[test]
    fn deletion_batch_picks_distinct_live_ids() {
        let ds = DatasetSpec::new(DatasetKind::EmolLike, 20, 1).generate();
        let b = deletion_batch(&ds.db, 5, 2);
        assert_eq!(b.delete.len(), 5);
        let mut ids = b.delete.clone();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 5, "no duplicates");
        assert!(ids.iter().all(|&id| ds.db.contains(id)));
    }

    #[test]
    fn deletion_batch_caps_at_db_size() {
        let ds = DatasetSpec::new(DatasetKind::EmolLike, 3, 1).generate();
        let b = deletion_batch(&ds.db, 10, 2);
        assert_eq!(b.delete.len(), 3);
    }

    #[test]
    fn percent_helpers() {
        let ds = DatasetSpec::new(DatasetKind::EmolLike, 40, 1).generate();
        let params = DatasetKind::EmolLike.params();
        assert_eq!(growth_percent(&params, &ds.db, 10.0, 3).insert.len(), 4);
        assert_eq!(deletion_percent(&ds.db, 25.0, 3).delete.len(), 10);
    }

    #[test]
    fn novel_family_shifts_graphlet_distribution() {
        use midas_graph::graphlets::{count_graphlets, GraphletCounts};
        let ds = DatasetSpec::new(DatasetKind::EmolLike, 60, 1).generate();
        let mut base = GraphletCounts::default();
        for (_, g) in ds.db.iter() {
            base.add(&count_graphlets(g));
        }
        // Same-distribution growth: small drift.
        let grow = growth_batch(&DatasetKind::EmolLike.params(), 30, 9);
        let mut grown = base;
        for g in &grow.insert {
            grown.add(&count_graphlets(g));
        }
        let drift_minor = base
            .distribution()
            .euclidean_distance(&grown.distribution());
        // Novel family: large drift.
        let novel = novel_family_batch(MotifKind::BoronicEster, 30, 9);
        let mut shifted = base;
        for g in &novel.insert {
            shifted.add(&count_graphlets(g));
        }
        let drift_major = base
            .distribution()
            .euclidean_distance(&shifted.distribution());
        assert!(
            drift_major > drift_minor,
            "novel family must shift graphlets more: {drift_major} vs {drift_minor}"
        );
    }
}
