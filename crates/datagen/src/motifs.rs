//! Functional-group motifs — the structural vocabulary of generated
//! molecules.
//!
//! Each [`Motif`] is a small labeled graph with designated *attachment
//! points*: vertices that the generator may fuse onto a molecule backbone.
//! Motif repetition across a dataset is what gives rise to frequent closed
//! trees and high-coverage canned patterns, mirroring how functional groups
//! recur across PubChem compounds (Example 1.1's boronic acid / Figure 2's
//! canned patterns).

use crate::vocabulary::{atom, Atom};
use midas_graph::{GraphBuilder, LabeledGraph, VertexId};

/// The built-in motif families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MotifKind {
    /// Benzene-like carbon 6-ring.
    BenzeneRing,
    /// Cyclopentane-like carbon 5-ring.
    FiveRing,
    /// Pyridine-like ring: five carbons and a nitrogen.
    PyridineRing,
    /// Thiophene-like ring: four carbons and a sulfur.
    ThiopheneRing,
    /// Carboxyl group: `C` bonded to two `O`.
    Carboxyl,
    /// Amine group: `C–N` with two `H` on the nitrogen.
    Amine,
    /// Amide group: `C(–O)(–N)`.
    Amide,
    /// Hydroxyl: `O–H` hanging off a carbon.
    Hydroxyl,
    /// Thiol: `C–S–H`.
    Thiol,
    /// Phosphate: `P` bonded to three `O`.
    Phosphate,
    /// Halide decoration: `C–Cl`.
    Chloride,
    /// Halide decoration: `C–F`.
    Fluoride,
    /// Boronic acid: `C–B(–O–H)(–O–H)` — Example 1.1's functional group.
    BoronicAcid,
    /// Boronic ester: `C–B(–O–C)(–O–C)` ring-closed — the novel family of
    /// Example 1.2 whose arrival makes a modification *major*.
    BoronicEster,
    /// Short carbon chain `C–C–C`.
    Chain,
    /// Cyclopropane: a carbon triangle — the smallest sp3 ring. Rare in
    /// the base datasets, so batches rich in it shift the graphlet
    /// distribution (triangles / tailed triangles) markedly.
    Cyclopropane,
    /// Bicyclobutane-like fused pair of triangles (a diamond graphlet) —
    /// the strongest topology marker of a novel scaffold family.
    FusedBicycle,
}

impl MotifKind {
    /// Every motif kind.
    pub const ALL: [MotifKind; 17] = [
        MotifKind::Cyclopropane,
        MotifKind::FusedBicycle,
        MotifKind::BenzeneRing,
        MotifKind::FiveRing,
        MotifKind::PyridineRing,
        MotifKind::ThiopheneRing,
        MotifKind::Carboxyl,
        MotifKind::Amine,
        MotifKind::Amide,
        MotifKind::Hydroxyl,
        MotifKind::Thiol,
        MotifKind::Phosphate,
        MotifKind::Chloride,
        MotifKind::Fluoride,
        MotifKind::BoronicAcid,
        MotifKind::BoronicEster,
        MotifKind::Chain,
    ];

    /// Builds the motif graph.
    pub fn build(self) -> Motif {
        let (c, o, n, s, p, cl, f, b, h) = (
            atom(Atom::C),
            atom(Atom::O),
            atom(Atom::N),
            atom(Atom::S),
            atom(Atom::P),
            atom(Atom::Cl),
            atom(Atom::F),
            atom(Atom::B),
            atom(Atom::H),
        );
        let (graph, attach) = match self {
            MotifKind::BenzeneRing => {
                let g = GraphBuilder::new()
                    .vertices(&[c; 6])
                    .path(&[0, 1, 2, 3, 4, 5])
                    .edge(5, 0)
                    .build();
                (g, vec![0, 2, 4])
            }
            MotifKind::FiveRing => {
                let g = GraphBuilder::new()
                    .vertices(&[c; 5])
                    .path(&[0, 1, 2, 3, 4])
                    .edge(4, 0)
                    .build();
                (g, vec![0, 2])
            }
            MotifKind::PyridineRing => {
                let g = GraphBuilder::new()
                    .vertices(&[n, c, c, c, c, c])
                    .path(&[0, 1, 2, 3, 4, 5])
                    .edge(5, 0)
                    .build();
                (g, vec![2, 4])
            }
            MotifKind::ThiopheneRing => {
                let g = GraphBuilder::new()
                    .vertices(&[s, c, c, c, c])
                    .path(&[0, 1, 2, 3, 4])
                    .edge(4, 0)
                    .build();
                (g, vec![2, 3])
            }
            MotifKind::Carboxyl => {
                let g = GraphBuilder::new()
                    .vertices(&[c, o, o])
                    .edge(0, 1)
                    .edge(0, 2)
                    .build();
                (g, vec![0])
            }
            MotifKind::Amine => {
                let g = GraphBuilder::new()
                    .vertices(&[c, n, h, h])
                    .edge(0, 1)
                    .edge(1, 2)
                    .edge(1, 3)
                    .build();
                (g, vec![0])
            }
            MotifKind::Amide => {
                let g = GraphBuilder::new()
                    .vertices(&[c, o, n, h])
                    .edge(0, 1)
                    .edge(0, 2)
                    .edge(2, 3)
                    .build();
                (g, vec![0, 2])
            }
            MotifKind::Hydroxyl => {
                let g = GraphBuilder::new()
                    .vertices(&[c, o, h])
                    .edge(0, 1)
                    .edge(1, 2)
                    .build();
                (g, vec![0])
            }
            MotifKind::Thiol => {
                let g = GraphBuilder::new()
                    .vertices(&[c, s, h])
                    .edge(0, 1)
                    .edge(1, 2)
                    .build();
                (g, vec![0])
            }
            MotifKind::Phosphate => {
                let g = GraphBuilder::new()
                    .vertices(&[p, o, o, o])
                    .edge(0, 1)
                    .edge(0, 2)
                    .edge(0, 3)
                    .build();
                (g, vec![1])
            }
            MotifKind::Chloride => {
                let g = GraphBuilder::new().vertices(&[c, cl]).edge(0, 1).build();
                (g, vec![0])
            }
            MotifKind::Fluoride => {
                let g = GraphBuilder::new().vertices(&[c, f]).edge(0, 1).build();
                (g, vec![0])
            }
            MotifKind::BoronicAcid => {
                // C–B(–O–H)(–O–H), attach at the carbon.
                let g = GraphBuilder::new()
                    .vertices(&[c, b, o, o, h, h])
                    .edge(0, 1)
                    .edge(1, 2)
                    .edge(1, 3)
                    .edge(2, 4)
                    .edge(3, 5)
                    .build();
                (g, vec![0])
            }
            MotifKind::BoronicEster => {
                // The pinacol-ester-like ring: B bonded to two O, each O to a
                // C, and the two C bonded — a 5-ring B-O-C-C-O.
                let g = GraphBuilder::new()
                    .vertices(&[c, b, o, o, c, c])
                    .edge(0, 1)
                    .edge(1, 2)
                    .edge(1, 3)
                    .edge(2, 4)
                    .edge(3, 5)
                    .edge(4, 5)
                    .build();
                (g, vec![0, 4])
            }
            MotifKind::Chain => {
                let g = GraphBuilder::new()
                    .vertices(&[c, c, c])
                    .path(&[0, 1, 2])
                    .build();
                (g, vec![0, 2])
            }
            MotifKind::Cyclopropane => {
                let g = GraphBuilder::new()
                    .vertices(&[c, c, c])
                    .edge(0, 1)
                    .edge(1, 2)
                    .edge(0, 2)
                    .build();
                (g, vec![0])
            }
            MotifKind::FusedBicycle => {
                // Two triangles sharing the (0, 1) edge.
                let g = GraphBuilder::new()
                    .vertices(&[c, c, c, c])
                    .edge(0, 1)
                    .edge(1, 2)
                    .edge(0, 2)
                    .edge(1, 3)
                    .edge(0, 3)
                    .build();
                (g, vec![2, 3])
            }
        };
        Motif {
            kind: self,
            graph,
            attachment_points: attach,
        }
    }
}

/// A motif graph with its attachment points.
#[derive(Debug, Clone)]
pub struct Motif {
    /// Which family this motif belongs to.
    pub kind: MotifKind,
    /// The motif structure.
    pub graph: LabeledGraph,
    /// Vertices the generator may fuse to the backbone.
    pub attachment_points: Vec<VertexId>,
}

/// A weighted mix of motifs — the "chemistry" of a dataset.
#[derive(Debug, Clone)]
pub struct MotifMix {
    entries: Vec<(MotifKind, f64)>,
}

impl MotifMix {
    /// Builds a mix from `(kind, weight)` pairs; non-positive weights are
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if no entry has positive weight.
    pub fn new(entries: &[(MotifKind, f64)]) -> Self {
        let entries: Vec<(MotifKind, f64)> =
            entries.iter().copied().filter(|&(_, w)| w > 0.0).collect();
        assert!(!entries.is_empty(), "motif mix needs a positive weight");
        MotifMix { entries }
    }

    /// The `(kind, weight)` entries.
    pub fn entries(&self) -> &[(MotifKind, f64)] {
        &self.entries
    }

    /// Samples a motif kind proportionally to weight, using a uniform draw
    /// `u ∈ [0, 1)`.
    pub fn sample(&self, u: f64) -> MotifKind {
        let total: f64 = self.entries.iter().map(|&(_, w)| w).sum();
        let mut cut = u.clamp(0.0, 1.0 - f64::EPSILON) * total;
        for &(kind, w) in &self.entries {
            if cut < w {
                return kind;
            }
            cut -= w;
        }
        self.entries.last().expect("non-empty").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_motifs_are_connected_simple_graphs() {
        for kind in MotifKind::ALL {
            let m = kind.build();
            assert!(m.graph.is_connected(), "{kind:?} must be connected");
            assert!(
                !m.attachment_points.is_empty(),
                "{kind:?} needs attach points"
            );
            for &ap in &m.attachment_points {
                assert!(
                    (ap as usize) < m.graph.vertex_count(),
                    "{kind:?} attach in range"
                );
            }
        }
    }

    #[test]
    fn boronic_acid_matches_paper_shape() {
        let m = MotifKind::BoronicAcid.build();
        // One B, two O, two H, one C.
        let mut labels = m.graph.sorted_labels();
        labels.dedup();
        assert!(labels.contains(&atom(Atom::B)));
        assert_eq!(m.graph.vertex_count(), 6);
        assert_eq!(m.graph.edge_count(), 5);
    }

    #[test]
    fn boronic_ester_contains_a_ring() {
        let m = MotifKind::BoronicEster.build();
        // |E| = |V| means exactly one cycle.
        assert_eq!(m.graph.edge_count(), m.graph.vertex_count());
    }

    #[test]
    fn mix_sampling_respects_weights() {
        let mix = MotifMix::new(&[(MotifKind::Chain, 1.0), (MotifKind::Carboxyl, 0.0)]);
        // Zero-weight entries are dropped entirely.
        assert_eq!(mix.entries().len(), 1);
        for u in [0.0, 0.3, 0.9999] {
            assert_eq!(mix.sample(u), MotifKind::Chain);
        }
        let mix2 = MotifMix::new(&[(MotifKind::Chain, 1.0), (MotifKind::Carboxyl, 3.0)]);
        assert_eq!(mix2.sample(0.1), MotifKind::Chain);
        assert_eq!(mix2.sample(0.5), MotifKind::Carboxyl);
        assert_eq!(mix2.sample(0.99), MotifKind::Carboxyl);
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn empty_mix_panics() {
        MotifMix::new(&[(MotifKind::Chain, 0.0)]);
    }
}
