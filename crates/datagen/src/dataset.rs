//! Dataset presets mirroring the paper's evaluation datasets (§7.1).
//!
//! `AIDS`, `PubChem` and `eMolecules` differ in compound size and chemistry;
//! the presets here differ in backbone range and motif mix the same way.
//! Sizes are *scaled down* from the paper (thousands instead of 25K–1M) so
//! every experiment runs at laptop scale; see DESIGN.md §3.

use crate::molecule::{MoleculeGenerator, MoleculeParams};
use crate::motifs::{MotifKind, MotifMix};
use midas_graph::{GraphDb, Interner};

/// Which paper dataset a preset imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// AIDS antiviral screen: ring-heavy, nitrogen/sulfur-rich compounds.
    AidsLike,
    /// PubChem: a broad organic mix.
    PubchemLike,
    /// eMolecules: smaller, simpler building-block compounds.
    EmolLike,
}

impl DatasetKind {
    /// The molecule parameters for this preset.
    pub fn params(self) -> MoleculeParams {
        match self {
            DatasetKind::AidsLike => MoleculeParams {
                backbone: (4, 9),
                motifs: (2, 4),
                ring_closure_prob: 0.35,
                hetero_prob: 0.25,
                mix: MotifMix::new(&[
                    (MotifKind::BenzeneRing, 3.0),
                    (MotifKind::PyridineRing, 2.5),
                    (MotifKind::ThiopheneRing, 1.5),
                    (MotifKind::Amine, 2.5),
                    (MotifKind::Amide, 2.0),
                    (MotifKind::Thiol, 1.5),
                    (MotifKind::Hydroxyl, 1.5),
                    (MotifKind::Chain, 1.0),
                ]),
            },
            DatasetKind::PubchemLike => MoleculeParams {
                backbone: (3, 8),
                motifs: (1, 4),
                ring_closure_prob: 0.25,
                hetero_prob: 0.2,
                mix: MotifMix::new(&[
                    (MotifKind::BenzeneRing, 3.0),
                    (MotifKind::FiveRing, 1.0),
                    (MotifKind::Carboxyl, 2.5),
                    (MotifKind::Amine, 2.0),
                    (MotifKind::Hydroxyl, 2.5),
                    (MotifKind::Chain, 3.0),
                    (MotifKind::Chloride, 0.8),
                    (MotifKind::Fluoride, 0.5),
                    (MotifKind::Phosphate, 0.7),
                    (MotifKind::BoronicAcid, 0.4),
                ]),
            },
            DatasetKind::EmolLike => MoleculeParams {
                backbone: (2, 5),
                motifs: (1, 2),
                ring_closure_prob: 0.15,
                hetero_prob: 0.15,
                mix: MotifMix::new(&[
                    (MotifKind::BenzeneRing, 2.0),
                    (MotifKind::Carboxyl, 1.5),
                    (MotifKind::Amine, 1.5),
                    (MotifKind::Hydroxyl, 2.0),
                    (MotifKind::Chain, 3.0),
                    (MotifKind::Chloride, 1.0),
                ]),
            },
        }
    }

    /// Human-readable name matching the paper's dataset naming
    /// (`<Y><X>` with Y the dataset and X the size, e.g. `AIDS25K`).
    pub fn display_name(self, size: usize) -> String {
        let base = match self {
            DatasetKind::AidsLike => "AIDS",
            DatasetKind::PubchemLike => "PubChem",
            DatasetKind::EmolLike => "eMol",
        };
        if size >= 1000 && size.is_multiple_of(1000) {
            format!("{base}{}K", size / 1000)
        } else {
            format!("{base}{size}")
        }
    }
}

/// A full dataset specification.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Which preset to imitate.
    pub kind: DatasetKind,
    /// Number of data graphs to generate.
    pub size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Creates a spec.
    pub fn new(kind: DatasetKind, size: usize, seed: u64) -> Self {
        DatasetSpec { kind, size, seed }
    }

    /// Generates the dataset.
    pub fn generate(&self) -> GeneratedDataset {
        let mut generator = MoleculeGenerator::new(self.kind.params(), self.seed);
        let db = GraphDb::from_graphs(generator.generate_many(self.size));
        GeneratedDataset {
            name: self.kind.display_name(self.size),
            kind: self.kind,
            db,
            interner: crate::vocabulary::vocabulary(),
        }
    }
}

/// A generated dataset: database plus label interner and provenance.
#[derive(Debug)]
pub struct GeneratedDataset {
    /// Paper-style name, e.g. `AIDS1K`.
    pub name: String,
    /// The preset used.
    pub kind: DatasetKind,
    /// The data graphs.
    pub db: GraphDb,
    /// Labels for display.
    pub interner: Interner,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_produces_requested_size() {
        let ds = DatasetSpec::new(DatasetKind::EmolLike, 25, 3).generate();
        assert_eq!(ds.db.len(), 25);
        assert_eq!(ds.name, "eMol25");
        assert!(ds.db.iter().all(|(_, g)| g.is_connected()));
    }

    #[test]
    fn display_names_follow_paper_convention() {
        assert_eq!(DatasetKind::AidsLike.display_name(25_000), "AIDS25K");
        assert_eq!(DatasetKind::PubchemLike.display_name(23_000), "PubChem23K");
        assert_eq!(DatasetKind::EmolLike.display_name(500), "eMol500");
    }

    #[test]
    fn kinds_produce_different_chemistry() {
        let aids = DatasetSpec::new(DatasetKind::AidsLike, 30, 1).generate();
        let emol = DatasetSpec::new(DatasetKind::EmolLike, 30, 1).generate();
        let avg = |db: &GraphDb| {
            db.iter().map(|(_, g)| g.edge_count()).sum::<usize>() as f64 / db.len() as f64
        };
        assert!(
            avg(&aids.db) > avg(&emol.db),
            "AIDS-like compounds are larger than eMol-like ones"
        );
    }

    #[test]
    fn deterministic_generation() {
        let a = DatasetSpec::new(DatasetKind::PubchemLike, 10, 9).generate();
        let b = DatasetSpec::new(DatasetKind::PubchemLike, 10, 9).generate();
        let ga: Vec<_> = a.db.iter().map(|(_, g)| g.clone()).collect();
        let gb: Vec<_> = b.db.iter().map(|(_, g)| g.clone()).collect();
        assert_eq!(ga, gb);
    }
}
