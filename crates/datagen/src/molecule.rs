//! The molecule generator: backbones decorated with motifs.
//!
//! A molecule is generated as (1) a carbon backbone chain, (2) a number of
//! motifs fused onto random backbone atoms, (3) optional ring closures.
//! The result is a connected, simple, labeled graph in the size range of
//! PubChem/AIDS compounds.

use crate::motifs::{Motif, MotifKind, MotifMix};
use midas_graph::{LabeledGraph, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// Shape parameters for generated molecules.
#[derive(Debug, Clone)]
pub struct MoleculeParams {
    /// Backbone length range (number of carbons), inclusive.
    pub backbone: (usize, usize),
    /// Number of motifs fused per molecule, inclusive range.
    pub motifs: (usize, usize),
    /// Probability of one extra ring-closure edge on the backbone.
    pub ring_closure_prob: f64,
    /// Probability that a backbone atom is a heteroatom (N/O/S) rather
    /// than carbon. Heteroatom interruptions keep label-generic carbon
    /// chains from covering every molecule, mirroring real repositories
    /// where subgraph coverage saturates below 1 (§7.3's scov 0.94–0.98).
    pub hetero_prob: f64,
    /// The motif mix.
    pub mix: MotifMix,
}

impl MoleculeParams {
    /// A broad default resembling mid-sized organic compounds.
    pub fn organic_default() -> Self {
        MoleculeParams {
            backbone: (3, 8),
            motifs: (1, 4),
            ring_closure_prob: 0.25,
            hetero_prob: 0.2,
            mix: MotifMix::new(&[
                (MotifKind::BenzeneRing, 3.0),
                (MotifKind::FiveRing, 1.0),
                (MotifKind::Carboxyl, 2.0),
                (MotifKind::Amine, 2.0),
                (MotifKind::Hydroxyl, 2.5),
                (MotifKind::Chain, 3.0),
                (MotifKind::Chloride, 0.8),
            ]),
        }
    }
}

/// Seeded generator producing an endless, reproducible molecule stream.
#[derive(Debug)]
pub struct MoleculeGenerator {
    params: MoleculeParams,
    motif_cache: HashMap<MotifKind, Motif>,
    rng: StdRng,
}

impl MoleculeGenerator {
    /// Creates a generator with the given parameters and seed.
    pub fn new(params: MoleculeParams, seed: u64) -> Self {
        MoleculeGenerator {
            params,
            motif_cache: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &MoleculeParams {
        &self.params
    }

    /// Generates one molecule.
    pub fn generate(&mut self) -> LabeledGraph {
        let backbone_len = self
            .rng
            .random_range(self.params.backbone.0..=self.params.backbone.1)
            .max(1);
        use crate::vocabulary::{atom, Atom};
        let mut g = LabeledGraph::new();
        for _ in 0..backbone_len {
            let label = if self.rng.random_bool(self.params.hetero_prob) {
                match self.rng.random_range(0..3u8) {
                    0 => atom(Atom::N),
                    1 => atom(Atom::O),
                    _ => atom(Atom::S),
                }
            } else {
                atom(Atom::C)
            };
            g.add_vertex(label);
        }
        for i in 1..backbone_len as VertexId {
            g.add_edge(i - 1, i);
        }
        // Optional backbone ring closure (length >= 4 keeps it simple).
        if backbone_len >= 4 && self.rng.random_bool(self.params.ring_closure_prob) {
            g.add_edge(0, backbone_len as VertexId - 1);
        }
        let motif_count = self
            .rng
            .random_range(self.params.motifs.0..=self.params.motifs.1);
        for _ in 0..motif_count {
            let u: f64 = self.rng.random();
            let kind = self.params.mix.sample(u);
            let anchor = self.rng.random_range(0..backbone_len) as VertexId;
            let motif = self
                .motif_cache
                .entry(kind)
                .or_insert_with(|| kind.build())
                .clone();
            fuse_motif(&mut g, &motif, anchor, &mut self.rng);
        }
        g
    }

    /// Generates `n` molecules.
    pub fn generate_many(&mut self, n: usize) -> Vec<LabeledGraph> {
        (0..n).map(|_| self.generate()).collect()
    }
}

/// Fuses `motif` onto `graph` by identifying one of its attachment points
/// with `anchor`; all other motif vertices are copied in fresh.
///
/// If the attachment point's label differs from the anchor's label, the
/// motif is connected by a bridging edge instead of vertex identification
/// (so labels are never rewritten).
pub fn fuse_motif(
    graph: &mut LabeledGraph,
    motif: &Motif,
    anchor: VertexId,
    rng: &mut StdRng,
) -> Vec<VertexId> {
    let ap_idx = rng.random_range(0..motif.attachment_points.len());
    let ap = motif.attachment_points[ap_idx];
    let identify = motif.graph.label(ap) == graph.label(anchor);
    let mut mapping: Vec<VertexId> = Vec::with_capacity(motif.graph.vertex_count());
    for v in motif.graph.vertices() {
        if identify && v == ap {
            mapping.push(anchor);
        } else {
            mapping.push(graph.add_vertex(motif.graph.label(v)));
        }
    }
    for &(u, v) in motif.graph.edges() {
        let (mu, mv) = (mapping[u as usize], mapping[v as usize]);
        if !graph.has_edge(mu, mv) {
            graph.add_edge(mu, mv);
        }
    }
    if !identify {
        graph.add_edge(anchor, mapping[ap as usize]);
    }
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motifs::MotifKind;

    #[test]
    fn generated_molecules_are_connected_and_sized() {
        let mut generator = MoleculeGenerator::new(MoleculeParams::organic_default(), 7);
        for _ in 0..50 {
            let g = generator.generate();
            assert!(g.is_connected());
            assert!(g.vertex_count() >= 3);
            assert!(g.edge_count() >= 2);
            assert!(g.vertex_count() <= 60, "molecules stay small");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = MoleculeGenerator::new(MoleculeParams::organic_default(), 42).generate_many(10);
        let b = MoleculeGenerator::new(MoleculeParams::organic_default(), 42).generate_many(10);
        assert_eq!(a, b);
        let c = MoleculeGenerator::new(MoleculeParams::organic_default(), 43).generate_many(10);
        assert_ne!(a, c);
    }

    #[test]
    fn fuse_identifies_matching_labels() {
        let mut rng = StdRng::seed_from_u64(1);
        let carbon = crate::vocabulary::atom(crate::vocabulary::Atom::C);
        let mut g = LabeledGraph::new();
        g.add_vertex(carbon);
        let motif = MotifKind::Carboxyl.build(); // attach point is the C
        let before = g.vertex_count();
        fuse_motif(&mut g, &motif, 0, &mut rng);
        // The carboxyl C is identified with the anchor: only O, O added.
        assert_eq!(g.vertex_count(), before + motif.graph.vertex_count() - 1);
        assert!(g.is_connected());
    }

    #[test]
    fn fuse_bridges_mismatched_labels() {
        let mut rng = StdRng::seed_from_u64(1);
        let oxygen = crate::vocabulary::atom(crate::vocabulary::Atom::O);
        let mut g = LabeledGraph::new();
        g.add_vertex(oxygen);
        let motif = MotifKind::Carboxyl.build(); // attach point label C != O
        fuse_motif(&mut g, &motif, 0, &mut rng);
        assert_eq!(g.vertex_count(), 1 + motif.graph.vertex_count());
        assert!(g.is_connected());
    }

    #[test]
    fn motif_heavy_mix_produces_motif_subgraphs() {
        let params = MoleculeParams {
            backbone: (3, 3),
            motifs: (2, 2),
            ring_closure_prob: 0.0,
            hetero_prob: 0.0,
            mix: MotifMix::new(&[(MotifKind::Carboxyl, 1.0)]),
        };
        let mut generator = MoleculeGenerator::new(params, 5);
        let g = generator.generate();
        let motif = MotifKind::Carboxyl.build();
        assert!(
            midas_graph::isomorphism::is_subgraph_of(&motif.graph, &g),
            "generated molecule must contain its motif"
        );
    }
}
