//! # midas-datagen
//!
//! Synthetic chemical-compound-like graph databases, batch updates, and
//! query workloads for the MIDAS experiments (§7.1).
//!
//! The paper evaluates on AIDS, PubChem and eMolecules — repositories of
//! small labeled molecule graphs. Those datasets are not redistributable
//! here, so this crate generates structurally equivalent workloads: graphs
//! are assembled from *functional-group motifs* (rings, chains, carboxyls,
//! amines, boron groups, …) over a skewed atom-label vocabulary. That
//! reproduces the three properties MIDAS actually depends on (see
//! DESIGN.md §3):
//!
//! 1. many small labeled graphs,
//! 2. heavy structural repetition (shared motifs ⇒ frequent closed trees
//!    and high-coverage canned patterns),
//! 3. skewed label frequencies.
//!
//! [`updates`] generates `ΔD` batches — including *novel-family* insertions
//! that reproduce the boronic-ester distribution shift of Example 1.2 — and
//! [`queries`] draws random connected subgraph queries, balanced over `Δ⁺`
//! exactly as §7.1 prescribes.
//!
//! Everything is seeded; the same spec always yields the same dataset.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dataset;
pub mod molecule;
pub mod motifs;
pub mod queries;
pub mod updates;
pub mod vocabulary;

pub use dataset::{DatasetKind, DatasetSpec, GeneratedDataset};
pub use molecule::{MoleculeGenerator, MoleculeParams};
pub use motifs::{Motif, MotifKind, MotifMix};
pub use queries::{balanced_query_set, query_set, random_connected_subgraph};
pub use updates::{deletion_batch, growth_batch, novel_family_batch};
pub use vocabulary::{atom, vocabulary, Atom};
