//! # midas-oracle
//!
//! Differential correctness harness for the MIDAS stack: every fast path
//! in the workspace is cross-checked against its slow reference twin on a
//! seeded, fully reproducible world from `midas-datagen`.
//!
//! The seven checks ([`Oracle::run_all`]):
//!
//! 1. **`kernel_vs_serial`** — [`MatchKernel`] / `EmbeddingCache` counts
//!    and containment vs the serial VF2 walkers
//!    ([`count_embeddings`] / [`is_subgraph_of`]), including memo-hit
//!    rounds and the invalidation/generation boundary (a graph replaced
//!    under the same [`GraphId`]).
//! 2. **`incremental_mining`** — `FctState::apply_batch` vs re-mining the
//!    post-batch database from scratch, over growth and deletion batches.
//! 3. **`graphlet_monitor`** — `GraphletMonitor` add/remove streams
//!    (including id re-adds, bogus removes, and double removes) vs
//!    recounting graphlets over a reference world.
//! 4. **`ged_bounds`** — the GED lower-bound chain
//!    `label ≤ tight ≤ exact` on random and adversarial boundary pairs.
//! 5. **`multi_scan_swap`** — kernel-backed vs serial-reference swap runs
//!    must agree exactly; set measures guarded by sw3–sw5 must not
//!    degrade; a single accepted swap must replay sw1 against
//!    brute-force coverage.
//! 6. **`plan_vs_vf2`** — the plan-compiled CSR matcher
//!    ([`midas_graph::plan`]) vs the VF2 reference on random pairs:
//!    capped counts at several caps, coverage booleans, and the full
//!    embedding *sets* (as sorted mappings) must agree exactly.
//! 7. **`serve_vs_library`** — the `midas-serve` daemon vs an in-process
//!    [`Midas`] fed the same bootstrap graphs and the same explicit
//!    batch sequence through sync updates: the served pattern set,
//!    epoch, and database size must be **bit-identical** at every step.
//!
//! Divergences are reported as structured JSON (reusing `midas_obs::json`)
//! with the offending graph pair **minimized** by greedy vertex removal
//! ([`minimize_pair`]), so a failure lands as the smallest witness the
//! shrinker can reach rather than a 40-vertex molecule.
//!
//! [`fault_containment_pass`] additionally proves the exec-layer fault
//! isolation end to end: it arms the deterministic injector behind
//! `MIDAS_FAULT=task:N`, drives a maintenance batch through [`Midas`],
//! and requires the worker panic to surface as a contained
//! [`KernelError`] on the report — process alive, flight recorder
//! carrying the event — instead of an abort.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use midas_catapult::score::diversity;
use midas_core::metrics::ScovContext;
use midas_core::monitor::GraphletMonitor;
use midas_core::swap::{multi_scan_swap, SwapOutcome, SwapParams};
use midas_core::{Midas, MidasConfig, PatternStore};
use midas_datagen::{deletion_batch, growth_batch, query_set, DatasetKind, DatasetSpec};
use midas_graph::exec::set_fault_for_tests;
use midas_graph::ged::{ged_exact, ged_label_lower_bound, ged_tight_lower_bound};
use midas_graph::graphlets::{count_graphlets, GraphletCounts};
use midas_graph::isomorphism::{count_embeddings, find_embeddings, is_subgraph_of};
use midas_graph::plan::{count_embeddings_plan, find_embeddings_plan, is_subgraph_plan};
use midas_graph::{GraphBuilder, GraphDb, GraphId, LabeledGraph, MatchKernel};
use midas_index::{FctIndex, IfeIndex, PatternId};
use midas_mining::incremental::FctState;
use midas_mining::{EdgeCatalog, MiningConfig, TreeKey};
use midas_obs::json;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Saturation cap for embedding counts in the kernel check.
const COUNT_CAP: u64 = 64;

/// One fast-path/reference disagreement.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which check found it (e.g. `"kernel_vs_serial"`).
    pub check: &'static str,
    /// Human-readable case identifier within the check.
    pub case: String,
    /// What the reference implementation produced.
    pub expected: String,
    /// What the fast path produced.
    pub actual: String,
    /// A minimized offending graph pair, when the violation is a
    /// reproducible property of the graphs themselves.
    pub witness: Option<(LabeledGraph, LabeledGraph)>,
}

impl Divergence {
    /// Renders the divergence as a JSON object.
    pub fn to_json(&self) -> String {
        let witness = match &self.witness {
            Some((a, b)) => format!("{{\"a\": {}, \"b\": {}}}", graph_json(a), graph_json(b)),
            None => "null".to_owned(),
        };
        format!(
            "{{\"check\": {}, \"case\": {}, \"expected\": {}, \"actual\": {}, \"witness\": {}}}",
            json::quote(self.check),
            json::quote(&self.case),
            json::quote(&self.expected),
            json::quote(&self.actual),
            witness
        )
    }
}

/// Renders a graph as `{"vertices": n, "labels": [...], "edges": [[u, v], ...]}`.
pub fn graph_json(g: &LabeledGraph) -> String {
    let labels: Vec<String> = g.labels().iter().map(|l| l.to_string()).collect();
    let edges: Vec<String> = g
        .edges()
        .iter()
        .map(|&(u, v)| format!("[{u}, {v}]"))
        .collect();
    format!(
        "{{\"vertices\": {}, \"labels\": [{}], \"edges\": [{}]}}",
        g.vertex_count(),
        labels.join(", "),
        edges.join(", ")
    )
}

/// Name and case count of one executed check.
#[derive(Debug, Clone)]
pub struct CheckRun {
    /// Check name.
    pub name: &'static str,
    /// Number of individual comparisons the check performed.
    pub cases: usize,
}

/// The outcome of a full oracle run.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// The seed the world was generated from.
    pub seed: u64,
    /// Every check that ran, with its case count.
    pub checks: Vec<CheckRun>,
    /// Every disagreement found.
    pub divergences: Vec<Divergence>,
}

impl OracleReport {
    /// `true` when no check diverged.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Total comparisons across all checks.
    pub fn total_cases(&self) -> usize {
        self.checks.iter().map(|c| c.cases).sum()
    }

    /// Renders the report as one JSON document.
    pub fn to_json(&self) -> String {
        let checks: Vec<String> = self
            .checks
            .iter()
            .map(|c| {
                format!(
                    "{{\"name\": {}, \"cases\": {}}}",
                    json::quote(c.name),
                    c.cases
                )
            })
            .collect();
        let divergences: Vec<String> = self.divergences.iter().map(Divergence::to_json).collect();
        format!(
            "{{\"seed\": {}, \"clean\": {}, \"total_cases\": {}, \"checks\": [{}], \"divergences\": [{}]}}",
            self.seed,
            self.is_clean(),
            self.total_cases(),
            checks.join(", "),
            divergences.join(", ")
        )
    }
}

/// Greedy witness shrinker: repeatedly drops single vertices from either
/// graph while `violates(a, b)` keeps holding, until no single removal
/// preserves the violation. Returns the pair unchanged when the predicate
/// does not hold on the input (e.g. a staleness bug a fresh probe cannot
/// reproduce) — the caller still gets *a* witness, just not a smaller one.
pub fn minimize_pair<F>(
    a: &LabeledGraph,
    b: &LabeledGraph,
    violates: F,
) -> (LabeledGraph, LabeledGraph)
where
    F: Fn(&LabeledGraph, &LabeledGraph) -> bool,
{
    let mut a = a.clone();
    let mut b = b.clone();
    if !violates(&a, &b) {
        return (a, b);
    }
    loop {
        let mut shrunk = false;
        for side in 0..2 {
            let target = if side == 0 { &a } else { &b };
            if target.vertex_count() <= 1 {
                continue;
            }
            let n = target.vertex_count() as u32;
            for drop in 0..n {
                let keep: Vec<u32> = (0..n).filter(|&v| v != drop).collect();
                let candidate = target.induced_subgraph(&keep);
                let ok = if side == 0 {
                    violates(&candidate, &b)
                } else {
                    violates(&a, &candidate)
                };
                if ok {
                    if side == 0 {
                        a = candidate;
                    } else {
                        b = candidate;
                    }
                    shrunk = true;
                    break;
                }
            }
        }
        if !shrunk {
            return (a, b);
        }
    }
}

/// The differential oracle: a seeded world plus the six checks.
pub struct Oracle {
    seed: u64,
}

impl Oracle {
    /// Creates an oracle whose worlds all derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Oracle { seed }
    }

    /// Runs every check and collects the report. The exec fault injector
    /// is disarmed for the duration — differential runs must be
    /// fault-free; [`fault_containment_pass`] owns injection.
    pub fn run_all(&self) -> OracleReport {
        set_fault_for_tests(None);
        let mut report = OracleReport {
            seed: self.seed,
            checks: Vec::new(),
            divergences: Vec::new(),
        };
        let checks: [(&'static str, CheckFn); 7] = [
            ("kernel_vs_serial", Oracle::check_kernel_vs_serial),
            ("incremental_mining", Oracle::check_incremental_mining),
            ("graphlet_monitor", Oracle::check_monitor),
            ("ged_bounds", Oracle::check_ged_bounds),
            ("multi_scan_swap", Oracle::check_swap),
            ("plan_vs_vf2", Oracle::check_plan_vs_vf2),
            ("serve_vs_library", Oracle::check_serve_vs_library),
        ];
        for (name, check) in checks {
            let cases = check(self, &mut report.divergences);
            report.checks.push(CheckRun { name, cases });
        }
        report
    }

    /// Check 1: the parallel + memoized kernel against serial VF2.
    fn check_kernel_vs_serial(&self, out: &mut Vec<Divergence>) -> usize {
        let db = DatasetSpec::new(DatasetKind::AidsLike, 36, self.seed)
            .generate()
            .db;
        let patterns = query_set(&db, 6, (1, 3), self.seed ^ 0x01);
        let kernel = MatchKernel::new(4);
        let graphs: Vec<(GraphId, &LabeledGraph)> =
            db.iter().map(|(id, g)| (id, g.as_ref())).collect();
        let mut cases = 0;
        // Two rounds: round 0 fills the memo, round 1 must serve hits
        // that still agree with serial recomputation.
        for round in 0..2 {
            for (pi, p) in patterns.iter().enumerate() {
                let fast_counts = kernel.count_in_graphs(p, &graphs, COUNT_CAP);
                let fast_covered = kernel.covered_in(p, &graphs);
                for (k, &(id, g)) in graphs.iter().enumerate() {
                    cases += 2;
                    let want = count_embeddings(p, g, COUNT_CAP);
                    if fast_counts[k] != want {
                        out.push(count_divergence(
                            format!("round {round}, pattern {pi}, graph {}", id.0),
                            want,
                            fast_counts[k],
                            p,
                            g,
                        ));
                    }
                    let want_cov = is_subgraph_of(p, g);
                    if fast_covered[k] != want_cov {
                        out.push(count_divergence(
                            format!("containment: round {round}, pattern {pi}, graph {}", id.0),
                            want_cov as u64,
                            fast_covered[k] as u64,
                            p,
                            g,
                        ));
                    }
                }
            }
        }
        // Invalidation / generation boundary: replace each of the first
        // three graphs' content under its *existing* id. A stale memo
        // entry keyed on (pattern, id) would serve the old graph's count.
        let replacements = query_set(&db, 3, (2, 4), self.seed ^ 0x02);
        for (i, replacement) in replacements.iter().enumerate() {
            let (id, old) = {
                let (id, g) = db.iter().nth(i).expect("world has >= 3 graphs");
                (id, g.as_ref().clone())
            };
            let p = &patterns[i % patterns.len()];
            // Warm the memo on the old content, then invalidate and probe
            // the replacement under the same id.
            let _ = kernel.count_in_graphs(p, &[(id, &old)], COUNT_CAP);
            kernel.invalidate_graph(id);
            let fast = kernel.count_in_graphs(p, &[(id, replacement)], COUNT_CAP);
            let want = count_embeddings(p, replacement, COUNT_CAP);
            cases += 1;
            if fast[0] != want {
                out.push(count_divergence(
                    format!("generation boundary: graph {} replaced", id.0),
                    want,
                    fast[0],
                    p,
                    replacement,
                ));
            }
        }
        cases
    }

    /// Check 2: incremental FCT maintenance against mining from scratch.
    fn check_incremental_mining(&self, out: &mut Vec<Divergence>) -> usize {
        let mut db = DatasetSpec::new(DatasetKind::AidsLike, 24, self.seed ^ 0x10)
            .generate()
            .db;
        let config = MiningConfig {
            sup_min: 0.3,
            max_edges: 3,
        };
        let params = DatasetKind::AidsLike.params();
        let mut state = FctState::build(&db, config);
        let mut cases = 0;
        for step in 0..4 {
            let update = match step {
                0 => growth_batch(&params, 6, self.seed ^ 0x11),
                1 => deletion_batch(&db, 4, self.seed ^ 0x12),
                2 => growth_batch(&params, 5, self.seed ^ 0x13),
                // A batch large enough to void Lemma 4.5's premise and
                // force the rebuild path.
                _ => deletion_batch(&db, db.len() * 2 / 3, self.seed ^ 0x14),
            };
            // Snapshot Δ⁻ graphs before they leave the database.
            let deleted_pre: Vec<(GraphId, Arc<LabeledGraph>)> = update
                .delete
                .iter()
                .filter_map(|&id| db.get(id).map(|g| (id, Arc::clone(g))))
                .collect();
            let (inserted, _) = db.apply(update);
            let deleted_refs: Vec<(GraphId, &LabeledGraph)> = deleted_pre
                .iter()
                .map(|(id, g)| (*id, g.as_ref()))
                .collect();
            state.apply_batch(&db, &inserted, &deleted_refs);

            let scratch = FctState::build(&db, config);
            let fast = fct_map(&state, db.len());
            let want = fct_map(&scratch, db.len());
            cases += 1;
            if fast != want {
                out.push(Divergence {
                    check: "incremental_mining",
                    case: format!("step {step} (db of {} graphs)", db.len()),
                    expected: describe_fct_diff(&want, &fast),
                    actual: format!("{} frequent closed trees", fast.len()),
                    witness: None,
                });
            }
        }
        cases
    }

    /// Check 3: the graphlet monitor against recounting a reference world.
    fn check_monitor(&self, out: &mut Vec<Divergence>) -> usize {
        let db = DatasetSpec::new(DatasetKind::EmolLike, 12, self.seed ^ 0x20)
            .generate()
            .db;
        let mut monitor = GraphletMonitor::build(&db);
        let mut reference: BTreeMap<GraphId, LabeledGraph> =
            db.iter().map(|(id, g)| (id, g.as_ref().clone())).collect();
        let extra = query_set(&db, 3, (2, 4), self.seed ^ 0x21);
        let existing: Vec<GraphId> = db.ids().collect();
        let bogus = GraphId(u64::MAX - 7);
        let fresh = GraphId(existing.iter().map(|id| id.0).max().unwrap_or(0) + 1);

        enum Op<'a> {
            Add(GraphId, &'a LabeledGraph),
            Remove(GraphId),
        }
        let ops: Vec<(String, Op<'_>)> = vec![
            ("add fresh id".into(), Op::Add(fresh, &extra[0])),
            (
                format!("re-add existing id {}", existing[0].0),
                Op::Add(existing[0], &extra[1]),
            ),
            ("remove never-added id".into(), Op::Remove(bogus)),
            (
                format!("remove id {}", existing[1].0),
                Op::Remove(existing[1]),
            ),
            (
                format!("double-remove id {}", existing[1].0),
                Op::Remove(existing[1]),
            ),
            (
                format!("re-add removed id {}", existing[1].0),
                Op::Add(existing[1], &extra[2]),
            ),
        ];
        let mut cases = 0;
        for (label, op) in ops {
            match op {
                Op::Add(id, g) => {
                    monitor.add_graph(id, g);
                    reference.insert(id, g.clone());
                }
                Op::Remove(id) => {
                    monitor.remove_graph(id);
                    reference.remove(&id);
                }
            }
            let mut want = GraphletCounts::default();
            for g in reference.values() {
                want.add(&count_graphlets(g));
            }
            cases += 1;
            if monitor.totals().as_array() != want.as_array() {
                out.push(Divergence {
                    check: "graphlet_monitor",
                    case: label.clone(),
                    expected: format!("{:?}", want.as_array()),
                    actual: format!("{:?}", monitor.totals().as_array()),
                    witness: None,
                });
            }
            // The distribution must stay a valid probability vector even
            // right after pathological op sequences.
            let dist = monitor.distribution().as_array();
            let mass: f64 = dist.iter().sum();
            cases += 1;
            if !dist.iter().all(|p| p.is_finite() && *p >= 0.0)
                || (mass - 1.0).abs() > 1e-9 && mass.abs() > 1e-9
            {
                out.push(Divergence {
                    check: "graphlet_monitor",
                    case: format!("{label}: distribution"),
                    expected: "a probability vector (mass 1, or all-zero)".into(),
                    actual: format!("{dist:?}"),
                    witness: None,
                });
            }
        }
        cases
    }

    /// Check 4: the GED lower-bound chain `label ≤ tight ≤ exact`.
    fn check_ged_bounds(&self, out: &mut Vec<Divergence>) -> usize {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x30);
        let mut pairs: Vec<(String, LabeledGraph, LabeledGraph)> = Vec::new();
        for i in 0..120 {
            let a = random_labeled_graph(&mut rng, 5, 4, 0.4);
            let b = random_labeled_graph(&mut rng, 5, 4, 0.4);
            pairs.push((format!("random pair {i}"), a, b));
        }
        // Boundary cases: identical graphs, disjoint label alphabets,
        // isolated vertices vs a clique, single vertices.
        let path = |labels: &[u32]| {
            let vs: Vec<u32> = (0..labels.len() as u32).collect();
            GraphBuilder::new().vertices(labels).path(&vs).build()
        };
        let isolated = GraphBuilder::new().vertices(&[0, 0, 0]).build();
        let triangle = GraphBuilder::new()
            .vertices(&[0, 0, 0])
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .build();
        pairs.push(("identical".into(), path(&[0, 1, 2]), path(&[0, 1, 2])));
        pairs.push(("disjoint labels".into(), path(&[0, 1]), path(&[2, 3])));
        pairs.push(("isolated vs triangle".into(), isolated, triangle));
        pairs.push(("single vertices".into(), path(&[0]), path(&[1])));
        pairs.push((
            "admissibility regression (path labels 0,0,0 vs 0,1,0)".into(),
            path(&[0, 0, 0]),
            path(&[0, 1, 0]),
        ));

        let mut cases = 0;
        for (label, a, b) in &pairs {
            cases += 1;
            let lb_label = ged_label_lower_bound(a, b);
            let lb_tight = ged_tight_lower_bound(a, b);
            let exact = ged_exact(a, b);
            if lb_label <= lb_tight && lb_tight <= exact {
                continue;
            }
            let violates = |x: &LabeledGraph, y: &LabeledGraph| {
                let l = ged_label_lower_bound(x, y);
                let t = ged_tight_lower_bound(x, y);
                let e = ged_exact(x, y);
                !(l <= t && t <= e)
            };
            let witness = minimize_pair(a, b, violates);
            out.push(Divergence {
                check: "ged_bounds",
                case: label.clone(),
                expected: format!("label ≤ tight ≤ exact (exact = {exact})"),
                actual: format!("label = {lb_label}, tight = {lb_tight}, exact = {exact}"),
                witness: Some(witness),
            });
        }
        cases
    }

    /// Check 5: multi-scan swap — kernel/serial parity, sw3–sw5 set-level
    /// monotonicity, and an sw1 replay against brute-force coverage.
    fn check_swap(&self, out: &mut Vec<Divergence>) -> usize {
        let mut cases = 0;
        // World A: a synthetic database engineered so exactly one
        // beneficial swap exists (stale C-O-N pattern vs dominant S-S-S
        // chains) — the brute-force sw1 replay has a real swap to audit.
        let path = |labels: &[u32]| {
            let vs: Vec<u32> = (0..labels.len() as u32).collect();
            GraphBuilder::new().vertices(labels).path(&vs).build()
        };
        let mut synthetic = vec![path(&[0, 1, 2])];
        synthetic.extend(vec![path(&[3, 3, 3]); 5]);
        cases += self.swap_world(
            "synthetic",
            GraphDb::from_graphs(synthetic),
            vec![path(&[0, 1, 2])],
            vec![path(&[3, 3, 3])],
            out,
        );
        // World B: a messier generated world — parity and monotonicity
        // under realistic molecules.
        let db = DatasetSpec::new(DatasetKind::AidsLike, 14, self.seed ^ 0x40)
            .generate()
            .db;
        let drawn = query_set(&db, 8, (1, 3), self.seed ^ 0x41);
        let mut initial: Vec<LabeledGraph> = Vec::new();
        let mut candidates: Vec<LabeledGraph> = Vec::new();
        for q in drawn {
            let dup = initial
                .iter()
                .chain(candidates.iter())
                .any(|p| graphs_isomorphic(p, &q));
            if dup {
                continue;
            }
            if initial.len() < 3 {
                initial.push(q);
            } else {
                candidates.push(q);
            }
        }
        if !initial.is_empty() && !candidates.is_empty() {
            cases += self.swap_world("generated", db, initial, candidates, out);
        }
        cases
    }

    /// Runs one swap world through both scov paths and audits the result.
    fn swap_world(
        &self,
        world: &str,
        db: GraphDb,
        initial: Vec<LabeledGraph>,
        candidates: Vec<LabeledGraph>,
        out: &mut Vec<Divergence>,
    ) -> usize {
        let refs: Vec<(GraphId, &LabeledGraph)> =
            db.iter().map(|(id, g)| (id, g.as_ref())).collect();
        let catalog = EdgeCatalog::build(refs.iter().copied());
        let sample: BTreeSet<GraphId> = db.ids().collect();
        let params = SwapParams::default();
        let kernel = MatchKernel::new(2);

        let run = |use_kernel: bool| -> SwapRunResult {
            let mut store = PatternStore::new();
            for p in &initial {
                store.insert(p.clone());
            }
            let before: BTreeMap<PatternId, LabeledGraph> =
                store.iter().map(|(id, p)| (id, p.clone())).collect();
            let pattern_refs: Vec<(PatternId, &LabeledGraph)> =
                before.iter().map(|(&id, p)| (id, p)).collect();
            let mut fct = FctIndex::build(
                std::iter::empty::<(TreeKey, &LabeledGraph)>(),
                refs.iter().copied(),
                pattern_refs.iter().copied(),
            );
            let mut ife = IfeIndex::build(
                BTreeSet::new(),
                refs.iter().copied(),
                pattern_refs.iter().copied(),
            );
            let fct_snapshot = fct.clone();
            let ife_snapshot = ife.clone();
            let ctx = ScovContext {
                fct: &fct_snapshot,
                ife: &ife_snapshot,
                db: &db,
                sample: &sample,
                catalog: &catalog,
                kernel: if use_kernel { Some(&kernel) } else { None },
            };
            let outcome = multi_scan_swap(
                &mut store,
                candidates.clone(),
                &ctx,
                &params,
                &mut fct,
                &mut ife,
            );
            let graphs = store.graphs();
            (outcome, graphs, before, store)
        };

        let (fast_out, fast_set, before_map, _store_fast) = run(true);
        let (ref_out, ref_set, _, _store_ref) = run(false);
        let mut cases = 0;

        // Parity: the memoized-kernel run and the serial reference run
        // must make identical decisions.
        cases += 1;
        if fast_out.swaps != ref_out.swaps
            || fast_out.scans != ref_out.scans
            || fast_out.replaced != ref_out.replaced
            || fast_set != ref_set
        {
            out.push(Divergence {
                check: "multi_scan_swap",
                case: format!("{world}: kernel/serial parity"),
                expected: format!(
                    "swaps {}, scans {}, {} final patterns (serial reference)",
                    ref_out.swaps,
                    ref_out.scans,
                    ref_set.len()
                ),
                actual: format!(
                    "swaps {}, scans {}, {} final patterns (kernel)",
                    fast_out.swaps,
                    fast_out.scans,
                    fast_set.len()
                ),
                witness: None,
            });
        }

        // sw3–sw5 set-level monotonicity: diversity and label coverage
        // must not drop, cognitive load must not rise.
        let initial_set: Vec<LabeledGraph> = before_map.values().cloned().collect();
        let (div0, cog0, lcov0) = set_measures(&initial_set, &catalog, &sample);
        let (div1, cog1, lcov1) = set_measures(&ref_set, &catalog, &sample);
        cases += 1;
        if div1 + 1e-9 < div0 || cog1 > cog0 + 1e-9 || lcov1 + 1e-9 < lcov0 {
            out.push(Divergence {
                check: "multi_scan_swap",
                case: format!("{world}: sw3–sw5 monotonicity"),
                expected: format!("div ≥ {div0:.6}, cog ≤ {cog0:.6}, lcov ≥ {lcov0:.6}"),
                actual: format!("div = {div1:.6}, cog = {cog1:.6}, lcov = {lcov1:.6}"),
                witness: None,
            });
        }

        // sw1 replay: a single accepted swap necessarily happened in scan
        // 1 (a swapless scan ends the loop), so the first-scan κ applies.
        // Recompute both coverages brute-force and re-check the criterion.
        if ref_out.swaps == 1 {
            let (victim_id, new_id) = ref_out.replaced[0];
            let victim = before_map.get(&victim_id).cloned();
            let candidate = _store_ref.get(new_id).cloned();
            if let (Some(victim), Some(candidate)) = (victim, candidate) {
                let victim_scov = brute_scov(&victim, &db, &sample);
                let cand_scov = brute_scov(&candidate, &db, &sample);
                cases += 1;
                if cand_scov + 1e-9 < (1.0 + params.kappa) * victim_scov {
                    out.push(Divergence {
                        check: "multi_scan_swap",
                        case: format!("{world}: sw1 replay (brute-force scov)"),
                        expected: format!(
                            "candidate scov ≥ (1 + {}) × {victim_scov:.6}",
                            params.kappa
                        ),
                        actual: format!("candidate scov = {cand_scov:.6}"),
                        witness: Some((victim, candidate)),
                    });
                }
            }
        }
        cases
    }

    /// Check 6: the plan-compiled CSR matcher against the VF2 reference.
    ///
    /// Random (pattern, target) pairs — small enough that full embedding
    /// enumeration is cheap — compared on three axes: capped counts at a
    /// spread of caps (including cap 1 and an effectively-unbounded cap),
    /// the coverage boolean, and the complete embedding sets as sorted
    /// collections of mappings. Any disagreement minimizes to the
    /// smallest violating pair.
    fn check_plan_vs_vf2(&self, out: &mut Vec<Divergence>) -> usize {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x60);
        let mut cases = 0;
        const CAPS: [u64; 3] = [1, COUNT_CAP, u64::MAX];
        const EMBED_LIMIT: usize = 4096;
        for round in 0..120 {
            let pattern = random_labeled_graph(&mut rng, 4, 3, 0.5);
            let target = random_labeled_graph(&mut rng, 7, 3, 0.35);
            for cap in CAPS {
                cases += 1;
                let want = count_embeddings(&pattern, &target, cap);
                let got = count_embeddings_plan(&pattern, &target, cap);
                if got != want {
                    out.push(plan_divergence(
                        format!("round {round}: count at cap {cap}"),
                        want.to_string(),
                        got.to_string(),
                        &pattern,
                        &target,
                    ));
                }
            }
            cases += 1;
            let want_cov = is_subgraph_of(&pattern, &target);
            let got_cov = is_subgraph_plan(&pattern, &target);
            if got_cov != want_cov {
                out.push(plan_divergence(
                    format!("round {round}: coverage boolean"),
                    want_cov.to_string(),
                    got_cov.to_string(),
                    &pattern,
                    &target,
                ));
            }
            // Full embedding sets: both enumerate in pattern-vertex
            // numbering, so the sets (order-free) must be identical.
            cases += 1;
            let want_set: BTreeSet<Vec<u32>> = find_embeddings(&pattern, &target, EMBED_LIMIT)
                .into_iter()
                .collect();
            let got_set: BTreeSet<Vec<u32>> = find_embeddings_plan(&pattern, &target, EMBED_LIMIT)
                .into_iter()
                .collect();
            if got_set != want_set {
                out.push(plan_divergence(
                    format!("round {round}: embedding sets"),
                    format!("{} embeddings", want_set.len()),
                    format!("{} embeddings", got_set.len()),
                    &pattern,
                    &target,
                ));
            }
        }
        cases
    }

    /// Check 7: the serving daemon against the library, bit for bit.
    ///
    /// Both sides bootstrap [`Midas`] (via the same embedded entry point
    /// and the same `small` config preset) on the same graphs, then apply
    /// the same explicit batch sequence — the library side directly, the
    /// serve side through `POST /updates?mode=sync` over real HTTP. After
    /// bootstrap and after every batch, the pattern set the daemon serves
    /// must equal the library's **exactly** (same graphs, same order),
    /// along with the epoch and database size. Any drift here means the
    /// network layer changed maintenance semantics.
    fn check_serve_vs_library(&self, out: &mut Vec<Divergence>) -> usize {
        use midas_serve::client::ServeClient;
        use midas_serve::{ServeConfig, ServeDaemon};

        let world = DatasetSpec::new(DatasetKind::EmolLike, 18, self.seed ^ 0x70).generate();
        let graphs: Vec<LabeledGraph> = world.db.iter().map(|(_, g)| g.as_ref().clone()).collect();
        let params = DatasetKind::EmolLike.params();

        // Library side: the same embedded bootstrap the daemon uses.
        let library_db = GraphDb::from_graphs(graphs.iter().cloned());
        let mut library = match Midas::bootstrap_embedded(library_db, MidasConfig::small_defaults())
        {
            Ok(m) => m,
            Err(e) => {
                out.push(serve_divergence(
                    "library bootstrap",
                    "a bootstrapped Midas",
                    &format!("error: {e}"),
                ));
                return 1;
            }
        };

        // Serve side: a real daemon, the tenant created from the same
        // graphs with the same config preset.
        let daemon = match ServeDaemon::start(ServeConfig::default()) {
            Ok(d) => d,
            Err(e) => {
                out.push(serve_divergence(
                    "daemon start",
                    "a listening daemon",
                    &format!("error: {e}"),
                ));
                return 1;
            }
        };
        let client = ServeClient::new(daemon.addr().to_string());
        let created = client.create_tenant_with_graphs("parity", &graphs, "small");
        if !matches!(&created, Ok(r) if r.status == 201) {
            out.push(serve_divergence(
                "tenant create",
                "HTTP 201",
                &format!("{created:?}"),
            ));
            return 1;
        }

        // The explicit batch sequence: growth, deletion, growth — the
        // deletion drawn against the library database *at that step*, so
        // both sides see the identical `BatchUpdate`.
        let mut cases = 0;
        for step in 0..4 {
            let batch = match step {
                0 => None, // compare the bootstrap state first
                1 => Some(growth_batch(&params, 5, self.seed ^ 0x71)),
                2 => Some(deletion_batch(library.db(), 3, self.seed ^ 0x72)),
                _ => Some(growth_batch(&params, 4, self.seed ^ 0x73)),
            };
            if let Some(batch) = batch {
                let _ = library.apply_batch(batch.clone());
                let reply = client.post_batch("parity", &batch, true);
                if !matches!(&reply, Ok(r) if r.status == 200) {
                    out.push(serve_divergence(
                        &format!("step {step}: sync update"),
                        "HTTP 200",
                        &format!("{reply:?}"),
                    ));
                    return cases + 1;
                }
            }
            let want = library.pattern_snapshot();
            let got = match client.patterns("parity") {
                Ok(p) => p,
                Err(e) => {
                    out.push(serve_divergence(
                        &format!("step {step}: GET patterns"),
                        "a pattern payload",
                        &format!("error: {e}"),
                    ));
                    return cases + 1;
                }
            };
            cases += 1;
            if got.epoch != want.epoch || got.db_len as usize != want.db_len {
                out.push(serve_divergence(
                    &format!("step {step}: epoch/db_len"),
                    &format!("epoch {} over {} graphs", want.epoch, want.db_len),
                    &format!("epoch {} over {} graphs", got.epoch, got.db_len),
                ));
            }
            cases += 1;
            if got.patterns != want.patterns {
                out.push(serve_divergence(
                    &format!("step {step}: pattern set"),
                    &format!("{} patterns (library, exact)", want.patterns.len()),
                    &format!("{} patterns (served)", got.patterns.len()),
                ));
            }
        }
        daemon.shutdown();
        cases
    }
}

/// One differential check: collects divergences, returns its case count.
type CheckFn = fn(&Oracle, &mut Vec<Divergence>) -> usize;

/// One swap run: the outcome, the final pattern set, the pre-swap
/// id → pattern map, and the mutated store (for id lookups).
type SwapRunResult = (
    SwapOutcome,
    Vec<LabeledGraph>,
    BTreeMap<PatternId, LabeledGraph>,
    PatternStore,
);

/// The frequent-closed-tree view of a state as a comparable map.
fn fct_map(state: &FctState, db_len: usize) -> BTreeMap<TreeKey, BTreeSet<GraphId>> {
    state
        .fct(db_len)
        .into_iter()
        .map(|(k, e)| (k.clone(), e.support.clone()))
        .collect()
}

/// Summarizes how two FCT maps differ (for the divergence record).
fn describe_fct_diff(
    want: &BTreeMap<TreeKey, BTreeSet<GraphId>>,
    got: &BTreeMap<TreeKey, BTreeSet<GraphId>>,
) -> String {
    let missing = want.keys().filter(|k| !got.contains_key(k)).count();
    let extra = got.keys().filter(|k| !want.contains_key(k)).count();
    let support_drift = want
        .iter()
        .filter(|(k, s)| got.get(*k).is_some_and(|t| &t != s))
        .count();
    format!(
        "{} frequent closed trees ({missing} missing, {extra} extra, {support_drift} with drifted support)",
        want.len()
    )
}

/// A kernel-count divergence with a shrunk `(pattern, graph)` witness.
fn count_divergence(
    case: String,
    want: u64,
    got: u64,
    pattern: &LabeledGraph,
    graph: &LabeledGraph,
) -> Divergence {
    // Shrink against a *fresh* kernel: only violations that are a
    // reproducible property of the pair minimize; staleness bugs keep the
    // original pair as witness.
    let violates = |p: &LabeledGraph, g: &LabeledGraph| {
        let fresh = MatchKernel::new(1);
        let fast = fresh.count_in_graphs(p, &[(GraphId(0), g)], COUNT_CAP);
        fast[0] != count_embeddings(p, g, COUNT_CAP)
    };
    let witness = minimize_pair(pattern, graph, violates);
    Divergence {
        check: "kernel_vs_serial",
        case,
        expected: want.to_string(),
        actual: got.to_string(),
        witness: Some(witness),
    }
}

/// A `plan_vs_vf2` divergence, with the pair minimized against the axis
/// that actually disagreed (re-checking all three axes keeps the shrinker
/// honest when a smaller pair diverges differently).
fn plan_divergence(
    case: String,
    expected: String,
    actual: String,
    pattern: &LabeledGraph,
    graph: &LabeledGraph,
) -> Divergence {
    let violates = |p: &LabeledGraph, g: &LabeledGraph| {
        count_embeddings_plan(p, g, COUNT_CAP) != count_embeddings(p, g, COUNT_CAP)
            || is_subgraph_plan(p, g) != is_subgraph_of(p, g)
            || find_embeddings_plan(p, g, 4096)
                .into_iter()
                .collect::<BTreeSet<_>>()
                != find_embeddings(p, g, 4096)
                    .into_iter()
                    .collect::<BTreeSet<_>>()
    };
    let witness = minimize_pair(pattern, graph, violates);
    Divergence {
        check: "plan_vs_vf2",
        case,
        expected,
        actual,
        witness: Some(witness),
    }
}

/// A `serve_vs_library` divergence (no graph witness — the batches are
/// explicit and seeded, so the case string is the reproduction recipe).
fn serve_divergence(case: &str, expected: &str, actual: &str) -> Divergence {
    Divergence {
        check: "serve_vs_library",
        case: case.to_owned(),
        expected: expected.to_owned(),
        actual: actual.to_owned(),
        witness: None,
    }
}

/// Uniform random connected-or-not labeled graph: `1..=max_v` vertices,
/// labels in `0..labels`, each unordered pair an edge with probability `p`.
fn random_labeled_graph(rng: &mut StdRng, max_v: usize, labels: u32, p: f64) -> LabeledGraph {
    let n = rng.random_range(1..=max_v);
    let mut g = LabeledGraph::new();
    for _ in 0..n {
        g.add_vertex(rng.random_range(0..labels));
    }
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.random_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Exact isomorphism for small graphs via mutual size + one-way embedding.
fn graphs_isomorphic(a: &LabeledGraph, b: &LabeledGraph) -> bool {
    a.vertex_count() == b.vertex_count()
        && a.edge_count() == b.edge_count()
        && a.sorted_labels() == b.sorted_labels()
        && is_subgraph_of(a, b)
}

/// Mirror of the swap module's private `set_measures`: the exact
/// quantities sw3–sw5 guard (min diversity, max cognitive load, sampled
/// label coverage).
fn set_measures(
    patterns: &[LabeledGraph],
    catalog: &EdgeCatalog,
    sample: &BTreeSet<GraphId>,
) -> (f64, f64, f64) {
    let div = patterns
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let others: Vec<LabeledGraph> = patterns
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, q)| q.clone())
                .collect();
            diversity(p, &others)
        })
        .fold(f64::INFINITY, f64::min);
    let div = if div.is_finite() { div } else { 0.0 };
    let cog = patterns
        .iter()
        .map(|p| p.cognitive_load())
        .fold(0.0, f64::max);
    let mut union: BTreeSet<GraphId> = BTreeSet::new();
    for p in patterns {
        for label in p.edge_labels() {
            if let Some(stats) = catalog.get(label) {
                union.extend(stats.support.intersection(sample).copied());
            }
        }
    }
    let lcov = if sample.is_empty() {
        0.0
    } else {
        union.len() as f64 / sample.len() as f64
    };
    (div, cog, lcov)
}

/// Brute-force `scov`: the sampled-containment fraction via serial VF2,
/// bypassing every index and cache.
fn brute_scov(pattern: &LabeledGraph, db: &GraphDb, sample: &BTreeSet<GraphId>) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    let covered = sample
        .iter()
        .filter(|&&id| db.get(id).is_some_and(|g| is_subgraph_of(pattern, g)))
        .count();
    covered as f64 / sample.len() as f64
}

/// Proves end-to-end fault containment: arms the injector at exec task
/// `target`, drives growth batches through a bootstrapped [`Midas`], and
/// requires the injected worker panic to surface as a contained
/// [`midas_graph::KernelError`] on the maintenance report (with the
/// flight recorder carrying the `kernel_error` event) rather than an
/// abort or hang. Returns a human-readable success line, or an error
/// describing which containment guarantee failed.
pub fn fault_containment_pass(seed: u64, target: u64) -> Result<String, String> {
    // Bootstrap must run clean — the injector counts tasks process-wide,
    // and the pass is about containment *inside* apply_batch.
    set_fault_for_tests(None);
    let db = DatasetSpec::new(DatasetKind::AidsLike, 20, seed)
        .generate()
        .db;
    let mut midas = Midas::bootstrap(db, MidasConfig::small_defaults())
        .map_err(|e| format!("bootstrap failed: {e}"))?;
    let params = DatasetKind::AidsLike.params();

    // The injected panic is expected; silence the default hook's
    // backtrace spam for the armed region only.
    let quiet = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut result = Err(format!(
        "no batch tripped the injected fault at task {target}; containment unverified"
    ));
    for attempt in 0..3u64 {
        midas_obs::flight::clear();
        set_fault_for_tests(Some(target));
        let update = growth_batch(&params, 10, seed ^ (0xFA_u64 + attempt));
        let report = midas.apply_batch(update);
        set_fault_for_tests(None);
        if let Some(err) = report.error {
            let events = midas_obs::flight::events();
            let injected = events.iter().any(|e| e.kind == "fault_injected");
            let recorded = events.iter().any(|e| e.kind == "kernel_error");
            result = if !recorded {
                Err(format!(
                    "contained `{err}` but the flight recorder has no kernel_error event"
                ))
            } else {
                Ok(format!(
                    "contained injected fault on attempt {attempt}: `{err}` \
                     (flight: fault_injected={injected}, kernel_error=true); \
                     process alive, report returned normally"
                ))
            };
            break;
        }
    }
    std::panic::set_hook(quiet);
    // Whatever happened, the framework must still be usable afterwards.
    if result.is_ok() {
        let follow_up = midas.apply_batch(growth_batch(&params, 2, seed ^ 0xFF));
        if follow_up.error.is_some() {
            return Err("framework did not recover after the contained fault".into());
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    #[test]
    fn graph_json_is_valid_json() {
        let g = path(&[0, 1, 2]);
        midas_obs::json::validate(&graph_json(&g)).expect("graph json parses");
    }

    #[test]
    fn report_json_is_valid_json() {
        let report = OracleReport {
            seed: 7,
            checks: vec![CheckRun {
                name: "kernel_vs_serial",
                cases: 3,
            }],
            divergences: vec![Divergence {
                check: "kernel_vs_serial",
                case: "unit \"case\"".into(),
                expected: "1".into(),
                actual: "2".into(),
                witness: Some((path(&[0]), path(&[1, 2]))),
            }],
        };
        midas_obs::json::validate(&report.to_json()).expect("report json parses");
        assert!(!report.is_clean());
        assert_eq!(report.total_cases(), 3);
    }

    #[test]
    fn minimize_pair_shrinks_to_the_smallest_violating_pair() {
        // Artificial violation: "a has at least 2 vertices and b at least
        // 3" — minimal witness is exactly (2, 3) vertices.
        let a = path(&[0, 1, 2, 3, 4]);
        let b = path(&[5, 6, 7, 8]);
        let (sa, sb) = minimize_pair(&a, &b, |x, y| {
            x.vertex_count() >= 2 && y.vertex_count() >= 3
        });
        assert_eq!(sa.vertex_count(), 2);
        assert_eq!(sb.vertex_count(), 3);
    }

    #[test]
    fn minimize_pair_returns_input_when_not_violating() {
        let a = path(&[0, 1]);
        let b = path(&[2]);
        let (sa, sb) = minimize_pair(&a, &b, |_, _| false);
        assert_eq!(sa, a);
        assert_eq!(sb, b);
    }

    #[test]
    fn ged_bounds_check_runs_clean_on_a_small_seed() {
        let oracle = Oracle::new(3);
        let mut divergences = Vec::new();
        let cases = oracle.check_ged_bounds(&mut divergences);
        assert!(cases > 120);
        assert!(divergences.is_empty(), "{:?}", divergences.first());
    }

    #[test]
    fn monitor_check_runs_clean() {
        let oracle = Oracle::new(5);
        let mut divergences = Vec::new();
        let cases = oracle.check_monitor(&mut divergences);
        assert!(cases >= 12);
        assert!(divergences.is_empty(), "{:?}", divergences.first());
    }

    #[test]
    fn serve_parity_check_runs_clean() {
        let oracle = Oracle::new(11);
        let mut divergences = Vec::new();
        let cases = oracle.check_serve_vs_library(&mut divergences);
        assert_eq!(cases, 8, "bootstrap + 3 batches, 2 comparisons each");
        assert!(divergences.is_empty(), "{:?}", divergences.first());
    }
}
