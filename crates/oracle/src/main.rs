//! Oracle CLI: runs the seven differential checks (and, when `MIDAS_FAULT`
//! is set, the fault-containment pass first) and prints the JSON report.
//!
//! ```text
//! cargo run -p midas-oracle --release -- --seed 7
//! MIDAS_FAULT=task:3 cargo run -p midas-oracle --release -- --seed 7
//! ```
//!
//! Exit status: `0` iff every check is clean (and the fault pass, when
//! requested, contained the injected panic); `1` on divergence or a
//! containment failure; `2` on bad usage.

use midas_oracle::{fault_containment_pass, Oracle};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut seed = 7u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) => seed = v,
                _ => {
                    eprintln!("--seed expects an unsigned integer");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: midas-oracle [--seed N]");
                println!();
                println!("Cross-checks every MIDAS fast path against its serial");
                println!("reference twin on a world generated from the seed, and");
                println!("prints a JSON divergence report.");
                println!();
                println!("Set MIDAS_FAULT=task:N to additionally verify that an");
                println!("injected worker panic at exec task N is contained.");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    let mut failed = false;

    // Fault-containment pass first, when requested via the environment:
    // the differential checks below disarm the injector, so the armed
    // window must come before them.
    if let Ok(spec) = std::env::var("MIDAS_FAULT") {
        match spec
            .trim()
            .strip_prefix("task:")
            .and_then(|n| n.trim().parse::<u64>().ok())
        {
            Some(target) => match fault_containment_pass(seed, target) {
                Ok(line) => eprintln!("fault containment: {line}"),
                Err(e) => {
                    eprintln!("fault containment FAILED: {e}");
                    failed = true;
                }
            },
            None => {
                eprintln!("MIDAS_FAULT is set but not of the form task:N ({spec:?})");
                return ExitCode::from(2);
            }
        }
    }

    let report = Oracle::new(seed).run_all();
    println!("{}", report.to_json());
    if !report.is_clean() {
        eprintln!(
            "{} divergence(s) across {} cases",
            report.divergences.len(),
            report.total_cases()
        );
        failed = true;
    } else {
        eprintln!(
            "all {} checks clean ({} cases)",
            report.checks.len(),
            report.total_cases()
        );
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
