//! The pattern-feature matrix and the tightened GED lower bound (§6.1,
//! Fig. 7, Lemma 6.1).
//!
//! A PF-matrix has one row per pattern edge and one column per *embedding*
//! of a subtree feature (FCT, frequent or infrequent edge) in the pattern;
//! entry `(i, j)` is 1 when edge `i` participates in embedding `j`. When
//! matching pattern `G_i` into `G_j`, embeddings whose feature `G_j` lacks
//! must be *relaxed*; the number of pattern edges left uncovered by any
//! matchable embedding lower-bounds the relaxed-edge count `n`, giving
//! `GED'_l = GED_l + n`.

use crate::fct_index::FctIndex;
use crate::ife_index::IfeIndex;
use crate::EMBED_CAP;
use midas_graph::ged::{ged_label_parts, ged_tight_from_parts};
use midas_graph::isomorphism::find_embeddings;
use midas_graph::{EdgeLabel, LabeledGraph};
use std::collections::BTreeMap;

/// A feature reference: either an FCT-Index feature or an infrequent edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FeatureRef {
    /// A row of the FCT-Index (FCT or frequent edge).
    Fct(crate::FeatureId),
    /// A tracked infrequent edge label.
    Ife(EdgeLabel),
}

/// The PF-matrix of one pattern.
#[derive(Debug, Clone)]
pub struct PfMatrix {
    /// Pattern edge count (rows).
    edge_count: usize,
    /// Per embedding column: the feature and the set of pattern-edge rows it
    /// covers (stored as a bitmask over edges; patterns have ≤ 12 edges).
    columns: Vec<(FeatureRef, u64)>,
}

impl PfMatrix {
    /// Builds the PF-matrix of `pattern` against the current indices.
    pub fn build(fct: &FctIndex, ife: &IfeIndex, pattern: &LabeledGraph) -> Self {
        let edge_index: BTreeMap<(u32, u32), usize> = pattern
            .edges()
            .iter()
            .enumerate()
            .map(|(i, &e)| (e, i))
            .collect();
        let mut columns = Vec::new();
        // FCT features: enumerate embeddings, mark the pattern edges used.
        for (fid, feature) in fct.features() {
            let embeddings = find_embeddings(&feature.tree, pattern, EMBED_CAP as usize);
            for mapping in embeddings {
                let mut mask = 0u64;
                for &(u, v) in feature.tree.edges() {
                    let (mu, mv) = (mapping[u as usize], mapping[v as usize]);
                    let key = if mu < mv { (mu, mv) } else { (mv, mu) };
                    if let Some(&row) = edge_index.get(&key) {
                        if row < 64 {
                            mask |= 1 << row;
                        }
                    }
                }
                columns.push((FeatureRef::Fct(fid), mask));
            }
        }
        // Infrequent edges: one column per occurrence.
        for &label in ife.tracked() {
            for (row, &(u, v)) in pattern.edges().iter().enumerate() {
                if pattern.edge_label(u, v) == label && row < 64 {
                    columns.push((FeatureRef::Ife(label), 1 << row));
                }
            }
        }
        PfMatrix {
            edge_count: pattern.edge_count(),
            columns,
        }
    }

    /// Builds the PF-matrices of many patterns in parallel (scoped
    /// threads, `threads = 0` for auto). The swap search rebuilds
    /// PF-matrices for every candidate × every current pattern; batching
    /// them amortises the embedding enumeration across cores. Output is in
    /// input order and identical to serial [`PfMatrix::build`] calls.
    pub fn build_many(
        fct: &FctIndex,
        ife: &IfeIndex,
        patterns: &[&LabeledGraph],
        threads: usize,
    ) -> Vec<Self> {
        midas_graph::exec::par_map(threads, patterns, |p| PfMatrix::build(fct, ife, p))
    }

    /// Number of rows (pattern edges).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of embedding columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// The multiset of features present (feature → embedding count).
    pub fn feature_multiset(&self) -> BTreeMap<FeatureRef, u32> {
        let mut out = BTreeMap::new();
        for &(f, _) in &self.columns {
            *out.entry(f).or_insert(0) += 1;
        }
        out
    }

    /// Relaxed-edge count `n` for matching `self`'s pattern into `other`'s
    /// (§6.1): greedily cover `self`'s edges with embeddings whose feature
    /// still has unmatched multiplicity in `other`; uncovered edges must be
    /// relaxed.
    pub fn relaxed_edges_into(&self, other: &PfMatrix) -> u32 {
        let mut budget = other.feature_multiset();
        let mut covered = 0u64;
        // Greedy: take columns in descending new-coverage order until budget
        // runs out. Recomputing gains each round keeps the greedy tight.
        let mut remaining: Vec<(FeatureRef, u64)> = self.columns.clone();
        loop {
            let mut best: Option<(usize, u32)> = None;
            for (i, &(f, mask)) in remaining.iter().enumerate() {
                if budget.get(&f).copied().unwrap_or(0) == 0 {
                    continue;
                }
                let gain = (mask & !covered).count_ones();
                if gain > 0 && best.is_none_or(|(_, bg)| gain > bg) {
                    best = Some((i, gain));
                }
            }
            let Some((i, _)) = best else { break };
            let (f, mask) = remaining.swap_remove(i);
            *budget.get_mut(&f).expect("budget checked") -= 1;
            covered |= mask;
        }
        let covered_count = covered.count_ones() as usize;
        (self.edge_count.saturating_sub(covered_count)) as u32
    }
}

/// The tightened lower bound `GED'_l(G_A, G_B)` (Lemma 6.1), with the
/// relaxed-edge count `n` from the PF-matrices, oriented from the
/// smaller-edge-set graph into the larger (as §6.1 prescribes
/// `|E_j| > |E_i|`). Combined admissibly via
/// [`ged_tight_from_parts`]: the paper-literal additive `GED_l + n`
/// over-counts edit operations already charged by `GED_l` and can exceed
/// the exact distance.
pub fn ged_tight_lower_bound_pf(
    fct: &FctIndex,
    ife: &IfeIndex,
    a: &LabeledGraph,
    b: &LabeledGraph,
) -> u32 {
    let (vertex_part, edge_part) = ged_label_parts(a, b);
    let (small, large) = if a.edge_count() <= b.edge_count() {
        (a, b)
    } else {
        (b, a)
    };
    let pf_small = PfMatrix::build(fct, ife, small);
    let pf_large = PfMatrix::build(fct, ife, large);
    let relaxed = pf_small.relaxed_edges_into(&pf_large);
    let max_degree = (0..small.vertex_count())
        .map(|v| small.neighbors(v as u32).len() as u32)
        .max()
        .unwrap_or(0);
    ged_tight_from_parts(vertex_part, edge_part, relaxed, max_degree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PatternId;
    use midas_graph::ged::ged_label_lower_bound;
    use midas_graph::GraphBuilder;
    use midas_mining::tree_key;
    use std::collections::BTreeSet;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn indices(features: &[LabeledGraph], ife_labels: &[EdgeLabel]) -> (FctIndex, IfeIndex) {
        let fct = FctIndex::build(
            features.iter().map(|t| (tree_key(t), t)),
            std::iter::empty::<(midas_graph::GraphId, &LabeledGraph)>(),
            std::iter::empty::<(PatternId, &LabeledGraph)>(),
        );
        let ife = IfeIndex::build(
            ife_labels.iter().copied().collect::<BTreeSet<_>>(),
            std::iter::empty::<(midas_graph::GraphId, &LabeledGraph)>(),
            std::iter::empty::<(PatternId, &LabeledGraph)>(),
        );
        (fct, ife)
    }

    #[test]
    fn pf_matrix_shape_matches_figure_7() {
        // Pattern: C-O-N path. Features: C-O edge (2 embeddings? no — one),
        // O-N edge.
        let features = vec![path(&[0, 1]), path(&[1, 2])];
        let (fct, ife) = indices(&features, &[]);
        let pattern = path(&[0, 1, 2]);
        let pf = PfMatrix::build(&fct, &ife, &pattern);
        assert_eq!(pf.edge_count(), 2);
        assert_eq!(pf.column_count(), 2);
        let multiset = pf.feature_multiset();
        assert_eq!(multiset.len(), 2);
        assert!(multiset.values().all(|&c| c == 1));
    }

    #[test]
    fn multiple_embeddings_make_multiple_columns() {
        let features = vec![path(&[0, 1])]; // C-O
        let (fct, ife) = indices(&features, &[]);
        let pattern = path(&[1, 0, 1]); // O-C-O: two C-O embeddings
        let pf = PfMatrix::build(&fct, &ife, &pattern);
        assert_eq!(pf.column_count(), 2);
        assert_eq!(pf.feature_multiset().values().sum::<u32>(), 2);
    }

    #[test]
    fn identical_patterns_relax_nothing() {
        let features = vec![path(&[0, 1]), path(&[1, 2])];
        let (fct, ife) = indices(&features, &[]);
        let p = path(&[0, 1, 2]);
        let pf = PfMatrix::build(&fct, &ife, &p);
        assert_eq!(pf.relaxed_edges_into(&pf.clone()), 0);
    }

    #[test]
    fn missing_feature_forces_relaxation() {
        // Self has O-N; other has only C-O features: the O-N edge relaxes.
        let features = vec![path(&[0, 1]), path(&[1, 2])];
        let (fct, ife) = indices(&features, &[]);
        let a = path(&[0, 1, 2]); // C-O-N
        let b = path(&[0, 1, 0]); // C-O-C
        let pfa = PfMatrix::build(&fct, &ife, &a);
        let pfb = PfMatrix::build(&fct, &ife, &b);
        assert_eq!(pfa.relaxed_edges_into(&pfb), 1);
    }

    #[test]
    fn infrequent_edges_contribute_columns() {
        let (fct, ife) = indices(&[], &[EdgeLabel::new(2, 3)]);
        let pattern = path(&[2, 3, 2]); // two N-S edges
        let pf = PfMatrix::build(&fct, &ife, &pattern);
        assert_eq!(pf.column_count(), 2);
    }

    #[test]
    fn tight_bound_dominates_base_bound() {
        let features = vec![path(&[0, 1]), path(&[1, 2]), path(&[0, 1, 2])];
        let (fct, ife) = indices(&features, &[EdgeLabel::new(2, 3)]);
        let samples = [
            path(&[0, 1, 2]),
            path(&[0, 1, 0]),
            path(&[2, 3]),
            path(&[0, 1, 2, 3]),
        ];
        for a in &samples {
            for b in &samples {
                let tight = ged_tight_lower_bound_pf(&fct, &ife, a, b);
                let base = ged_label_lower_bound(a, b);
                assert!(tight >= base, "tight {tight} < base {base}");
            }
        }
    }

    #[test]
    fn build_many_matches_serial_builds() {
        let features = vec![path(&[0, 1]), path(&[1, 2])];
        let (fct, ife) = indices(&features, &[EdgeLabel::new(2, 3)]);
        let patterns = [
            path(&[0, 1, 2]),
            path(&[1, 0, 1]),
            path(&[2, 3, 2]),
            path(&[0, 1, 2, 3]),
        ];
        let refs: Vec<&LabeledGraph> = patterns.iter().collect();
        let batch = PfMatrix::build_many(&fct, &ife, &refs, 2);
        assert_eq!(batch.len(), patterns.len());
        for (pf, p) in batch.iter().zip(&patterns) {
            let serial = PfMatrix::build(&fct, &ife, p);
            assert_eq!(pf.edge_count(), serial.edge_count());
            assert_eq!(pf.column_count(), serial.column_count());
            assert_eq!(pf.feature_multiset(), serial.feature_multiset());
        }
    }

    #[test]
    fn tight_bound_is_symmetric_in_orientation_choice() {
        let features = vec![path(&[0, 1])];
        let (fct, ife) = indices(&features, &[]);
        let a = path(&[0, 1]);
        let b = path(&[0, 1, 2, 3]);
        assert_eq!(
            ged_tight_lower_bound_pf(&fct, &ife, &a, &b),
            ged_tight_lower_bound_pf(&fct, &ife, &b, &a)
        );
    }
}
