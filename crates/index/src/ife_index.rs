//! The IFE-Index (Def. 5.2): infrequent-edge embedding counts over data
//! graphs (EG-matrix) and canned patterns (EP-matrix).
//!
//! Edge "embeddings" are occurrences: the number of edges of a graph whose
//! label matches. Both matrix sides use the same convention, so dominance
//! comparisons in [`crate::scov`] are consistent.

use crate::sparse::SparseMatrix;
use crate::PatternId;
use midas_graph::{EdgeLabel, GraphId, LabeledGraph};
use std::collections::BTreeSet;

/// The IFE-Index.
#[derive(Debug, Clone, Default)]
pub struct IfeIndex {
    tracked: BTreeSet<EdgeLabel>,
    eg: SparseMatrix<EdgeLabel, GraphId>,
    ep: SparseMatrix<EdgeLabel, PatternId>,
}

fn occurrences(graph: &LabeledGraph, label: EdgeLabel) -> u32 {
    graph.edge_labels().filter(|&l| l == label).count() as u32
}

impl IfeIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the index over the infrequent edge labels `tracked`.
    pub fn build<'a, G, P>(tracked: BTreeSet<EdgeLabel>, graphs: G, patterns: P) -> Self
    where
        G: IntoIterator<Item = (GraphId, &'a LabeledGraph)>,
        P: IntoIterator<Item = (PatternId, &'a LabeledGraph)>,
    {
        let mut index = IfeIndex {
            tracked,
            ..Self::default()
        };
        for (id, g) in graphs {
            index.add_graph(id, g);
        }
        for (id, p) in patterns {
            index.add_pattern(id, p);
        }
        index
    }

    /// The tracked infrequent edge labels.
    pub fn tracked(&self) -> &BTreeSet<EdgeLabel> {
        &self.tracked
    }

    /// The EG-matrix.
    pub fn eg(&self) -> &SparseMatrix<EdgeLabel, GraphId> {
        &self.eg
    }

    /// The EP-matrix.
    pub fn ep(&self) -> &SparseMatrix<EdgeLabel, PatternId> {
        &self.ep
    }

    /// Adds a data-graph column (rule 3).
    pub fn add_graph(&mut self, id: GraphId, graph: &LabeledGraph) {
        for &label in &self.tracked {
            self.eg.set(label, id, occurrences(graph, label));
        }
    }

    /// Removes a data-graph column (rule 4).
    pub fn remove_graph(&mut self, id: GraphId) {
        self.eg.remove_col(id);
    }

    /// Adds a canned-pattern column (rule 3).
    pub fn add_pattern(&mut self, id: PatternId, pattern: &LabeledGraph) {
        for &label in &self.tracked {
            self.ep.set(label, id, occurrences(pattern, label));
        }
    }

    /// Removes a canned-pattern column (rule 4).
    pub fn remove_pattern(&mut self, id: PatternId) {
        self.ep.remove_col(id);
    }

    /// Reconciles the tracked edge set (rules 1–2): vanished labels lose
    /// their rows; new labels get rows counted over the supplied graphs and
    /// patterns.
    pub fn refresh_edges<'a, G, P>(&mut self, target: BTreeSet<EdgeLabel>, graphs: G, patterns: P)
    where
        G: IntoIterator<Item = (GraphId, &'a LabeledGraph)>,
        P: IntoIterator<Item = (PatternId, &'a LabeledGraph)>,
    {
        for &gone in self.tracked.difference(&target) {
            self.eg.remove_row(gone);
            self.ep.remove_row(gone);
        }
        let fresh: Vec<EdgeLabel> = target.difference(&self.tracked).copied().collect();
        if !fresh.is_empty() {
            for (id, g) in graphs {
                for &label in &fresh {
                    self.eg.set(label, id, occurrences(g, label));
                }
            }
            for (id, p) in patterns {
                for &label in &fresh {
                    self.ep.set(label, id, occurrences(p, label));
                }
            }
        }
        self.tracked = target;
    }

    /// Approximate heap size in bytes (for the Exp 2 memory report).
    pub fn approx_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(EdgeLabel, GraphId, u32)>() * 2;
        (self.eg.nnz() + self.ep.nnz()) * entry + self.tracked.len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::GraphBuilder;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn gid(i: u64) -> GraphId {
        GraphId(i)
    }

    fn pid(i: u64) -> PatternId {
        PatternId(i)
    }

    #[test]
    fn build_counts_occurrences() {
        // Track C-N (paper's f11, Fig. 5(e)).
        let cn = EdgeLabel::new(0, 2);
        let g1 = path(&[0, 2, 0]); // two C-N edges
        let g2 = path(&[0, 1]); // none
        let p1 = path(&[0, 2]); // one
        let index = IfeIndex::build(
            BTreeSet::from([cn]),
            [(gid(1), &g1), (gid(2), &g2)],
            [(pid(1), &p1)],
        );
        assert_eq!(index.eg().get(cn, gid(1)), 2);
        assert_eq!(index.eg().get(cn, gid(2)), 0);
        assert_eq!(index.ep().get(cn, pid(1)), 1);
    }

    #[test]
    fn untracked_labels_are_ignored() {
        let cn = EdgeLabel::new(0, 2);
        let g = path(&[0, 1, 0]); // C-O edges, untracked
        let index = IfeIndex::build(BTreeSet::from([cn]), [(gid(1), &g)], []);
        assert_eq!(index.eg().nnz(), 0);
    }

    #[test]
    fn graph_and_pattern_columns_update() {
        let cn = EdgeLabel::new(0, 2);
        let mut index = IfeIndex::build(BTreeSet::from([cn]), [], []);
        let g = path(&[2, 0, 2]);
        index.add_graph(gid(5), &g);
        assert_eq!(index.eg().get(cn, gid(5)), 2);
        index.remove_graph(gid(5));
        assert_eq!(index.eg().nnz(), 0);
        index.add_pattern(pid(3), &g);
        assert_eq!(index.ep().get(cn, pid(3)), 2);
        index.remove_pattern(pid(3));
        assert_eq!(index.ep().nnz(), 0);
    }

    #[test]
    fn refresh_edges_diffs_rows() {
        let cn = EdgeLabel::new(0, 2);
        let cs = EdgeLabel::new(0, 3);
        let g = path(&[2, 0, 3]); // one C-N, one C-S
        let mut index = IfeIndex::build(BTreeSet::from([cn]), [(gid(1), &g)], []);
        assert_eq!(index.eg().get(cn, gid(1)), 1);
        index.refresh_edges(BTreeSet::from([cs]), [(gid(1), &g)], []);
        assert_eq!(index.eg().get(cn, gid(1)), 0, "C-N row dropped");
        assert_eq!(index.eg().get(cs, gid(1)), 1, "C-S row added");
        assert_eq!(index.tracked().len(), 1);
    }

    #[test]
    fn approx_bytes_positive() {
        let cn = EdgeLabel::new(0, 2);
        let g = path(&[0, 2]);
        let index = IfeIndex::build(BTreeSet::from([cn]), [(gid(1), &g)], []);
        assert!(index.approx_bytes() > 0);
    }
}
