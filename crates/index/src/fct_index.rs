//! The FCT-Index (Def. 5.1): trie + TG-matrix + TP-matrix, with the
//! maintenance rules of §5.1.

use crate::sparse::SparseMatrix;
use crate::trie::Trie;
use crate::{PatternId, EMBED_CAP};
use midas_graph::isomorphism::count_embeddings;
use midas_graph::{GraphId, KernelError, LabeledGraph, MatchKernel};
use midas_mining::TreeKey;
use std::collections::BTreeMap;

/// Dense identifier of a feature (an FCT or a frequent edge) in the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FeatureId(pub u32);

/// One indexed feature: its canonical key and its tree structure.
#[derive(Debug, Clone)]
pub struct Feature {
    /// Canonical string key (also the trie path).
    pub key: TreeKey,
    /// The feature tree (frequent edges are 2-vertex trees).
    pub tree: LabeledGraph,
}

/// The FCT-Index: canonical-string trie with embedding-count matrices over
/// data graphs (TG) and canned patterns (TP).
#[derive(Debug, Clone, Default)]
pub struct FctIndex {
    trie: Trie,
    features: BTreeMap<FeatureId, Feature>,
    next_feature: u32,
    tg: SparseMatrix<FeatureId, GraphId>,
    tp: SparseMatrix<FeatureId, PatternId>,
}

impl FctIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the index over `features` (FCTs ∪ frequent edges), counting
    /// embeddings in every `graph` and every `pattern`.
    pub fn build<'a, F, G, P>(features: F, graphs: G, patterns: P) -> Self
    where
        F: IntoIterator<Item = (TreeKey, &'a LabeledGraph)>,
        G: IntoIterator<Item = (GraphId, &'a LabeledGraph)> + Clone,
        P: IntoIterator<Item = (PatternId, &'a LabeledGraph)> + Clone,
    {
        let mut index = Self::new();
        for (key, tree) in features {
            index.add_feature_with(key, tree, graphs.clone(), patterns.clone());
        }
        index
    }

    /// Parallel + memoized form of [`FctIndex::build`]: embedding counts
    /// run through `kernel` (data-graph columns cached by
    /// `(pattern key, GraphId)`; canned-pattern columns parallel only).
    /// Produces a matrix identical to the serial build.
    ///
    /// All features are registered first and the whole TG-matrix is filled
    /// by a single [`MatchKernel::count_grid`] pass — one memo round-trip
    /// per *graph* for every feature at once, instead of one per
    /// `(feature, graph)` pair. With the plan-compiled matcher this is the
    /// difference between rebuilding a graph's CSR view once versus once
    /// per feature.
    pub fn build_with(
        kernel: &MatchKernel,
        features: impl IntoIterator<Item = (TreeKey, LabeledGraph)>,
        graphs: &[(GraphId, &LabeledGraph)],
        patterns: &[(PatternId, &LabeledGraph)],
    ) -> Self {
        let mut index = Self::new();
        // Register rows first (deduplicating by key, like the serial build).
        let mut rows: Vec<(FeatureId, LabeledGraph)> = Vec::new();
        for (key, tree) in features {
            if index.trie.lookup(key.tokens()).is_some() {
                continue;
            }
            let id = FeatureId(index.next_feature);
            index.next_feature += 1;
            index.trie.insert(key.tokens(), id);
            index.features.insert(
                id,
                Feature {
                    key,
                    tree: tree.clone(),
                },
            );
            rows.push((id, tree));
        }
        // One grid pass fills every TG column; the matrix itself is bulk
        // built from the nonzero triples instead of nnz interior inserts.
        if !rows.is_empty() && !graphs.is_empty() {
            let cached: Vec<midas_graph::CachedPattern> =
                rows.iter().map(|(_, t)| kernel.prepare(t)).collect();
            let grid = kernel.count_grid(&cached, graphs, EMBED_CAP);
            index.tg =
                SparseMatrix::from_triples(graphs.iter().zip(grid).flat_map(|(&(gid, _), row)| {
                    rows.iter()
                        .zip(row)
                        .map(move |(&(fid, _), count)| (fid, gid, count as u32))
                }));
        }
        // TP rows per feature (pattern sets are tiny; no memo benefit).
        let pattern_targets: Vec<&LabeledGraph> = patterns.iter().map(|&(_, p)| p).collect();
        let mut tp_triples: Vec<(FeatureId, PatternId, u32)> = Vec::new();
        for (fid, tree) in &rows {
            let counts = kernel.count_plain_many(tree, &pattern_targets, EMBED_CAP);
            for (&(pid, _), count) in patterns.iter().zip(counts) {
                tp_triples.push((*fid, pid, count as u32));
            }
        }
        index.tp = SparseMatrix::from_triples(tp_triples);
        index
    }

    /// Number of features (rows).
    pub fn feature_count(&self) -> usize {
        self.features.len()
    }

    /// The trie (for size statistics and direct lookups).
    pub fn trie(&self) -> &Trie {
        &self.trie
    }

    /// The TG-matrix (feature × data graph embedding counts).
    pub fn tg(&self) -> &SparseMatrix<FeatureId, GraphId> {
        &self.tg
    }

    /// The TP-matrix (feature × canned pattern embedding counts).
    pub fn tp(&self) -> &SparseMatrix<FeatureId, PatternId> {
        &self.tp
    }

    /// Iterates the features in id order.
    pub fn features(&self) -> impl Iterator<Item = (FeatureId, &Feature)> {
        self.features.iter().map(|(&id, f)| (id, f))
    }

    /// Looks up a feature by canonical key.
    pub fn feature_by_key(&self, key: &TreeKey) -> Option<FeatureId> {
        self.trie.lookup(key.tokens())
    }

    /// Adds a feature row (maintenance rule 1), counting its embeddings in
    /// the provided graphs and patterns. No-op if the key is present.
    pub fn add_feature_with<'a, G, P>(
        &mut self,
        key: TreeKey,
        tree: &LabeledGraph,
        graphs: G,
        patterns: P,
    ) -> FeatureId
    where
        G: IntoIterator<Item = (GraphId, &'a LabeledGraph)>,
        P: IntoIterator<Item = (PatternId, &'a LabeledGraph)>,
    {
        if let Some(existing) = self.trie.lookup(key.tokens()) {
            return existing;
        }
        let id = FeatureId(self.next_feature);
        self.next_feature += 1;
        self.trie.insert(key.tokens(), id);
        for (gid, g) in graphs {
            let count = count_embeddings(tree, g, EMBED_CAP) as u32;
            self.tg.set(id, gid, count);
        }
        for (pid, p) in patterns {
            let count = count_embeddings(tree, p, EMBED_CAP) as u32;
            self.tp.set(id, pid, count);
        }
        self.features.insert(
            id,
            Feature {
                key,
                tree: tree.clone(),
            },
        );
        id
    }

    /// Parallel + memoized form of [`FctIndex::add_feature_with`]: the
    /// feature's TG row is computed by the kernel (cached per graph), the TP
    /// row in parallel. No-op if the key is present.
    pub fn add_feature_kernel(
        &mut self,
        kernel: &MatchKernel,
        key: TreeKey,
        tree: &LabeledGraph,
        graphs: &[(GraphId, &LabeledGraph)],
        patterns: &[(PatternId, &LabeledGraph)],
    ) -> FeatureId {
        if let Some(existing) = self.trie.lookup(key.tokens()) {
            return existing;
        }
        let id = FeatureId(self.next_feature);
        self.next_feature += 1;
        self.trie.insert(key.tokens(), id);
        let graph_counts = kernel.count_in_graphs(tree, graphs, EMBED_CAP);
        for (&(gid, _), count) in graphs.iter().zip(graph_counts) {
            self.tg.set(id, gid, count as u32);
        }
        let pattern_targets: Vec<&LabeledGraph> = patterns.iter().map(|&(_, p)| p).collect();
        let pattern_counts = kernel.count_plain_many(tree, &pattern_targets, EMBED_CAP);
        for (&(pid, _), count) in patterns.iter().zip(pattern_counts) {
            self.tp.set(id, pid, count as u32);
        }
        self.features.insert(
            id,
            Feature {
                key,
                tree: tree.clone(),
            },
        );
        id
    }

    /// Removes a feature row (maintenance rule 2).
    pub fn remove_feature(&mut self, key: &TreeKey) -> Option<FeatureId> {
        let id = self.trie.remove(key.tokens())?;
        self.features.remove(&id);
        self.tg.remove_row(id);
        self.tp.remove_row(id);
        Some(id)
    }

    /// Adds a data-graph column (maintenance rule 3): counts every feature's
    /// embeddings in `graph`.
    pub fn add_graph(&mut self, id: GraphId, graph: &LabeledGraph) {
        for (&fid, feature) in &self.features {
            let count = count_embeddings(&feature.tree, graph, EMBED_CAP) as u32;
            self.tg.set(fid, id, count);
        }
    }

    /// Batch, parallel + memoized form of [`FctIndex::add_graph`]
    /// (maintenance rule 3 over a whole `Δ⁺`): every feature is prepared
    /// once, then counted in every new graph through the kernel.
    pub fn add_graphs_kernel(&mut self, kernel: &MatchKernel, graphs: &[(GraphId, &LabeledGraph)]) {
        if graphs.is_empty() || self.features.is_empty() {
            return;
        }
        let prepared: Vec<(FeatureId, midas_graph::CachedPattern)> = self
            .features
            .iter()
            .map(|(&fid, f)| (fid, kernel.prepare(&f.tree)))
            .collect();
        let cached: Vec<midas_graph::CachedPattern> =
            prepared.iter().map(|(_, p)| p.clone()).collect();
        let grid = kernel.count_grid(&cached, graphs, EMBED_CAP);
        for (&(gid, _), row) in graphs.iter().zip(grid) {
            for (&(fid, _), count) in prepared.iter().zip(row) {
                self.tg.set(fid, gid, count as u32);
            }
        }
    }

    /// Removes a data-graph column (maintenance rule 4).
    pub fn remove_graph(&mut self, id: GraphId) {
        self.tg.remove_col(id);
    }

    /// Adds a canned-pattern column (maintenance rule 3).
    pub fn add_pattern(&mut self, id: PatternId, pattern: &LabeledGraph) {
        for (&fid, feature) in &self.features {
            let count = count_embeddings(&feature.tree, pattern, EMBED_CAP) as u32;
            self.tp.set(fid, id, count);
        }
    }

    /// Removes a canned-pattern column (maintenance rule 4).
    pub fn remove_pattern(&mut self, id: PatternId) {
        self.tp.remove_col(id);
    }

    /// Reconciles the feature rows against a new feature set: rows for
    /// vanished keys are dropped, rows for new keys are added (counting over
    /// the supplied graphs and patterns). This is the batch form of rules
    /// 1–2 used after FCT maintenance.
    pub fn refresh_features<'a, G, P>(
        &mut self,
        target: &[(TreeKey, &LabeledGraph)],
        graphs: G,
        patterns: P,
    ) where
        G: IntoIterator<Item = (GraphId, &'a LabeledGraph)> + Clone,
        P: IntoIterator<Item = (PatternId, &'a LabeledGraph)> + Clone,
    {
        let want: BTreeMap<&TreeKey, &LabeledGraph> = target.iter().map(|(k, t)| (k, *t)).collect();
        let stale: Vec<TreeKey> = self
            .features
            .values()
            .filter(|f| !want.contains_key(&f.key))
            .map(|f| f.key.clone())
            .collect();
        for key in stale {
            self.remove_feature(&key);
        }
        for (key, tree) in target {
            if self.trie.lookup(key.tokens()).is_none() {
                self.add_feature_with(key.clone(), tree, graphs.clone(), patterns.clone());
            }
        }
    }

    /// Parallel + memoized form of [`FctIndex::refresh_features`].
    pub fn refresh_features_kernel(
        &mut self,
        kernel: &MatchKernel,
        target: &[(TreeKey, &LabeledGraph)],
        graphs: &[(GraphId, &LabeledGraph)],
        patterns: &[(PatternId, &LabeledGraph)],
    ) {
        let want: BTreeMap<&TreeKey, &LabeledGraph> = target.iter().map(|(k, t)| (k, *t)).collect();
        let stale: Vec<TreeKey> = self
            .features
            .values()
            .filter(|f| !want.contains_key(&f.key))
            .map(|f| f.key.clone())
            .collect();
        for key in stale {
            self.remove_feature(&key);
        }
        for (key, tree) in target {
            if self.trie.lookup(key.tokens()).is_none() {
                self.add_feature_kernel(kernel, key.clone(), tree, graphs, patterns);
            }
        }
    }

    /// Fault-isolating twin of [`FctIndex::add_feature_kernel`]: every
    /// fallible count runs *before* any index mutation, so a contained
    /// worker panic (surfaced as [`KernelError`]) leaves the index exactly
    /// as it was.
    pub fn try_add_feature_kernel(
        &mut self,
        kernel: &MatchKernel,
        key: TreeKey,
        tree: &LabeledGraph,
        graphs: &[(GraphId, &LabeledGraph)],
        patterns: &[(PatternId, &LabeledGraph)],
    ) -> Result<FeatureId, KernelError> {
        if let Some(existing) = self.trie.lookup(key.tokens()) {
            return Ok(existing);
        }
        let graph_counts = kernel.try_count_in_graphs(tree, graphs, EMBED_CAP)?;
        let pattern_targets: Vec<&LabeledGraph> = patterns.iter().map(|&(_, p)| p).collect();
        let pattern_counts = kernel.try_count_plain_many(tree, &pattern_targets, EMBED_CAP)?;
        let id = FeatureId(self.next_feature);
        self.next_feature += 1;
        self.trie.insert(key.tokens(), id);
        for (&(gid, _), count) in graphs.iter().zip(graph_counts) {
            self.tg.set(id, gid, count as u32);
        }
        for (&(pid, _), count) in patterns.iter().zip(pattern_counts) {
            self.tp.set(id, pid, count as u32);
        }
        self.features.insert(
            id,
            Feature {
                key,
                tree: tree.clone(),
            },
        );
        Ok(id)
    }

    /// Fault-isolating twin of [`FctIndex::add_graphs_kernel`]: the count
    /// grid is computed before any column is written, so on [`KernelError`]
    /// the TG-matrix is untouched.
    pub fn try_add_graphs_kernel(
        &mut self,
        kernel: &MatchKernel,
        graphs: &[(GraphId, &LabeledGraph)],
    ) -> Result<(), KernelError> {
        if graphs.is_empty() || self.features.is_empty() {
            return Ok(());
        }
        let prepared: Vec<(FeatureId, midas_graph::CachedPattern)> = self
            .features
            .iter()
            .map(|(&fid, f)| (fid, kernel.prepare(&f.tree)))
            .collect();
        let cached: Vec<midas_graph::CachedPattern> =
            prepared.iter().map(|(_, p)| p.clone()).collect();
        let grid = kernel.try_count_grid(&cached, graphs, EMBED_CAP)?;
        for (&(gid, _), row) in graphs.iter().zip(grid) {
            for (&(fid, _), count) in prepared.iter().zip(row) {
                self.tg.set(fid, gid, count as u32);
            }
        }
        Ok(())
    }

    /// Fault-isolating twin of [`FctIndex::refresh_features_kernel`]: the
    /// TG/TP rows of every *new* feature are counted up front; only once all
    /// counts succeed are stale rows dropped and new rows inserted. On
    /// [`KernelError`] the index is unchanged.
    pub fn try_refresh_features_kernel(
        &mut self,
        kernel: &MatchKernel,
        target: &[(TreeKey, &LabeledGraph)],
        graphs: &[(GraphId, &LabeledGraph)],
        patterns: &[(PatternId, &LabeledGraph)],
    ) -> Result<(), KernelError> {
        let pattern_targets: Vec<&LabeledGraph> = patterns.iter().map(|&(_, p)| p).collect();
        let mut pending: Vec<(&TreeKey, &LabeledGraph, Vec<u64>, Vec<u64>)> = Vec::new();
        let mut queued: std::collections::BTreeSet<&TreeKey> = std::collections::BTreeSet::new();
        for (key, tree) in target {
            if self.trie.lookup(key.tokens()).is_some() || !queued.insert(key) {
                continue;
            }
            let graph_counts = kernel.try_count_in_graphs(tree, graphs, EMBED_CAP)?;
            let pattern_counts = kernel.try_count_plain_many(tree, &pattern_targets, EMBED_CAP)?;
            pending.push((key, tree, graph_counts, pattern_counts));
        }
        let want: BTreeMap<&TreeKey, &LabeledGraph> = target.iter().map(|(k, t)| (k, *t)).collect();
        let stale: Vec<TreeKey> = self
            .features
            .values()
            .filter(|f| !want.contains_key(&f.key))
            .map(|f| f.key.clone())
            .collect();
        for key in stale {
            self.remove_feature(&key);
        }
        for (key, tree, graph_counts, pattern_counts) in pending {
            let id = FeatureId(self.next_feature);
            self.next_feature += 1;
            self.trie.insert(key.tokens(), id);
            for (&(gid, _), count) in graphs.iter().zip(graph_counts) {
                self.tg.set(id, gid, count as u32);
            }
            for (&(pid, _), count) in patterns.iter().zip(pattern_counts) {
                self.tp.set(id, pid, count as u32);
            }
            self.features.insert(
                id,
                Feature {
                    key: key.clone(),
                    tree: tree.clone(),
                },
            );
        }
        Ok(())
    }

    /// Approximate heap size in bytes (for the Exp 2 memory report).
    pub fn approx_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(FeatureId, GraphId, u32)>() * 2;
        self.tg.nnz() * entry
            + self.tp.nnz() * entry
            + self.trie.node_count() * 48
            + self.features.len() * 128
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_graph::GraphBuilder;
    use midas_mining::tree_key;

    fn path(labels: &[u32]) -> LabeledGraph {
        let vs: Vec<u32> = (0..labels.len() as u32).collect();
        GraphBuilder::new().vertices(labels).path(&vs).build()
    }

    fn gid(i: u64) -> GraphId {
        GraphId(i)
    }

    fn pid(i: u64) -> PatternId {
        PatternId(i)
    }

    /// Features: C-O edge, C-O-N path. Graphs: G1 = C-O-N, G2 = O-C-O.
    /// Pattern: P1 = C-O-N.
    fn setup() -> (FctIndex, Vec<LabeledGraph>, Vec<LabeledGraph>) {
        let features = [path(&[0, 1]), path(&[0, 1, 2])];
        let graphs = vec![path(&[0, 1, 2]), path(&[1, 0, 1])];
        let patterns = vec![path(&[0, 1, 2])];
        let index = FctIndex::build(
            features.iter().map(|t| (tree_key(t), t)),
            graphs
                .iter()
                .enumerate()
                .map(|(i, g)| (gid(i as u64 + 1), g)),
            patterns
                .iter()
                .enumerate()
                .map(|(i, p)| (pid(i as u64 + 1), p)),
        );
        (index, graphs, patterns)
    }

    #[test]
    fn build_counts_embeddings() {
        let (index, ..) = setup();
        assert_eq!(index.feature_count(), 2);
        let co = index.feature_by_key(&tree_key(&path(&[0, 1]))).unwrap();
        let con = index.feature_by_key(&tree_key(&path(&[0, 1, 2]))).unwrap();
        // G1 = C-O-N: one C-O embedding; G2 = O-C-O: two (C maps one way,
        // O either side).
        assert_eq!(index.tg().get(co, gid(1)), 1);
        assert_eq!(index.tg().get(co, gid(2)), 2);
        assert_eq!(index.tg().get(con, gid(1)), 1);
        assert_eq!(index.tg().get(con, gid(2)), 0);
        // Pattern column.
        assert_eq!(index.tp().get(co, pid(1)), 1);
        assert_eq!(index.tp().get(con, pid(1)), 1);
    }

    #[test]
    fn add_and_remove_graph_columns() {
        let (mut index, ..) = setup();
        let g3 = path(&[0, 1, 0, 1]);
        index.add_graph(gid(3), &g3);
        let co = index.feature_by_key(&tree_key(&path(&[0, 1]))).unwrap();
        assert_eq!(index.tg().get(co, gid(3)), 3);
        index.remove_graph(gid(3));
        assert_eq!(index.tg().get(co, gid(3)), 0);
    }

    #[test]
    fn add_and_remove_pattern_columns() {
        let (mut index, ..) = setup();
        let p2 = path(&[0, 1]);
        index.add_pattern(pid(2), &p2);
        let co = index.feature_by_key(&tree_key(&path(&[0, 1]))).unwrap();
        assert_eq!(index.tp().get(co, pid(2)), 1);
        index.remove_pattern(pid(2));
        assert_eq!(index.tp().get(co, pid(2)), 0);
    }

    #[test]
    fn remove_feature_drops_rows() {
        let (mut index, ..) = setup();
        let key = tree_key(&path(&[0, 1]));
        let id = index.feature_by_key(&key).unwrap();
        assert_eq!(index.remove_feature(&key), Some(id));
        assert_eq!(index.feature_count(), 1);
        assert!(index.tg().row(id).next().is_none());
        assert!(index.tp().row(id).next().is_none());
        assert_eq!(index.feature_by_key(&key), None);
        assert_eq!(index.remove_feature(&key), None);
    }

    #[test]
    fn duplicate_feature_is_ignored() {
        let (mut index, graphs, patterns) = setup();
        let key = tree_key(&path(&[0, 1]));
        let before = index.feature_count();
        let id = index.add_feature_with(
            key.clone(),
            &path(&[0, 1]),
            graphs
                .iter()
                .enumerate()
                .map(|(i, g)| (gid(i as u64 + 1), g)),
            patterns
                .iter()
                .enumerate()
                .map(|(i, p)| (pid(i as u64 + 1), p)),
        );
        assert_eq!(index.feature_count(), before);
        assert_eq!(index.feature_by_key(&key), Some(id));
    }

    #[test]
    fn refresh_features_diffs_rows() {
        let (mut index, graphs, patterns) = setup();
        // New target set: keep C-O-N, drop C-O, add O-N.
        let con = path(&[0, 1, 2]);
        let on = path(&[1, 2]);
        let target = vec![(tree_key(&con), &con), (tree_key(&on), &on)];
        index.refresh_features(
            &target,
            graphs
                .iter()
                .enumerate()
                .map(|(i, g)| (gid(i as u64 + 1), g)),
            patterns
                .iter()
                .enumerate()
                .map(|(i, p)| (pid(i as u64 + 1), p)),
        );
        assert_eq!(index.feature_count(), 2);
        assert!(index.feature_by_key(&tree_key(&path(&[0, 1]))).is_none());
        let on_id = index.feature_by_key(&tree_key(&on)).unwrap();
        assert_eq!(index.tg().get(on_id, gid(1)), 1);
        assert_eq!(index.tg().get(on_id, gid(2)), 0);
    }

    #[test]
    fn kernel_build_matches_serial_build() {
        let features = [path(&[0, 1]), path(&[0, 1, 2]), path(&[1, 2])];
        let graphs = [path(&[0, 1, 2]), path(&[1, 0, 1]), path(&[0, 1, 2, 1, 0])];
        let patterns = [path(&[0, 1, 2]), path(&[0, 1])];
        let graph_refs: Vec<(GraphId, &LabeledGraph)> = graphs
            .iter()
            .enumerate()
            .map(|(i, g)| (gid(i as u64), g))
            .collect();
        let pattern_refs: Vec<(PatternId, &LabeledGraph)> = patterns
            .iter()
            .enumerate()
            .map(|(i, p)| (pid(i as u64), p))
            .collect();
        let serial = FctIndex::build(
            features.iter().map(|t| (tree_key(t), t)),
            graph_refs.iter().copied(),
            pattern_refs.iter().copied(),
        );
        let kernel = MatchKernel::new(4);
        let parallel = FctIndex::build_with(
            &kernel,
            features.iter().map(|t| (tree_key(t), t.clone())),
            &graph_refs,
            &pattern_refs,
        );
        assert_eq!(serial.feature_count(), parallel.feature_count());
        for (fid, _) in serial.features() {
            for &(gid, _) in &graph_refs {
                assert_eq!(serial.tg().get(fid, gid), parallel.tg().get(fid, gid));
            }
            for &(pid, _) in &pattern_refs {
                assert_eq!(serial.tp().get(fid, pid), parallel.tp().get(fid, pid));
            }
        }
    }

    #[test]
    fn add_graphs_kernel_matches_serial_columns() {
        let (mut serial, ..) = setup();
        let (mut cached, ..) = setup();
        let news = [path(&[0, 1, 0, 1]), path(&[2, 1, 0])];
        for (i, g) in news.iter().enumerate() {
            serial.add_graph(gid(10 + i as u64), g);
        }
        let refs: Vec<(GraphId, &LabeledGraph)> = news
            .iter()
            .enumerate()
            .map(|(i, g)| (gid(10 + i as u64), g))
            .collect();
        let kernel = MatchKernel::new(2);
        cached.add_graphs_kernel(&kernel, &refs);
        for (fid, _) in serial.features() {
            for &(gid, _) in &refs {
                assert_eq!(serial.tg().get(fid, gid), cached.tg().get(fid, gid));
            }
        }
        // A second pass is served from the memo and stays identical.
        let before = kernel.cache().stats().misses;
        cached.add_graphs_kernel(&kernel, &refs);
        assert_eq!(kernel.cache().stats().misses, before);
    }

    #[test]
    fn approx_bytes_is_positive_and_grows() {
        let (mut index, ..) = setup();
        let before = index.approx_bytes();
        assert!(before > 0);
        index.add_graph(gid(9), &path(&[0, 1, 2, 1, 0]));
        assert!(index.approx_bytes() > before);
    }
}
