//! # midas-index
//!
//! The two index structures MIDAS adds on top of CATAPULT (§5.1):
//!
//! * [`FctIndex`] — the **FCT-Index** (Def. 5.1): a token trie over the
//!   canonical strings of frequent closed trees and frequent edges, whose
//!   terminal nodes point into two sparse embedding-count matrices — the
//!   trie-graph matrix (TG) over data graphs and the trie-pattern matrix
//!   (TP) over canned patterns.
//! * [`IfeIndex`] — the **IFE-Index** (Def. 5.2): edge-graph (EG) and
//!   edge-pattern (EP) matrices holding embedding counts of infrequent
//!   edges.
//!
//! Both are maintained incrementally under database and pattern-set changes
//! (§5.1 "Index Maintenance", rules 1–4) and power two accelerations:
//!
//! * [`scov`] — containment filtering for subgraph coverage (§6.1): a
//!   pattern can only be contained in graphs whose feature counts dominate
//!   the pattern's, cutting subgraph-isomorphism checks drastically.
//! * [`pf_matrix`] — the pattern-feature matrix behind the tightened GED
//!   lower bound `GED'_l = GED_l + n` (Lemma 6.1).
//!
//! Embedding counts saturate at [`EMBED_CAP`]; the dominance filter only
//! compares counts computed under the same cap, so saturation never causes
//! a false negative (see DESIGN.md §5).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fct_index;
pub mod ife_index;
pub mod pf_matrix;
pub mod scov;
pub mod sparse;
pub mod trie;

pub use fct_index::{FctIndex, FeatureId};
pub use ife_index::IfeIndex;
pub use pf_matrix::PfMatrix;
pub use sparse::SparseMatrix;
pub use trie::Trie;

/// A stable identifier for a canned pattern, assigned by the pattern store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PatternId(pub u64);

impl std::fmt::Display for PatternId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Saturation cap for embedding counts stored in the index matrices.
///
/// Dominance comparisons (`pattern count ≤ graph count`) remain sound under
/// a shared cap: if the pattern side saturates, the graph side either also
/// saturates (counts equal, filter passes — a false *positive* at worst,
/// resolved by the subsequent isomorphism check) or is genuinely smaller.
pub const EMBED_CAP: u64 = 64;
