//! Sparse count matrices (§5.1).
//!
//! The paper stores only non-zero entries as `(row, column, value)` triples.
//! We keep the same information in two ordered maps — row-major and
//! column-major — so both row scans (all graphs containing a feature) and
//! column scans (all features of a pattern) are cheap, and whole rows or
//! columns can be deleted, which is exactly what the maintenance rules
//! (1)–(4) of §5.1 require.

use std::collections::BTreeMap;
use std::ops::Bound;

/// A sparse `u32`-valued matrix over ordered row/column key types.
///
/// Key types must implement `Default` with `Default` being their minimum
/// value (true for all the integer newtypes the indices use); row/column
/// scans start their range there.
#[derive(Debug, Clone)]
pub struct SparseMatrix<R: Ord + Copy + Default, C: Ord + Copy + Default> {
    by_row: BTreeMap<(R, C), u32>,
    by_col: BTreeMap<(C, R), u32>,
}

impl<R: Ord + Copy + Default, C: Ord + Copy + Default> Default for SparseMatrix<R, C> {
    fn default() -> Self {
        SparseMatrix {
            by_row: BTreeMap::new(),
            by_col: BTreeMap::new(),
        }
    }
}

impl<R: Ord + Copy + Default, C: Ord + Copy + Default> SparseMatrix<R, C> {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.by_row.len()
    }

    /// Whether the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.by_row.is_empty()
    }

    /// Builds a matrix from `(row, col, value)` triples in one shot.
    /// Zero values are skipped (they would not be stored anyway) and the
    /// last write wins for duplicate coordinates. Bulk construction sorts
    /// each ordering once and feeds the maps a sorted stream — much
    /// cheaper than `nnz` interior `set` calls when filling a whole
    /// matrix, which is exactly the bootstrap build's shape.
    pub fn from_triples(triples: impl IntoIterator<Item = (R, C, u32)>) -> Self {
        let mut rows: Vec<((R, C), u32)> = triples
            .into_iter()
            .filter(|&(_, _, v)| v != 0)
            .map(|(r, c, v)| ((r, c), v))
            .collect();
        rows.sort_by_key(|&(k, _)| k);
        // Stable sort + last-wins dedup keeps `set` overwrite semantics.
        rows.reverse();
        rows.dedup_by_key(|&mut (k, _)| k);
        rows.reverse();
        let mut cols: Vec<((C, R), u32)> = rows.iter().map(|&((r, c), v)| ((c, r), v)).collect();
        cols.sort_unstable_by_key(|&(k, _)| k);
        SparseMatrix {
            by_row: rows.into_iter().collect(),
            by_col: cols.into_iter().collect(),
        }
    }

    /// Sets `(row, col)` to `value`; zero removes the entry.
    pub fn set(&mut self, row: R, col: C, value: u32) {
        if value == 0 {
            self.by_row.remove(&(row, col));
            self.by_col.remove(&(col, row));
        } else {
            self.by_row.insert((row, col), value);
            self.by_col.insert((col, row), value);
        }
    }

    /// The value at `(row, col)` (zero when absent).
    pub fn get(&self, row: R, col: C) -> u32 {
        self.by_row.get(&(row, col)).copied().unwrap_or(0)
    }

    /// Iterates the non-zero entries of one row as `(col, value)`.
    pub fn row(&self, row: R) -> impl Iterator<Item = (C, u32)> + '_ {
        self.by_row
            .range((Bound::Included((row, C::default())), Bound::Unbounded))
            .take_while(move |((r, _), _)| *r == row)
            .map(|((_, c), &v)| (*c, v))
    }

    /// Iterates the non-zero entries of one column as `(row, value)`.
    pub fn col(&self, col: C) -> impl Iterator<Item = (R, u32)> + '_ {
        self.by_col
            .range((Bound::Included((col, R::default())), Bound::Unbounded))
            .take_while(move |((c, _), _)| *c == col)
            .map(|((_, r), &v)| (*r, v))
    }

    /// Removes an entire row; returns how many entries were dropped.
    pub fn remove_row(&mut self, row: R) -> usize {
        let cols: Vec<C> = self.row(row).map(|(c, _)| c).collect();
        for c in &cols {
            self.by_row.remove(&(row, *c));
            self.by_col.remove(&(*c, row));
        }
        cols.len()
    }

    /// Removes an entire column; returns how many entries were dropped.
    pub fn remove_col(&mut self, col: C) -> usize {
        let rows: Vec<R> = self.col(col).map(|(r, _)| r).collect();
        for r in &rows {
            self.by_row.remove(&(*r, col));
            self.by_col.remove(&(col, *r));
        }
        rows.len()
    }

    /// Iterates all non-zero entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (R, C, u32)> + '_ {
        self.by_row.iter().map(|(&(r, c), &v)| (r, c, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_zero_removal() {
        let mut m: SparseMatrix<u32, u32> = SparseMatrix::new();
        m.set(1, 2, 5);
        assert_eq!(m.get(1, 2), 5);
        assert_eq!(m.get(2, 1), 0);
        assert_eq!(m.nnz(), 1);
        m.set(1, 2, 0);
        assert_eq!(m.get(1, 2), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn row_and_col_scans() {
        let mut m: SparseMatrix<u32, u64> = SparseMatrix::new();
        m.set(1, 10, 1);
        m.set(1, 20, 2);
        m.set(2, 10, 3);
        let row1: Vec<_> = m.row(1).collect();
        assert_eq!(row1, vec![(10, 1), (20, 2)]);
        let col10: Vec<_> = m.col(10).collect();
        assert_eq!(col10, vec![(1, 1), (2, 3)]);
        assert!(m.row(3).next().is_none());
    }

    #[test]
    fn remove_row_and_col() {
        let mut m: SparseMatrix<u32, u32> = SparseMatrix::new();
        for r in 0..3 {
            for c in 0..3 {
                m.set(r, c, r + c + 1);
            }
        }
        assert_eq!(m.remove_row(1), 3);
        assert_eq!(m.nnz(), 6);
        assert!(m.row(1).next().is_none());
        assert_eq!(m.remove_col(2), 2);
        assert_eq!(m.nnz(), 4);
        assert!(m.col(2).next().is_none());
        // Mirror stays consistent.
        for (r, c, v) in m.iter() {
            assert_eq!(m.col(c).find(|&(rr, _)| rr == r).map(|(_, v)| v), Some(v));
        }
    }

    #[test]
    fn overwrite_updates_both_maps() {
        let mut m: SparseMatrix<u32, u32> = SparseMatrix::new();
        m.set(5, 7, 1);
        m.set(5, 7, 9);
        assert_eq!(m.get(5, 7), 9);
        assert_eq!(m.col(7).next(), Some((5, 9)));
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn from_triples_matches_incremental_set() {
        let triples = [(2u32, 1u32, 5), (0, 3, 7), (2, 0, 1), (1, 1, 0), (0, 3, 9)];
        let bulk: SparseMatrix<u32, u32> = SparseMatrix::from_triples(triples);
        let mut slow: SparseMatrix<u32, u32> = SparseMatrix::new();
        for (r, c, v) in triples {
            slow.set(r, c, v);
        }
        assert_eq!(bulk.nnz(), slow.nnz());
        assert_eq!(bulk.get(0, 3), 9, "last write wins");
        assert_eq!(bulk.get(1, 1), 0, "zeros are skipped");
        for (r, c, v) in slow.iter() {
            assert_eq!(bulk.get(r, c), v);
            assert_eq!(
                bulk.col(c).find(|&(rr, _)| rr == r).map(|(_, v)| v),
                Some(v)
            );
        }
    }

    #[test]
    fn removing_missing_is_noop() {
        let mut m: SparseMatrix<u32, u32> = SparseMatrix::new();
        m.set(0, 0, 1);
        assert_eq!(m.remove_row(9), 0);
        assert_eq!(m.remove_col(9), 0);
        assert_eq!(m.nnz(), 1);
    }
}
