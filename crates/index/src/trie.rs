//! The canonical-string token trie of the FCT-Index (Def. 5.1, Fig. 5(d)).
//!
//! Trie vertices correspond to tokens of the canonical strings of FCTs and
//! frequent edges; an edge exists between adjacent tokens. Terminal tokens
//! carry the feature id whose row in the TG-/TP-matrices plays the role of
//! the paper's *graph pointer* / *pattern pointer*.

use crate::fct_index::FeatureId;
use std::collections::BTreeMap;

#[derive(Debug, Clone, Default)]
struct TrieNode {
    children: BTreeMap<u32, usize>,
    terminal: Option<FeatureId>,
}

/// A token trie mapping canonical strings to feature ids.
#[derive(Debug, Clone)]
pub struct Trie {
    nodes: Vec<TrieNode>,
}

impl Default for Trie {
    fn default() -> Self {
        Trie {
            nodes: vec![TrieNode::default()],
        }
    }
}

impl Trie {
    /// Creates an empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `tokens`, marking the terminal with `feature`. Returns the
    /// previous feature id if the string was already present.
    pub fn insert(&mut self, tokens: &[u32], feature: FeatureId) -> Option<FeatureId> {
        let mut at = 0usize;
        for &t in tokens {
            at = match self.nodes[at].children.get(&t) {
                Some(&next) => next,
                None => {
                    self.nodes.push(TrieNode::default());
                    let next = self.nodes.len() - 1;
                    self.nodes[at].children.insert(t, next);
                    next
                }
            };
        }
        self.nodes[at].terminal.replace(feature)
    }

    /// Looks up the feature id of `tokens`.
    pub fn lookup(&self, tokens: &[u32]) -> Option<FeatureId> {
        let mut at = 0usize;
        for &t in tokens {
            at = *self.nodes[at].children.get(&t)?;
        }
        self.nodes[at].terminal
    }

    /// Removes the terminal marker of `tokens`, returning its feature id.
    /// (Nodes are kept; the trie is small and ids dominate storage.)
    pub fn remove(&mut self, tokens: &[u32]) -> Option<FeatureId> {
        let mut at = 0usize;
        for &t in tokens {
            at = *self.nodes[at].children.get(&t)?;
        }
        self.nodes[at].terminal.take()
    }

    /// Number of trie nodes (the `n` of Lemma 5.3's space bound).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of terminals (stored canonical strings).
    pub fn terminal_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.terminal.is_some()).count()
    }

    /// Maximum depth reached (the `m` of Lemma 5.3's space bound).
    pub fn max_depth(&self) -> usize {
        fn depth(trie: &Trie, at: usize) -> usize {
            trie.nodes[at]
                .children
                .values()
                .map(|&c| 1 + depth(trie, c))
                .max()
                .unwrap_or(0)
        }
        depth(self, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_roundtrip() {
        let mut trie = Trie::new();
        assert_eq!(trie.insert(&[1, 2, 3], FeatureId(7)), None);
        assert_eq!(trie.lookup(&[1, 2, 3]), Some(FeatureId(7)));
        assert_eq!(trie.lookup(&[1, 2]), None);
        assert_eq!(trie.lookup(&[1, 2, 3, 4]), None);
        assert_eq!(trie.lookup(&[9]), None);
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let mut trie = Trie::new();
        trie.insert(&[1, 2, 3], FeatureId(0));
        let after_first = trie.node_count();
        trie.insert(&[1, 2, 4], FeatureId(1));
        // Only one new node for the diverging token.
        assert_eq!(trie.node_count(), after_first + 1);
        assert_eq!(trie.terminal_count(), 2);
    }

    #[test]
    fn prefix_terminals_coexist() {
        let mut trie = Trie::new();
        trie.insert(&[1, 2], FeatureId(0));
        trie.insert(&[1, 2, 3], FeatureId(1));
        assert_eq!(trie.lookup(&[1, 2]), Some(FeatureId(0)));
        assert_eq!(trie.lookup(&[1, 2, 3]), Some(FeatureId(1)));
    }

    #[test]
    fn insert_replaces_and_reports_previous() {
        let mut trie = Trie::new();
        trie.insert(&[5], FeatureId(1));
        assert_eq!(trie.insert(&[5], FeatureId(2)), Some(FeatureId(1)));
        assert_eq!(trie.lookup(&[5]), Some(FeatureId(2)));
    }

    #[test]
    fn remove_clears_terminal_only() {
        let mut trie = Trie::new();
        trie.insert(&[1, 2], FeatureId(0));
        trie.insert(&[1, 2, 3], FeatureId(1));
        assert_eq!(trie.remove(&[1, 2]), Some(FeatureId(0)));
        assert_eq!(trie.lookup(&[1, 2]), None);
        assert_eq!(trie.lookup(&[1, 2, 3]), Some(FeatureId(1)));
        assert_eq!(trie.remove(&[7, 7]), None);
    }

    #[test]
    fn depth_and_counts() {
        let mut trie = Trie::new();
        assert_eq!(trie.max_depth(), 0);
        trie.insert(&[1, 2, 3, 4], FeatureId(0));
        trie.insert(&[1], FeatureId(1));
        assert_eq!(trie.max_depth(), 4);
        assert_eq!(trie.terminal_count(), 2);
    }

    #[test]
    fn empty_string_is_the_root() {
        let mut trie = Trie::new();
        trie.insert(&[], FeatureId(3));
        assert_eq!(trie.lookup(&[]), Some(FeatureId(3)));
    }
}
